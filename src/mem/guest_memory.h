// Guest physical memory.
//
// A VM's RAM is modeled as one flat, contiguous guest-physical address
// space backed by host memory (like a single KVM memslot). NVMe queues,
// PRP lists and data buffers built by the guest driver live here; the host
// components (router, UIFs, simulated device DMA) translate guest-physical
// addresses to host pointers through this class — mirroring how NVMetro's
// UIFs "have access to the VM's memory to read and write request data"
// (paper §III-D) while data pages never get copied out of guest memory
// (§III-C).
#pragma once

#include <memory>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "mem/address_space.h"

namespace nvmetro::mem {

/// Guest page size; NVMe memory page size (CC.MPS) is configured to match.
constexpr u64 kPageSize = 4096;

class GuestMemory : public AddressSpace {
 public:
  /// Creates a guest address space of `size` bytes (rounded up to a page).
  explicit GuestMemory(u64 size);

  u64 size() const { return size_; }

  /// Host pointer for [gpa, gpa+len). Returns nullptr when the range is
  /// out of bounds — callers must treat that as a guest-driven DMA error,
  /// not a host crash.
  u8* Translate(u64 gpa, u64 len) override;
  const u8* TranslateConst(u64 gpa, u64 len) const;

  /// Allocates `npages` contiguous guest pages; returns the gpa.
  /// Used by the simulated guest driver for queues/PRP lists/buffers.
  Result<u64> AllocPages(u64 npages);

  /// Returns pages to the allocator. gpa must come from AllocPages.
  void FreePages(u64 gpa, u64 npages);

  /// Bytes currently handed out by the allocator.
  u64 allocated_bytes() const { return allocated_pages_ * kPageSize; }

 private:
  u64 size_;
  std::vector<u8> backing_;
  // First-fit free list of page runs (gpa page index -> run length).
  std::vector<std::pair<u64, u64>> free_runs_;
  u64 allocated_pages_ = 0;
};

}  // namespace nvmetro::mem

#include "mem/arena.h"

#include <cstdio>
#include <cstdlib>

namespace nvmetro::mem {
namespace {

struct AllocState {
  u64 count = 0;
  u64 bytes = 0;
  u64 steady_allocs = 0;
  bool steady = false;
  bool strict = false;
  bool strict_checked = false;
};

AllocState& State() {
  static AllocState s;
  return s;
}

bool StrictMode() {
  AllocState& s = State();
  if (!s.strict_checked) {
    const char* env = std::getenv("NVMETRO_ZERO_ALLOC_STRICT");
    s.strict = env != nullptr && env[0] == '1';
    s.strict_checked = true;
  }
  return s.strict;
}

}  // namespace

u64 HotPathAllocs::count() { return State().count; }
u64 HotPathAllocs::bytes() { return State().bytes; }

void HotPathAllocs::Note(usize grown_bytes) {
  AllocState& s = State();
  s.count++;
  s.bytes += grown_bytes;
  if (s.steady) {
    s.steady_allocs++;
    if (StrictMode()) {
      std::fprintf(stderr,
                   "nvmetro: hot-path pool grew %zu bytes inside a "
                   "steady-state window (NVMETRO_ZERO_ALLOC_STRICT=1)\n",
                   grown_bytes);
      std::abort();
    }
  }
}

void HotPathAllocs::BeginSteadyState() {
  AllocState& s = State();
  s.steady = true;
  s.steady_allocs = 0;
}

void HotPathAllocs::EndSteadyState() { State().steady = false; }

bool HotPathAllocs::in_steady_state() { return State().steady; }

u64 HotPathAllocs::steady_state_allocs() { return State().steady_allocs; }

bool GenTable::Alloc(u32 value, u16* handle) {
  if (free_.empty()) {
    if (slots_.size() >= kMaxSlots) return false;
    // Grow by a chunk; new slots enter the free list in ascending order
    // so low handles are preferred (matches the pre-shard cid counter's
    // tendency to reuse small cids, which keeps traces readable).
    u32 base = static_cast<u32>(slots_.size());
    u32 grow = kChunk;
    if (base + grow > kMaxSlots) grow = kMaxSlots - base;
    HotPathAllocs::Note(grow * (sizeof(Slot) + sizeof(u16)));
    slots_.resize(base + grow);
    free_.reserve(slots_.capacity());
    for (u32 i = base + grow; i > base; i--) {
      free_.push_back(static_cast<u16>(i - 1));
    }
  }
  u16 slot = free_.back();
  free_.pop_back();
  Slot& s = slots_[slot];
  s.value = value;
  in_use_++;
  *handle = static_cast<u16>(slot | (static_cast<u16>(s.gen) << kSlotBits));
  return true;
}

u32 GenTable::Find(u16 handle) const {
  u32 slot = handle & kSlotMask;
  if (slot >= slots_.size()) return kNoValue;
  const Slot& s = slots_[slot];
  if (s.value == kNoValue) return kNoValue;
  if (((handle >> kSlotBits) & kGenMask) != (s.gen & kGenMask)) {
    return kNoValue;
  }
  return s.value;
}

bool GenTable::Free(u16 handle) {
  u32 slot = handle & kSlotMask;
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (s.value == kNoValue) return false;
  if (((handle >> kSlotBits) & kGenMask) != (s.gen & kGenMask)) return false;
  s.value = kNoValue;
  s.gen = static_cast<u8>((s.gen + 1) & kGenMask);
  in_use_--;
  free_.push_back(static_cast<u16>(slot));
  return true;
}

u32 GenTable::Take(u16 handle) {
  u32 value = Find(handle);
  if (value != kNoValue) Free(handle);
  return value;
}

u32 GenTable::FreeValue(u32 value) {
  u32 freed = 0;
  for (u32 slot = 0; slot < slots_.size(); slot++) {
    Slot& s = slots_[slot];
    if (s.value != value || value == kNoValue) continue;
    s.value = kNoValue;
    s.gen = static_cast<u8>((s.gen + 1) & kGenMask);
    in_use_--;
    free_.push_back(static_cast<u16>(slot));
    freed++;
  }
  return freed;
}

}  // namespace nvmetro::mem

// Arena/slab pools for allocation-free hot paths (DESIGN.md §14).
//
// The router's submit/complete path must not touch the heap in steady
// state: every per-request structure lives in a pool that grows in fixed
// chunks while the system warms up and then stays put. Growth is the only
// heap traffic, and every growth event reports to HotPathAllocs — the
// counting hook behind the "zero allocations per steady-state IO"
// assertion in router_stress_test, shard_test and the fault-matrix CI
// job (NVMETRO_ZERO_ALLOC_STRICT=1 turns a steady-state growth event
// into an abort so sanitizer jobs catch regressions outside EXPECTs).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "common/types.h"

namespace nvmetro::mem {

/// Process-wide accounting of pool growth on registered hot paths.
///
/// Scope: this counts the router-owned pools (routing slabs, cid tables,
/// batch scratch, deferral rings) — not the simulator's event queue or
/// the observability sinks, which are outside the routed-IO data path.
class HotPathAllocs {
 public:
  /// Total growth events / bytes since process start.
  static u64 count();
  static u64 bytes();

  /// Called by pools whenever they take memory from the heap.
  static void Note(usize grown_bytes);

  /// Opens/closes a steady-state window: growth inside the window is
  /// tallied separately (and aborts under NVMETRO_ZERO_ALLOC_STRICT=1).
  static void BeginSteadyState();
  static void EndSteadyState();
  static bool in_steady_state();
  static u64 steady_state_allocs();
};

/// Chunked slab pool: indexable like a vector, but grows in fixed chunks
/// so existing elements never move — pointers into the slab stay valid
/// across growth, and a warmed-up pool never reallocates.
template <typename T, u32 kChunk = 64>
class SlabPool {
 public:
  u32 size() const { return size_; }
  u32 capacity() const { return static_cast<u32>(chunks_.size()) * kChunk; }

  T* at(u32 i) { return &chunks_[i / kChunk][i % kChunk]; }
  const T* at(u32 i) const { return &chunks_[i / kChunk][i % kChunk]; }

  /// Appends a default-constructed slot, growing by one chunk when full.
  /// Returns the new slot's index.
  u32 PushBack() {
    if (size_ == capacity()) {
      HotPathAllocs::Note(sizeof(T) * kChunk);
      chunks_.push_back(std::make_unique<T[]>(kChunk));
    }
    return size_++;
  }

 private:
  std::vector<std::unique_ptr<T[]>> chunks_;
  u32 size_ = 0;
};

/// Flat handle table with per-slot generations: maps a dense u16 handle
/// to a u32 value in O(1) with no per-entry heap traffic — the shard
/// router's host-cid table (replacing the per-IO std::map node churn of
/// the pre-shard design).
///
/// A handle packs `slot | generation << kSlotBits`. Freeing a slot bumps
/// its generation, so a handle that outlives its mapping (a late device
/// completion for an aborted command whose cid slot was recycled) fails
/// the generation check instead of resolving to the new occupant.
class GenTable {
 public:
  static constexpr u32 kSlotBits = 12;
  static constexpr u16 kSlotMask = (1u << kSlotBits) - 1;
  static constexpr u32 kMaxSlots = 1u << kSlotBits;
  static constexpr u32 kGenMask = 0xF;  // 4-bit generation nibble
  static constexpr u32 kNoValue = 0xFFFFFFFFu;

  /// Maps a fresh handle to `value`. False when all kMaxSlots are live.
  bool Alloc(u32 value, u16* handle);

  /// The live value behind `handle`, or kNoValue when the handle is
  /// stale (slot freed or recycled since the handle was issued).
  u32 Find(u16 handle) const;

  /// Releases the mapping. False (and no state change) on a stale handle.
  bool Free(u16 handle);

  /// Find + Free in one step: returns the value and releases the slot,
  /// or kNoValue for a stale handle.
  u32 Take(u16 handle);

  /// Releases every slot holding `value` (rare abort paths: a request
  /// dying with legs in flight). Returns the number of slots freed.
  u32 FreeValue(u32 value);

  u32 in_use() const { return in_use_; }
  u32 capacity() const { return static_cast<u32>(slots_.size()); }

 private:
  struct Slot {
    u32 value = kNoValue;
    u8 gen = 0;
  };
  static constexpr u32 kChunk = 64;

  std::vector<Slot> slots_;
  std::vector<u16> free_;
  u32 in_use_ = 0;
};

}  // namespace nvmetro::mem

#include "mem/address_space.h"

#include <cstring>

#include "common/strutil.h"

namespace nvmetro::mem {

Status AddressSpace::Read(u64 addr, void* dst, u64 len) {
  u8* p = Translate(addr, len);
  if (!p)
    return OutOfRange(StrFormat("DMA read [%#llx,+%llu) unmapped",
                                (unsigned long long)addr,
                                (unsigned long long)len));
  std::memcpy(dst, p, len);
  return OkStatus();
}

Status AddressSpace::Write(u64 addr, const void* src, u64 len) {
  u8* p = Translate(addr, len);
  if (!p)
    return OutOfRange(StrFormat("DMA write [%#llx,+%llu) unmapped",
                                (unsigned long long)addr,
                                (unsigned long long)len));
  std::memcpy(p, src, len);
  return OkStatus();
}

Status AddressSpace::Fill(u64 addr, u8 byte, u64 len) {
  u8* p = Translate(addr, len);
  if (!p) return OutOfRange("DMA fill unmapped");
  std::memset(p, byte, len);
  return OkStatus();
}

IommuSpace::IommuSpace(AddressSpace* base, u64 window_base)
    : base_(base), window_base_(window_base), next_iova_(window_base) {}

u8* IommuSpace::Translate(u64 addr, u64 len) {
  if (addr < window_base_) {
    return base_ ? base_->Translate(addr, len) : nullptr;
  }
  auto it = windows_.upper_bound(addr);
  if (it == windows_.begin()) return nullptr;
  --it;
  u64 start = it->first;
  const Window& w = it->second;
  if (addr < start || len > w.len || addr - start > w.len - len)
    return nullptr;
  return w.host + (addr - start);
}

u64 IommuSpace::MapHostBuffer(void* host, u64 len) {
  u64 iova = next_iova_;
  // Advance by len rounded to 4 KiB so windows never collide.
  next_iova_ += (len + 4095) / 4096 * 4096 + 4096;
  windows_[iova] = Window{static_cast<u8*>(host), len};
  return iova;
}

void IommuSpace::Unmap(u64 iova) { windows_.erase(iova); }

}  // namespace nvmetro::mem

// DMA address spaces.
//
// The simulated NVMe controller DMAs data to/from an AddressSpace. For a
// VM using the fast path this is the guest's physical memory; for host
// kernel-path I/O (UIF io_uring writes, dm targets) host buffers are
// mapped into an IOMMU-style window so the same PRP machinery addresses
// both — mirroring how a real device sees IOVAs programmed by the host.
#pragma once

#include <map>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace nvmetro::mem {

class AddressSpace {
 public:
  virtual ~AddressSpace() = default;

  /// Host pointer for [addr, addr+len), or nullptr when unmapped/OOB.
  virtual u8* Translate(u64 addr, u64 len) = 0;

  /// Bounds-checked copy out of the space.
  Status Read(u64 addr, void* dst, u64 len);
  /// Bounds-checked copy into the space.
  Status Write(u64 addr, const void* src, u64 len);
  /// Bounds-checked fill.
  Status Fill(u64 addr, u8 byte, u64 len);
};

/// An IOMMU-style space layering dynamically mapped host-buffer windows on
/// top of a base space (typically guest memory mapped at identity).
/// Window addresses are allocated above `window_base`, which must be >=
/// the base space size.
class IommuSpace : public AddressSpace {
 public:
  IommuSpace(AddressSpace* base, u64 window_base);

  u8* Translate(u64 addr, u64 len) override;

  /// Maps `len` bytes at `host` into the space; returns the IOVA.
  /// The mapping is page-granular in address assignment but byte-exact.
  u64 MapHostBuffer(void* host, u64 len);

  /// Removes a mapping created by MapHostBuffer.
  void Unmap(u64 iova);

  usize mapped_windows() const { return windows_.size(); }

 private:
  struct Window {
    u8* host;
    u64 len;
  };
  AddressSpace* base_;
  u64 window_base_;
  u64 next_iova_;
  std::map<u64, Window> windows_;  // iova -> window
};

}  // namespace nvmetro::mem

#include "kblock/vhost_scsi.h"

#include <cstring>

namespace nvmetro::kblock {

VhostScsiBackend::VhostScsiBackend(sim::Simulator* sim, sim::VCpu* worker,
                                   BlockDevice* dev, Params params)
    : sim_(sim), worker_(worker), dev_(dev), params_(params) {}

void VhostScsiBackend::Enqueue(Request req) {
  vring_.push_back(std::move(req));
}

void VhostScsiBackend::Kick() {
  if (worker_active_) return;  // worker already running; it will see it
  worker_active_ = true;
  SimTime wake = sim::WakePenalty(*worker_, params_.kick_wakeup_warm_ns,
                                  params_.kick_wakeup_cold_ns);
  worker_->Charge(wake / 4);  // scheduler/wake path CPU
  sim_->ScheduleAfter(wake, [this] { WorkerLoop(); });
}

void VhostScsiBackend::WorkerLoop() {
  if (vring_.empty()) {
    worker_active_ = false;
    return;
  }
  Request req = std::move(vring_.front());
  vring_.pop_front();
  worker_->Run(params_.per_req_cpu_ns, [this, req = std::move(req)]() mutable {
    Serve(std::move(req));
    WorkerLoop();
  });
}

void VhostScsiBackend::Serve(Request req) {
  served_++;
  scsi::ParsedCdb cdb = scsi::ParseCdb(req.cdb);
  auto complete = [this, done = std::move(req.done)](u8 status, u8 sense) {
    SimTime wake = sim::WakePenalty(*worker_, params_.cpl_wake_warm_ns,
                                    params_.cpl_wake_cold_ns);
    sim_->ScheduleAfter(wake, [this, done, status, sense] {
      worker_->Run(params_.per_cpl_cpu_ns, [this, done, status, sense] {
        sim_->ScheduleAfter(params_.irq_latency_ns, [done, status, sense] {
          if (done) done(status, sense);
        });
      });
    });
  };

  switch (cdb.type) {
    case scsi::ParsedCdb::Type::kRead:
    case scsi::ParsedCdb::Type::kWrite: {
      Bio bio;
      bio.op = cdb.type == scsi::ParsedCdb::Type::kRead ? Bio::Op::kRead
                                                        : Bio::Op::kWrite;
      bio.sector = cdb.lba;
      bio.segments = std::move(req.segments);
      if (bio.length() != static_cast<u64>(cdb.nblocks) * kSectorSize ||
          cdb.nblocks == 0) {
        complete(scsi::kCheckCondition, scsi::kIllegalRequest);
        return;
      }
      if (cdb.lba + cdb.nblocks > dev_->capacity_sectors()) {
        complete(scsi::kCheckCondition, scsi::kIllegalRequest);
        return;
      }
      bio.on_complete = [complete](Status st) {
        if (st.ok()) {
          complete(scsi::kGood, scsi::kNoSense);
        } else {
          complete(scsi::kCheckCondition, scsi::kMediumError);
        }
      };
      dev_->Submit(std::move(bio));
      return;
    }
    case scsi::ParsedCdb::Type::kSyncCache: {
      Bio bio = Bio::Flush([complete](Status st) {
        complete(st.ok() ? scsi::kGood : scsi::kCheckCondition,
                 st.ok() ? scsi::kNoSense : scsi::kMediumError);
      });
      dev_->Submit(std::move(bio));
      return;
    }
    case scsi::ParsedCdb::Type::kReadCapacity: {
      if (req.segments.empty() ||
          req.segments[0].len < sizeof(scsi::ReadCapacity16Data)) {
        complete(scsi::kCheckCondition, scsi::kIllegalRequest);
        return;
      }
      scsi::ReadCapacity16Data data{};
      scsi::PutBe64(reinterpret_cast<u8*>(&data.max_lba_be),
                    dev_->capacity_sectors() - 1);
      scsi::PutBe32(reinterpret_cast<u8*>(&data.block_size_be), kSectorSize);
      std::memcpy(req.segments[0].data, &data, sizeof(data));
      complete(scsi::kGood, scsi::kNoSense);
      return;
    }
    case scsi::ParsedCdb::Type::kTestUnitReady:
      complete(scsi::kGood, scsi::kNoSense);
      return;
    case scsi::ParsedCdb::Type::kUnknown:
      complete(scsi::kCheckCondition, scsi::kIllegalRequest);
      return;
  }
}

}  // namespace nvmetro::kblock

// Minimal SCSI command set: CDB construction and parsing for the
// vhost-scsi baseline, which carries guest block I/O as SCSI commands
// (virtio-scsi) and translates them onto the host block layer.
#pragma once

#include <cstring>

#include "common/types.h"

namespace nvmetro::kblock::scsi {

/// SCSI operation codes used by the virtual SCSI path.
enum Opcode : u8 {
  kTestUnitReady = 0x00,
  kInquiry = 0x12,
  kUnmap = 0x42,
  kRead16 = 0x88,
  kWrite16 = 0x8A,
  kSynchronizeCache16 = 0x91,
  kServiceActionIn16 = 0x9E,  // READ CAPACITY (16) via service action 0x10
};

/// SCSI status byte values.
enum StatusByte : u8 {
  kGood = 0x00,
  kCheckCondition = 0x02,
};

/// Sense keys reported with CHECK CONDITION.
enum SenseKey : u8 {
  kNoSense = 0x0,
  kMediumError = 0x3,
  kIllegalRequest = 0x5,
};

/// 16-byte command descriptor block.
struct Cdb {
  u8 bytes[16] = {};
};

Cdb BuildRead16(u64 lba, u32 nblocks);
Cdb BuildWrite16(u64 lba, u32 nblocks);
Cdb BuildSynchronizeCache16();
Cdb BuildReadCapacity16();
Cdb BuildTestUnitReady();

struct ParsedCdb {
  enum class Type {
    kRead,
    kWrite,
    kSyncCache,
    kReadCapacity,
    kTestUnitReady,
    kUnknown,
  };
  Type type = Type::kUnknown;
  u64 lba = 0;
  u32 nblocks = 0;
  u8 opcode = 0;
};

ParsedCdb ParseCdb(const Cdb& cdb);

/// READ CAPACITY (16) response payload (first 12 of 32 bytes meaningful).
struct ReadCapacity16Data {
  u64 max_lba_be;       // big-endian last LBA
  u32 block_size_be;    // big-endian block length
  u8 rest[20] = {};
};
static_assert(sizeof(ReadCapacity16Data) == 32);

/// Big-endian helpers (SCSI is big-endian on the wire).
inline void PutBe64(u8* p, u64 v) {
  for (int i = 7; i >= 0; i--) {
    p[i] = static_cast<u8>(v);
    v >>= 8;
  }
}
inline void PutBe32(u8* p, u32 v) {
  for (int i = 3; i >= 0; i--) {
    p[i] = static_cast<u8>(v);
    v >>= 8;
  }
}
inline u64 GetBe64(const u8* p) {
  u64 v = 0;
  for (int i = 0; i < 8; i++) v = (v << 8) | p[i];
  return v;
}
inline u32 GetBe32(const u8* p) {
  u32 v = 0;
  for (int i = 0; i < 4; i++) v = (v << 8) | p[i];
  return v;
}

}  // namespace nvmetro::kblock::scsi

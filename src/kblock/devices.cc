#include "kblock/devices.h"

#include <cstring>

#include "nvme/defs.h"
#include "nvme/queue.h"

namespace nvmetro::kblock {

using nvme::Cqe;
using nvme::Sqe;

NvmeBlockDevice::NvmeBlockDevice(sim::Simulator* sim,
                                 ssd::SimulatedController* ctrl,
                                 mem::IommuSpace* iommu, u32 nsid)
    : sim_(sim), ctrl_(ctrl), iommu_(iommu), nsid_(nsid) {
  auto q = ctrl_->CreateIoQueuePair(256, [this] { OnCqNotify(); });
  qid_ = q.ok() ? *q : 0;
}

u64 NvmeBlockDevice::capacity_sectors() const {
  return ctrl_->ns_block_count(nsid_) * ctrl_->lba_size() / kSectorSize;
}

std::string NvmeBlockDevice::name() const {
  return "nvme-ns" + std::to_string(nsid_);
}

namespace {
constexpr u64 kPage = mem::kPageSize;
}  // namespace

void NvmeBlockDevice::Submit(Bio bio) {
  u64 len = bio.length();
  // The block layer splits bios larger than the device's max transfer
  // size (max_hw_sectors) into chained requests.
  u64 max = ctrl_->config().max_transfer;
  if ((bio.op == Bio::Op::kRead || bio.op == Bio::Op::kWrite) && len > max) {
    struct SplitState {
      int remaining;
      Status status = OkStatus();
      std::function<void(Status)> done;
    };
    auto state = std::make_shared<SplitState>();
    state->done = std::move(bio.on_complete);
    // Build sub-bios by walking the segment list in max-sized pieces.
    std::vector<Bio> subs;
    u64 sector = bio.sector;
    usize seg_idx = 0;
    u64 seg_off = 0;
    u64 left = len;
    while (left > 0) {
      Bio sub;
      sub.op = bio.op;
      sub.sector = sector;
      u64 take = std::min(left, max);
      u64 need = take;
      while (need > 0) {
        const BioSegment& seg = bio.segments[seg_idx];
        u64 n = std::min(need, seg.len - seg_off);
        sub.segments.push_back({seg.data + seg_off, n});
        seg_off += n;
        need -= n;
        if (seg_off == seg.len) {
          seg_idx++;
          seg_off = 0;
        }
      }
      sector += take / kSectorSize;
      left -= take;
      subs.push_back(std::move(sub));
    }
    state->remaining = static_cast<int>(subs.size());
    for (auto& sub : subs) {
      sub.on_complete = [state](Status st) {
        if (!st.ok() && state->status.ok()) state->status = st;
        if (--state->remaining == 0 && state->done) {
          state->done(state->status);
        }
      };
      Submit(std::move(sub));
    }
    return;
  }
  Pending p;

  Sqe sqe;
  sqe.nsid = nsid_;
  sqe.cid = next_cid_++;
  if (next_cid_ == 0) next_cid_ = 1;

  switch (bio.op) {
    case Bio::Op::kFlush:
      sqe.opcode = nvme::kCmdFlush;
      break;
    case Bio::Op::kDiscard: {
      sqe.opcode = nvme::kCmdDsm;
      sqe.cdw10 = 0;   // one range
      sqe.cdw11 = 0x4; // deallocate
      struct DsmRange {
        u32 cattr, nlb;
        u64 slba;
      };
      p.dsm_range = std::make_unique<std::vector<u8>>(sizeof(DsmRange));
      auto* r = reinterpret_cast<DsmRange*>(p.dsm_range->data());
      r->cattr = 0;
      r->nlb = static_cast<u32>(len / kSectorSize);
      r->slba = bio.sector;
      u64 win = iommu_->MapHostBuffer(p.dsm_range->data(), sizeof(DsmRange));
      p.windows.push_back(win);
      sqe.prp1 = win;
      break;
    }
    case Bio::Op::kRead:
    case Bio::Op::kWrite: {
      sqe.opcode = bio.op == Bio::Op::kRead ? nvme::kCmdRead : nvme::kCmdWrite;
      sqe.set_slba(bio.sector);
      sqe.set_nlb0(static_cast<u16>(len / kSectorSize - 1));

      // Build PRP entries from the segment list. Windows are page-aligned,
      // so a segment contributes entries at window, window+4K, ... A
      // trailing partial page is only PRP-expressible on the final
      // segment; otherwise bounce through a contiguous buffer.
      bool friendly = true;
      for (usize i = 0; i + 1 < bio.segments.size(); i++) {
        if (bio.segments[i].len % kPage != 0) friendly = false;
      }
      std::vector<u64> entries;
      if (friendly) {
        for (const auto& seg : bio.segments) {
          u64 win = iommu_->MapHostBuffer(seg.data, seg.len);
          p.windows.push_back(win);
          for (u64 off = 0; off < seg.len; off += kPage) {
            entries.push_back(win + off);
          }
        }
      } else {
        bounced_++;
        p.bounce = std::make_unique<std::vector<u8>>(len);
        if (bio.op == Bio::Op::kWrite) {
          u64 off = 0;
          for (const auto& seg : bio.segments) {
            std::memcpy(p.bounce->data() + off, seg.data, seg.len);
            off += seg.len;
          }
        }
        u64 win = iommu_->MapHostBuffer(p.bounce->data(), len);
        p.windows.push_back(win);
        for (u64 off = 0; off < len; off += kPage) {
          entries.push_back(win + off);
        }
      }
      sqe.prp1 = entries[0];
      if (entries.size() == 2) {
        sqe.prp2 = entries[1];
      } else if (entries.size() > 2) {
        // One list page suffices up to 512 entries (2 MiB transfers).
        p.list_page = std::make_unique<std::vector<u8>>(kPage, 0);
        std::memcpy(p.list_page->data(), entries.data() + 1,
                    (entries.size() - 1) * sizeof(u64));
        u64 win = iommu_->MapHostBuffer(p.list_page->data(), kPage);
        p.windows.push_back(win);
        sqe.prp2 = win;
      }
      break;
    }
  }

  p.bio = std::move(bio);
  u16 cid = sqe.cid;
  if (!ctrl_->Submit(qid_, sqe)) {
    // Queue full: retry shortly (the block layer would plug/requeue).
    Pending* stored = &pending_.emplace(cid, std::move(p)).first->second;
    (void)stored;
    sim_->ScheduleAfter(20 * kUs, [this, cid, sqe]() mutable {
      auto it = pending_.find(cid);
      if (it == pending_.end()) return;
      if (!ctrl_->Submit(qid_, sqe)) {
        Pending p2 = std::move(it->second);
        pending_.erase(it);
        Finish(std::move(p2), ResourceExhausted("nvme queue full"));
      }
    });
    return;
  }
  pending_.emplace(cid, std::move(p));
}

void NvmeBlockDevice::OnCqNotify() {
  auto* cq = ctrl_->cq(qid_);
  if (!cq) return;
  Cqe cqe;
  while (cq->Peek(&cqe)) {
    cq->Pop();
    auto it = pending_.find(cqe.cid);
    if (it != pending_.end()) {
      Pending p = std::move(it->second);
      pending_.erase(it);
      Status st = nvme::StatusOk(cqe.status())
                      ? OkStatus()
                      : Internal(nvme::StatusName(cqe.status()));
      Finish(std::move(p), st);
    }
  }
  cq->PublishHead();
  ctrl_->RingCqDoorbell(qid_);
}

void NvmeBlockDevice::Finish(Pending p, Status st) {
  if (p.bounce && p.bio.op == Bio::Op::kRead && st.ok()) {
    u64 off = 0;
    for (const auto& seg : p.bio.segments) {
      std::memcpy(seg.data, p.bounce->data() + off, seg.len);
      off += seg.len;
    }
  }
  for (u64 w : p.windows) iommu_->Unmap(w);
  if (p.bio.on_complete) p.bio.on_complete(st);
}

RamBlockDevice::RamBlockDevice(sim::Simulator* sim, u64 capacity_bytes,
                               SimTime latency)
    : sim_(sim),
      capacity_(capacity_bytes),
      latency_(latency),
      store_(capacity_bytes) {}

void RamBlockDevice::Submit(Bio bio) {
  sim_->ScheduleAfter(latency_, [this, bio = std::move(bio)]() mutable {
    Status st;
    u64 off = bio.sector * kSectorSize;
    switch (bio.op) {
      case Bio::Op::kRead:
        for (const auto& seg : bio.segments) {
          st = store_.Read(off, seg.data, seg.len);
          if (!st.ok()) break;
          off += seg.len;
        }
        break;
      case Bio::Op::kWrite:
        for (const auto& seg : bio.segments) {
          st = store_.Write(off, seg.data, seg.len);
          if (!st.ok()) break;
          off += seg.len;
        }
        break;
      case Bio::Op::kDiscard:
        st = store_.Trim(off, bio.length());
        break;
      case Bio::Op::kFlush:
        break;
    }
    if (bio.on_complete) bio.on_complete(st);
  });
}

RemoteBlockDevice::RemoteBlockDevice(sim::Simulator* sim, BlockDevice* remote,
                                     LinkParams link)
    : sim_(sim), remote_(remote), link_(link) {}

void RemoteBlockDevice::Submit(Bio bio) {
  if (link_down_) {
    // Dead peer: the command is never transmitted; the initiator's
    // keep-alive surfaces the failure after one propagation delay.
    link_drops_++;
    auto done = std::move(bio.on_complete);
    sim_->ScheduleAfter(link_.one_way_ns, [done = std::move(done)] {
      if (done) done(ResourceExhausted("nvmeof link down"));
    });
    return;
  }
  // Serialize payload onto the link (writes carry data out; reads carry
  // data back — we charge the transfer once, on the heavier direction).
  u64 payload = bio.length();
  auto tx_time =
      link_.per_op_target_ns +
      static_cast<SimTime>(static_cast<double>(payload) / link_.bytes_per_ns);
  SimTime start = std::max(sim_->now(), tx_free_);
  tx_free_ = start + tx_time;
  SimTime arrive = tx_free_ + link_.one_way_ns;

  auto done = std::move(bio.on_complete);
  bio.on_complete = [this, done = std::move(done)](Status st) {
    // Response flies back after one-way latency.
    sim_->ScheduleAfter(link_.one_way_ns, [done, st] {
      if (done) done(st);
    });
  };
  sim_->ScheduleAfter(arrive - sim_->now(),
                      [this, bio = std::move(bio)]() mutable {
                        remote_->Submit(std::move(bio));
                      });
}

}  // namespace nvmetro::kblock

#include "kblock/scsi.h"

namespace nvmetro::kblock::scsi {

Cdb BuildRead16(u64 lba, u32 nblocks) {
  Cdb cdb;
  cdb.bytes[0] = kRead16;
  PutBe64(&cdb.bytes[2], lba);
  PutBe32(&cdb.bytes[10], nblocks);
  return cdb;
}

Cdb BuildWrite16(u64 lba, u32 nblocks) {
  Cdb cdb;
  cdb.bytes[0] = kWrite16;
  PutBe64(&cdb.bytes[2], lba);
  PutBe32(&cdb.bytes[10], nblocks);
  return cdb;
}

Cdb BuildSynchronizeCache16() {
  Cdb cdb;
  cdb.bytes[0] = kSynchronizeCache16;
  return cdb;
}

Cdb BuildReadCapacity16() {
  Cdb cdb;
  cdb.bytes[0] = kServiceActionIn16;
  cdb.bytes[1] = 0x10;  // READ CAPACITY (16)
  cdb.bytes[13] = 32;   // allocation length
  return cdb;
}

Cdb BuildTestUnitReady() { return Cdb{}; }

ParsedCdb ParseCdb(const Cdb& cdb) {
  ParsedCdb out;
  out.opcode = cdb.bytes[0];
  switch (cdb.bytes[0]) {
    case kRead16:
      out.type = ParsedCdb::Type::kRead;
      out.lba = GetBe64(&cdb.bytes[2]);
      out.nblocks = GetBe32(&cdb.bytes[10]);
      break;
    case kWrite16:
      out.type = ParsedCdb::Type::kWrite;
      out.lba = GetBe64(&cdb.bytes[2]);
      out.nblocks = GetBe32(&cdb.bytes[10]);
      break;
    case kSynchronizeCache16:
      out.type = ParsedCdb::Type::kSyncCache;
      break;
    case kServiceActionIn16:
      if ((cdb.bytes[1] & 0x1F) == 0x10) {
        out.type = ParsedCdb::Type::kReadCapacity;
      }
      break;
    case kTestUnitReady:
      out.type = ParsedCdb::Type::kTestUnitReady;
      break;
    default:
      out.type = ParsedCdb::Type::kUnknown;
  }
  return out;
}

}  // namespace nvmetro::kblock::scsi

// vhost-scsi backend: the in-kernel SCSI target serving a guest's
// virtio-scsi queue (the paper's main in-kernel baseline).
//
// Cost structure modeled (each a real phenomenon of the Linux vhost
// path): the guest's virtqueue kick is an eventfd that wakes the vhost
// kernel worker thread (wakeup latency + context switch); the worker
// parses the SCSI CDB, translates it to a bio and pushes it through the
// host block layer (per-request CPU); completion raises a virtual
// interrupt back into the guest (irqfd). The data path is real: guest
// pages are carried as bio segments through to the device.
#pragma once

#include <deque>
#include <functional>

#include "kblock/bio.h"
#include "kblock/scsi.h"
#include "sim/simulator.h"
#include "sim/vcpu.h"

namespace nvmetro::kblock {

struct VhostScsiParams {
  /// Kick (eventfd) to worker-running latency: cold when the vhost
  /// kthread has slept a while (scheduler + C-state), warm otherwise.
  SimTime kick_wakeup_cold_ns = 36'000;
  SimTime kick_wakeup_warm_ns = 3'000;
  /// Worker CPU per request: virtio descriptor walk + CDB parse +
  /// SCSI->bio translation + block-layer submit.
  SimTime per_req_cpu_ns = 4'500;
  /// Worker CPU per completion: response write + irqfd signal.
  SimTime per_cpl_cpu_ns = 2'500;
  /// Completion-side worker wake (cold after long device latency).
  SimTime cpl_wake_cold_ns = 28'000;
  SimTime cpl_wake_warm_ns = 1'000;
  /// Latency from completion to the guest seeing the virtual IRQ.
  SimTime irq_latency_ns = 14'000;
};

class VhostScsiBackend {
 public:
  using Params = VhostScsiParams;

  struct Request {
    scsi::Cdb cdb;
    std::vector<BioSegment> segments;  // guest pages (host-translated)
    /// Completion: SCSI status byte + sense key.
    std::function<void(u8 status, u8 sense)> done;
  };

  VhostScsiBackend(sim::Simulator* sim, sim::VCpu* worker, BlockDevice* dev,
                   Params params = {});

  /// Places a request on the virtqueue (no cost — the guest built the
  /// descriptors) .
  void Enqueue(Request req);

  /// Guest doorbell: wakes the vhost worker if it is idle.
  void Kick();

  u64 requests_served() const { return served_; }
  /// True while the worker is draining the ring (for EVENT_IDX-style
  /// notification suppression by the guest).
  bool worker_active() const { return worker_active_; }

 private:
  void WorkerLoop();
  void Serve(Request req);

  sim::Simulator* sim_;
  sim::VCpu* worker_;
  BlockDevice* dev_;
  Params params_;
  std::deque<Request> vring_;
  bool worker_active_ = false;
  u64 served_ = 0;
};

}  // namespace nvmetro::kblock

// Device-mapper targets: linear, crypt, mirror.
//
// Linux's device mapper provides "a stackable logic layer on top of
// storage devices" (paper §V-F); the paper's baselines for the two
// storage functions are dm-crypt and dm-mirror underneath vhost-scsi.
// Targets here are real: dm-crypt performs XTS-AES with the same on-disk
// format as the NVMetro encryption UIF (cross-compatibility is tested),
// and dm-mirror maintains a byte-identical secondary.
#pragma once

#include <memory>
#include <vector>

#include "crypto/xts.h"
#include "kblock/bio.h"
#include "sim/simulator.h"
#include "sim/vcpu.h"

namespace nvmetro::obs {
class Counter;
class Observability;
}  // namespace nvmetro::obs

namespace nvmetro::kblock {

/// dm-linear: remaps a contiguous range of an underlying device.
class DmLinear : public BlockDevice {
 public:
  DmLinear(BlockDevice* lower, u64 offset_sectors, u64 len_sectors);

  void Submit(Bio bio) override;
  u64 capacity_sectors() const override { return len_; }
  std::string name() const override { return "dm-linear(" + lower_->name() + ")"; }

 private:
  BlockDevice* lower_;
  u64 offset_;
  u64 len_;
};

/// dm-crypt: transparent XTS-AES encryption (aes-xts-plain64, 512-byte
/// sectors). Crypto work runs on kcryptd worker vCPUs: writes are
/// encrypted into a bounce buffer before hitting the lower device; reads
/// are decrypted in place after the lower device completes.
struct DmCryptParams {
  /// Crypto throughput, ns per byte. Slower than a userspace AES-NI loop:
  /// the kernel path walks scatterlists sector by sector with per-sector
  /// IV setup inside the crypto API (one reason the paper's UIF beats
  /// dm-crypt at scale).
  double aes_ns_per_byte = 0.85;
  /// Per-bio kcryptd overhead (queueing, bio clone, page allocation).
  SimTime per_bio_ns = 2'500;
};

class DmCrypt : public BlockDevice {
 public:
  using Params = DmCryptParams;

  static Result<std::unique_ptr<DmCrypt>> Create(
      sim::Simulator* sim, BlockDevice* lower, const u8* xts_key,
      usize key_len, std::vector<sim::VCpu*> workers, Params params = {});

  void Submit(Bio bio) override;
  u64 capacity_sectors() const override { return lower_->capacity_sectors(); }
  std::string name() const override { return "dm-crypt(" + lower_->name() + ")"; }

  /// Publishes "dm.crypt.bios" / "dm.crypt.bytes" counters.
  void SetObservability(obs::Observability* obs);

 private:
  DmCrypt(sim::Simulator* sim, BlockDevice* lower, crypto::XtsCipher cipher,
          std::vector<sim::VCpu*> workers, Params params)
      : sim_(sim),
        lower_(lower),
        cipher_(std::move(cipher)),
        workers_(std::move(workers)),
        params_(params) {}

  sim::VCpu* PickWorker();
  SimTime CryptoCost(u64 len) const {
    return static_cast<SimTime>(static_cast<double>(len) *
                                params_.aes_ns_per_byte) +
           params_.per_bio_ns;
  }
  /// Decrypts bio segments in place (handles sectors straddling segment
  /// boundaries).
  void DecryptSegments(const Bio& bio);

  sim::Simulator* sim_;
  BlockDevice* lower_;
  crypto::XtsCipher cipher_;
  std::vector<sim::VCpu*> workers_;
  Params params_;
  obs::Counter* m_bios_ = nullptr;
  obs::Counter* m_bytes_ = nullptr;
};

/// dm-mirror (RAID1): synchronous writes to both legs; reads are
/// round-robin balanced across the legs (so half of them hit the remote
/// mirror — the contrast with NVMetro's classifier, which steers every
/// read to the local drive). Failed reads fall back to the other leg.
class DmMirror : public BlockDevice {
 public:
  /// `cpu` (optional) is charged `per_op_ns` per bio for the mirror
  /// layer's remap/region-log work.
  DmMirror(BlockDevice* primary, BlockDevice* secondary,
           bool read_balance = true, sim::VCpu* cpu = nullptr,
           SimTime per_op_ns = 3'000);

  void Submit(Bio bio) override;
  u64 capacity_sectors() const override;
  std::string name() const override {
    return "dm-mirror(" + primary_->name() + "," + secondary_->name() + ")";
  }

  u64 degraded_reads() const { return degraded_reads_; }

  /// Publishes "dm.mirror.bios" / "dm.mirror.degraded_reads" counters.
  void SetObservability(obs::Observability* obs);

 private:
  BlockDevice* primary_;
  BlockDevice* secondary_;
  bool read_balance_;
  sim::VCpu* cpu_;
  SimTime per_op_ns_;
  u64 read_rr_ = 0;
  u64 degraded_reads_ = 0;
  obs::Counter* m_bios_ = nullptr;
  obs::Counter* m_degraded_ = nullptr;
};

}  // namespace nvmetro::kblock

// Concrete block devices: the NVMe-backed host driver, a RAM device for
// tests, and an NVMe-oF remote transport wrapper.
#pragma once

#include <map>
#include <memory>

#include "kblock/bio.h"
#include "mem/guest_memory.h"
#include "mem/address_space.h"
#include "sim/simulator.h"
#include "ssd/backing_store.h"
#include "ssd/controller.h"

namespace nvmetro::kblock {

/// Host NVMe driver exposing one namespace of a SimulatedController as a
/// block device — the moral equivalent of /dev/nvme0n1. It owns a queue
/// pair on the controller and maps bio segments into the controller's
/// IOMMU space to build PRPs; segment lists that PRP cannot express are
/// bounced through a contiguous buffer (as the kernel does for
/// badly-aligned I/O).
class NvmeBlockDevice : public BlockDevice {
 public:
  /// `iommu` must be the address space the controller DMAs through.
  NvmeBlockDevice(sim::Simulator* sim, ssd::SimulatedController* ctrl,
                  mem::IommuSpace* iommu, u32 nsid);

  void Submit(Bio bio) override;
  u64 capacity_sectors() const override;
  std::string name() const override;

  u64 bounced_bios() const { return bounced_; }

 private:
  struct Pending {
    Bio bio;
    std::vector<u64> windows;       // IOMMU windows to unmap
    std::unique_ptr<std::vector<u8>> list_page;  // PRP list storage
    std::unique_ptr<std::vector<u8>> bounce;     // bounce buffer, if used
    std::unique_ptr<std::vector<u8>> dsm_range;  // DSM payload, if used
  };

  void OnCqNotify();
  void Finish(Pending p, Status st);

  sim::Simulator* sim_;
  ssd::SimulatedController* ctrl_;
  mem::IommuSpace* iommu_;
  u32 nsid_;
  u16 qid_ = 0;
  u16 next_cid_ = 1;
  u64 bounced_ = 0;
  std::map<u16, Pending> pending_;
};

/// RAM-backed device with a fixed service latency; used by unit tests and
/// as a fast stand-in where device timing is irrelevant.
class RamBlockDevice : public BlockDevice {
 public:
  RamBlockDevice(sim::Simulator* sim, u64 capacity_bytes,
                 SimTime latency = 5 * kUs);

  void Submit(Bio bio) override;
  u64 capacity_sectors() const override { return capacity_ / kSectorSize; }
  std::string name() const override { return "ram"; }

  ssd::BackingStore& store() { return store_; }

 private:
  sim::Simulator* sim_;
  u64 capacity_;
  SimTime latency_;
  ssd::BackingStore store_;
};

/// NVMe-over-Fabrics transport: wraps a device that lives on a remote
/// host, adding link latency and bandwidth. Used by the replication
/// function's secondary drive ("attached to a remote host ... connected
/// using NVMe over Infiniband", paper §IV-B).
struct NvmeOfLinkParams {
  /// One-way propagation + stack latency (NVMe over the testbed's
  /// Infiniband fabric, IPoIB-class).
  SimTime one_way_ns = 15'000;
  /// Effective link bandwidth in bytes/ns. The paper's R420-era IB gear
  /// over IPoIB sustains well under line rate (~3.6 Gb/s effective).
  double bytes_per_ns = 0.45;
  /// Remote-target processing per command (nvmet request handling).
  SimTime per_op_target_ns = 6'000;
};

class RemoteBlockDevice : public BlockDevice {
 public:
  using LinkParams = NvmeOfLinkParams;

  RemoteBlockDevice(sim::Simulator* sim, BlockDevice* remote,
                    LinkParams link = {});

  void Submit(Bio bio) override;
  u64 capacity_sectors() const override { return remote_->capacity_sectors(); }
  std::string name() const override { return "nvmeof:" + remote_->name(); }

  /// Fault hook: while the link is down, submissions never reach the
  /// remote target — they error out after one propagation delay (the
  /// initiator notices the dead peer), so nothing blackholes.
  void SetLinkDown(bool down) { link_down_ = down; }
  bool link_down() const { return link_down_; }
  u64 link_drops() const { return link_drops_; }

 private:
  sim::Simulator* sim_;
  BlockDevice* remote_;
  LinkParams link_;
  SimTime tx_free_ = 0;  // link serialization
  bool link_down_ = false;
  u64 link_drops_ = 0;
};

}  // namespace nvmetro::kblock

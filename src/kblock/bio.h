// Block-layer I/O descriptor (the "bio") and the block device interface.
//
// NVMetro's kernel path "translates requests and sends them through the
// host kernel's block device architecture" (paper §III-A); dm-crypt,
// dm-mirror and vhost-scsi all live on this layer. A Bio carries host
// memory segments (for guest data these are guest pages translated to
// host pointers, so no copies happen) and a completion callback.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace nvmetro::kblock {

/// 512-byte logical sectors throughout the block layer.
constexpr u32 kSectorSize = 512;

struct BioSegment {
  u8* data = nullptr;
  u64 len = 0;
};

struct Bio {
  enum class Op { kRead, kWrite, kFlush, kDiscard };

  Op op = Op::kRead;
  u64 sector = 0;  // first sector
  std::vector<BioSegment> segments;
  std::function<void(Status)> on_complete;

  u64 length() const {
    u64 n = 0;
    for (const auto& s : segments) n += s.len;
    return n;
  }

  static Bio Read(u64 sector, u8* data, u64 len,
                  std::function<void(Status)> done) {
    Bio b;
    b.op = Op::kRead;
    b.sector = sector;
    b.segments = {{data, len}};
    b.on_complete = std::move(done);
    return b;
  }
  static Bio Write(u64 sector, const u8* data, u64 len,
                   std::function<void(Status)> done) {
    Bio b;
    b.op = Op::kWrite;
    b.sector = sector;
    b.segments = {{const_cast<u8*>(data), len}};
    b.on_complete = std::move(done);
    return b;
  }
  static Bio Flush(std::function<void(Status)> done) {
    Bio b;
    b.op = Op::kFlush;
    b.on_complete = std::move(done);
    return b;
  }
  static Bio Discard(u64 sector, u64 len,
                     std::function<void(Status)> done) {
    Bio b;
    b.op = Op::kDiscard;
    b.sector = sector;
    b.segments = {{nullptr, len}};
    b.on_complete = std::move(done);
    return b;
  }
};

/// Abstract block device: drives, dm targets and remote transports all
/// implement this, so targets stack arbitrarily (as in Linux's DM).
class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  /// Asynchronous submit; on_complete fires when the I/O finishes (in
  /// simulated time). Implementations must not call on_complete inline
  /// before returning.
  virtual void Submit(Bio bio) = 0;

  virtual u64 capacity_sectors() const = 0;
  virtual std::string name() const = 0;
};

}  // namespace nvmetro::kblock

#include "kblock/dm.h"

#include <cstring>

#include "obs/obs.h"

namespace nvmetro::kblock {

// --- DmLinear ----------------------------------------------------------------

DmLinear::DmLinear(BlockDevice* lower, u64 offset_sectors, u64 len_sectors)
    : lower_(lower), offset_(offset_sectors), len_(len_sectors) {}

void DmLinear::Submit(Bio bio) {
  if (bio.op != Bio::Op::kFlush) {
    u64 sectors = bio.length() / kSectorSize;
    if (bio.sector + sectors > len_) {
      auto done = std::move(bio.on_complete);
      if (done) done(OutOfRange("dm-linear: out of range"));
      return;
    }
    bio.sector += offset_;
  }
  lower_->Submit(std::move(bio));
}

// --- DmCrypt -----------------------------------------------------------------

Result<std::unique_ptr<DmCrypt>> DmCrypt::Create(
    sim::Simulator* sim, BlockDevice* lower, const u8* xts_key,
    usize key_len, std::vector<sim::VCpu*> workers, Params params) {
  if (workers.empty()) return InvalidArgument("dm-crypt needs >=1 worker");
  auto cipher = crypto::XtsCipher::Create(xts_key, key_len);
  if (!cipher.ok()) return cipher.status();
  return std::unique_ptr<DmCrypt>(new DmCrypt(
      sim, lower, std::move(*cipher), std::move(workers), params));
}

sim::VCpu* DmCrypt::PickWorker() {
  sim::VCpu* best = workers_[0];
  for (sim::VCpu* w : workers_) {
    if (w->free_at() < best->free_at()) best = w;
  }
  return best;
}

void DmCrypt::DecryptSegments(const Bio& bio) {
  u64 sector = bio.sector;
  usize seg_idx = 0;
  u64 seg_off = 0;
  u8 tmp[kSectorSize];
  u64 remaining = bio.length();
  while (remaining >= kSectorSize) {
    const BioSegment& seg = bio.segments[seg_idx];
    if (seg.len - seg_off >= kSectorSize) {
      cipher_.DecryptSector(sector, seg.data + seg_off, seg.data + seg_off,
                            kSectorSize);
      seg_off += kSectorSize;
    } else {
      // Sector straddles a segment boundary: gather, decrypt, scatter.
      u64 got = 0;
      usize i = seg_idx;
      u64 o = seg_off;
      while (got < kSectorSize) {
        u64 n = std::min<u64>(kSectorSize - got, bio.segments[i].len - o);
        std::memcpy(tmp + got, bio.segments[i].data + o, n);
        got += n;
        o += n;
        if (o == bio.segments[i].len) {
          i++;
          o = 0;
        }
      }
      cipher_.DecryptSector(sector, tmp, tmp, kSectorSize);
      got = 0;
      while (got < kSectorSize) {
        u64 n = std::min<u64>(kSectorSize - got,
                              bio.segments[seg_idx].len - seg_off);
        std::memcpy(bio.segments[seg_idx].data + seg_off, tmp + got, n);
        got += n;
        seg_off += n;
        if (seg_off == bio.segments[seg_idx].len) {
          seg_idx++;
          seg_off = 0;
        }
      }
      sector++;
      remaining -= kSectorSize;
      continue;
    }
    if (seg_off == seg.len) {
      seg_idx++;
      seg_off = 0;
    }
    sector++;
    remaining -= kSectorSize;
  }
}

void DmCrypt::SetObservability(obs::Observability* obs) {
  if (!obs) return;
  m_bios_ = obs->metrics().GetCounter("dm.crypt.bios");
  m_bytes_ = obs->metrics().GetCounter("dm.crypt.bytes");
}

void DmCrypt::Submit(Bio bio) {
  if (m_bios_) m_bios_->Inc();
  if (m_bytes_) m_bytes_->Inc(bio.length());
  switch (bio.op) {
    case Bio::Op::kFlush:
    case Bio::Op::kDiscard:
      lower_->Submit(std::move(bio));
      return;
    case Bio::Op::kWrite: {
      u64 len = bio.length();
      if (len % kSectorSize != 0) {
        if (bio.on_complete)
          bio.on_complete(InvalidArgument("dm-crypt: unaligned write"));
        return;
      }
      // kcryptd: encrypt into a bounce buffer, then write below.
      auto cipher_buf = std::make_shared<std::vector<u8>>(len);
      sim::VCpu* worker = PickWorker();
      auto self = this;
      worker->Run(CryptoCost(len), [self, bio = std::move(bio),
                                    cipher_buf]() mutable {
        u64 off = 0;
        u64 sector = bio.sector;
        // Gather plaintext and encrypt sector by sector.
        std::vector<u8> plain(cipher_buf->size());
        for (const auto& seg : bio.segments) {
          std::memcpy(plain.data() + off, seg.data, seg.len);
          off += seg.len;
        }
        self->cipher_.EncryptRange(sector, kSectorSize, plain.data(),
                                   cipher_buf->data(), plain.size());
        Bio lower_bio;
        lower_bio.op = Bio::Op::kWrite;
        lower_bio.sector = bio.sector;
        lower_bio.segments = {{cipher_buf->data(), cipher_buf->size()}};
        auto done = std::move(bio.on_complete);
        lower_bio.on_complete = [done = std::move(done),
                                 cipher_buf](Status st) {
          if (done) done(st);
        };
        self->lower_->Submit(std::move(lower_bio));
      });
      return;
    }
    case Bio::Op::kRead: {
      u64 len = bio.length();
      if (len % kSectorSize != 0) {
        if (bio.on_complete)
          bio.on_complete(InvalidArgument("dm-crypt: unaligned read"));
        return;
      }
      // Read ciphertext into the caller's buffers, then decrypt in place
      // on a kcryptd worker.
      auto shared_bio = std::make_shared<Bio>(std::move(bio));
      Bio lower_bio;
      lower_bio.op = Bio::Op::kRead;
      lower_bio.sector = shared_bio->sector;
      lower_bio.segments = shared_bio->segments;
      auto self = this;
      lower_bio.on_complete = [self, shared_bio, len](Status st) {
        if (!st.ok()) {
          if (shared_bio->on_complete) shared_bio->on_complete(st);
          return;
        }
        sim::VCpu* worker = self->PickWorker();
        worker->Run(self->CryptoCost(len), [self, shared_bio] {
          self->DecryptSegments(*shared_bio);
          if (shared_bio->on_complete) shared_bio->on_complete(OkStatus());
        });
      };
      lower_->Submit(std::move(lower_bio));
      return;
    }
  }
}

// --- DmMirror ----------------------------------------------------------------

DmMirror::DmMirror(BlockDevice* primary, BlockDevice* secondary,
                   bool read_balance, sim::VCpu* cpu, SimTime per_op_ns)
    : primary_(primary),
      secondary_(secondary),
      read_balance_(read_balance),
      cpu_(cpu),
      per_op_ns_(per_op_ns) {}

u64 DmMirror::capacity_sectors() const {
  return std::min(primary_->capacity_sectors(),
                  secondary_->capacity_sectors());
}

void DmMirror::SetObservability(obs::Observability* obs) {
  if (!obs) return;
  m_bios_ = obs->metrics().GetCounter("dm.mirror.bios");
  m_degraded_ = obs->metrics().GetCounter("dm.mirror.degraded_reads");
}

void DmMirror::Submit(Bio bio) {
  if (m_bios_) m_bios_->Inc();
  if (cpu_) cpu_->Charge(per_op_ns_);
  switch (bio.op) {
    case Bio::Op::kRead: {
      // Round-robin the legs (RAID1-style read balancing); fall back to
      // the other leg on error.
      BlockDevice* first = primary_;
      BlockDevice* other = secondary_;
      if (read_balance_ && (read_rr_++ % 2 == 1)) {
        std::swap(first, other);
      }
      auto shared_bio = std::make_shared<Bio>(std::move(bio));
      Bio rd;
      rd.op = Bio::Op::kRead;
      rd.sector = shared_bio->sector;
      rd.segments = shared_bio->segments;
      rd.on_complete = [this, shared_bio, other](Status st) {
        if (st.ok()) {
          if (shared_bio->on_complete) shared_bio->on_complete(st);
          return;
        }
        degraded_reads_++;
        if (m_degraded_) m_degraded_->Inc();
        Bio retry;
        retry.op = Bio::Op::kRead;
        retry.sector = shared_bio->sector;
        retry.segments = shared_bio->segments;
        retry.on_complete = [shared_bio](Status st2) {
          if (shared_bio->on_complete) shared_bio->on_complete(st2);
        };
        other->Submit(std::move(retry));
      };
      first->Submit(std::move(rd));
      return;
    }
    case Bio::Op::kWrite:
    case Bio::Op::kFlush:
    case Bio::Op::kDiscard: {
      // Mirror to both legs; complete when both do (synchronous
      // replication: "writes are not completed until both the local and
      // remote disks finish", paper §IV-B).
      auto state = std::make_shared<std::pair<int, Status>>(2, OkStatus());
      auto done = std::move(bio.on_complete);
      auto fan_in = [state, done](Status st) {
        if (!st.ok()) state->second = st;
        if (--state->first == 0 && done) done(state->second);
      };
      Bio b1 = bio;
      b1.on_complete = fan_in;
      Bio b2 = std::move(bio);
      b2.on_complete = fan_in;
      primary_->Submit(std::move(b1));
      secondary_->Submit(std::move(b2));
      return;
    }
  }
}

}  // namespace nvmetro::kblock

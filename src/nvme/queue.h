// NVMe submission/completion queue rings.
//
// Each ring is a lockless producer-consumer circular buffer over a raw
// memory region (guest memory for VSQ/VCQ and NSQ/NCQ, host memory for the
// device's HSQ/HCQ), exactly as in the NVMe specification: the submission
// side advances a tail doorbell, the completion side toggles a phase tag
// each pass so consumers can detect new entries without a head/tail
// exchange.
//
// In this single-process simulation both endpoints share the ring object,
// so the "doorbell registers" are methods; the produced/consumed indices
// and the phase-tag protocol are still exercised for real (and tested),
// including wrap-around and full/empty conditions.
#pragma once

#include "common/types.h"
#include "nvme/defs.h"

namespace nvmetro::nvme {

/// Submission queue ring: producer pushes 64-byte Sqes and publishes a
/// tail doorbell; consumer pops entries up to the published tail.
class SqRing {
 public:
  /// `base` must point to entries*64 bytes of zeroed memory that outlives
  /// the ring. entries must be in [2, kMaxQueueEntries].
  SqRing(u8* base, u32 entries);

  u32 entries() const { return entries_; }

  /// Producer: writes the entry at the tail. Returns false when full
  /// (one slot is intentionally left unused, per ring convention).
  bool Push(const Sqe& sqe);

  /// Producer: publishes the tail doorbell; returns the doorbell value.
  /// Separated from Push so callers can batch submissions before ringing.
  u32 PublishTail();

  /// Consumer: pops the entry at the head if one is published.
  bool Pop(Sqe* out);

  /// Consumer: copies the entry at the head without consuming it.
  bool Peek(Sqe* out) const;

  /// Entries published but not yet consumed.
  u32 Pending() const;

  /// Free slots from the producer's perspective (before publishing).
  u32 SpaceLeft() const;

  /// Current consumer head index (reported in CQE sq_head). The u16
  /// narrowing is exact: head_ < entries_ <= kMaxQueueEntries = 64K, so
  /// the largest representable index is 65535.
  u16 head() const {
    static_assert(kMaxQueueEntries <= 65536,
                  "sq_head is a 16-bit field; indices must fit");
    return static_cast<u16>(head_);
  }

  bool Empty() const { return Pending() == 0; }

 private:
  u8* base_;
  u32 entries_;
  u32 tail_ = 0;           // producer-local tail
  u32 tail_doorbell_ = 0;  // published to consumer
  u32 head_ = 0;           // consumer head
};

/// Completion queue ring with phase-tag protocol.
class CqRing {
 public:
  /// `base` must point to entries*16 bytes of zeroed memory (phase bit 0)
  /// that outlives the ring.
  CqRing(u8* base, u32 entries);

  u32 entries() const { return entries_; }

  /// Producer (controller/router): posts a completion. The phase bit of
  /// `cqe` is overwritten with the ring's current producer phase. Returns
  /// false when the ring is full (consumer has not freed slots).
  bool Push(Cqe cqe);

  /// Consumer: returns the entry at the head if its phase matches the
  /// consumer's expected phase (i.e. it is new).
  bool Peek(Cqe* out) const;

  /// Consumer: advances the head past a peeked entry.
  void Pop();

  /// Consumer: publishes the head doorbell, releasing consumed slots to
  /// the producer. Returns the doorbell value.
  u32 PublishHead();

  /// Entries visible to the consumer right now.
  u32 Pending() const;

  bool Empty() const { return Pending() == 0; }

 private:
  u8* base_;
  u32 entries_;
  // The phase tags flip when tail_/head_ wrap to slot 0 — NOT when the
  // head doorbell wraps. head_doorbell_ only gates the full check in
  // Push(); it may lag head_ by up to entries_-1 slots without affecting
  // phase bookkeeping (ring-wrap tests pin this at non-power-of-two
  // sizes).
  u32 tail_ = 0;            // producer tail
  bool producer_phase_ = true;
  u32 head_ = 0;            // consumer head
  bool consumer_phase_ = true;
  u32 head_doorbell_ = 0;   // published to producer
};

}  // namespace nvmetro::nvme

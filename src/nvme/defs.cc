#include "nvme/defs.h"

namespace nvmetro::nvme {

const char* StatusName(NvmeStatus status) {
  switch (StatusSct(status)) {
    case kSctGeneric:
      switch (StatusSc(status)) {
        case kScSuccess: return "Success";
        case kScInvalidOpcode: return "InvalidOpcode";
        case kScInvalidField: return "InvalidField";
        case kScCidConflict: return "CidConflict";
        case kScDataTransferError: return "DataTransferError";
        case kScInternalError: return "InternalError";
        case kScAbortRequested: return "AbortRequested";
        case kScInvalidNamespace: return "InvalidNamespace";
        case kScLbaOutOfRange: return "LbaOutOfRange";
        case kScCapacityExceeded: return "CapacityExceeded";
        case kScNamespaceNotReady: return "NamespaceNotReady";
        default: return "Generic/Unknown";
      }
    case kSctCommandSpecific:
      switch (StatusSc(status)) {
        case kScInvalidQueueId: return "InvalidQueueId";
        case kScInvalidQueueSize: return "InvalidQueueSize";
        default: return "CommandSpecific/Unknown";
      }
    case kSctMediaError:
      switch (StatusSc(status)) {
        case kScWriteFault: return "WriteFault";
        case kScUnrecoveredRead: return "UnrecoveredRead";
        case kScCompareFailure: return "CompareFailure";
        case kScAccessDenied: return "AccessDenied";
        default: return "Media/Unknown";
      }
    default:
      return "Unknown";
  }
}

namespace {
Sqe MakeRw(u8 opcode, u32 nsid, u64 slba, u32 nblocks, u64 prp1, u64 prp2) {
  Sqe sqe;
  sqe.opcode = opcode;
  sqe.nsid = nsid;
  sqe.set_slba(slba);
  sqe.set_nlb0(static_cast<u16>(nblocks - 1));
  sqe.prp1 = prp1;
  sqe.prp2 = prp2;
  return sqe;
}
}  // namespace

Sqe MakeRead(u32 nsid, u64 slba, u32 nblocks, u64 prp1, u64 prp2) {
  return MakeRw(kCmdRead, nsid, slba, nblocks, prp1, prp2);
}

Sqe MakeWrite(u32 nsid, u64 slba, u32 nblocks, u64 prp1, u64 prp2) {
  return MakeRw(kCmdWrite, nsid, slba, nblocks, prp1, prp2);
}

Sqe MakeFlush(u32 nsid) {
  Sqe sqe;
  sqe.opcode = kCmdFlush;
  sqe.nsid = nsid;
  return sqe;
}

Sqe MakeKvStore(u32 nsid, const KvKey& key, u32 value_len, u64 prp1,
                u64 prp2) {
  Sqe sqe;
  sqe.opcode = kCmdKvStore;
  sqe.nsid = nsid;
  SetKvKey(&sqe, key);
  sqe.cdw10 = value_len;
  sqe.prp1 = prp1;
  sqe.prp2 = prp2;
  return sqe;
}

Sqe MakeKvRetrieve(u32 nsid, const KvKey& key, u32 buffer_len, u64 prp1,
                   u64 prp2) {
  Sqe sqe;
  sqe.opcode = kCmdKvRetrieve;
  sqe.nsid = nsid;
  SetKvKey(&sqe, key);
  sqe.cdw11 = buffer_len;
  sqe.prp1 = prp1;
  sqe.prp2 = prp2;
  return sqe;
}

Sqe MakeKvDelete(u32 nsid, const KvKey& key) {
  Sqe sqe;
  sqe.opcode = kCmdKvDelete;
  sqe.nsid = nsid;
  SetKvKey(&sqe, key);
  return sqe;
}

Sqe MakeKvExist(u32 nsid, const KvKey& key) {
  Sqe sqe;
  sqe.opcode = kCmdKvExist;
  sqe.nsid = nsid;
  SetKvKey(&sqe, key);
  return sqe;
}

Sqe MakeWriteZeroes(u32 nsid, u64 slba, u32 nblocks) {
  Sqe sqe;
  sqe.opcode = kCmdWriteZeroes;
  sqe.nsid = nsid;
  sqe.set_slba(slba);
  sqe.set_nlb0(static_cast<u16>(nblocks - 1));
  return sqe;
}

}  // namespace nvmetro::nvme

// Physical Region Page (PRP) construction and traversal.
//
// NVMe data buffers are described by PRP entries: PRP1 points at the first
// (possibly offset) page; PRP2 is either the second page (when the
// transfer spans at most two pages) or a pointer to a PRP list page of
// page-aligned entries, with the last entry of a full list page chaining
// to the next list page.
//
// The guest driver builds PRPs into guest memory; the simulated device,
// the kernel path and UIFs all walk them to reach the data — data pages
// themselves are never copied between components (paper §III-C).
#pragma once

#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "mem/address_space.h"
#include "mem/guest_memory.h"
#include "nvme/defs.h"

namespace nvmetro::nvme {

/// One physically contiguous piece of a transfer.
struct PrpSegment {
  u64 gpa = 0;
  u32 len = 0;
  bool operator==(const PrpSegment&) const = default;
};

/// Result of building PRPs for a buffer.
struct PrpChain {
  u64 prp1 = 0;
  u64 prp2 = 0;
  /// PRP list pages allocated from guest memory (caller frees them after
  /// command completion).
  std::vector<u64> list_pages;
};

/// Builds PRP entries describing [buf_gpa, buf_gpa+len). Allocates PRP
/// list pages from `gm` when the transfer spans more than two pages.
/// Requires len > 0. Page offsets are allowed only on the first page, as
/// per spec; buf_gpa may be arbitrary.
Result<PrpChain> BuildPrps(mem::GuestMemory& gm, u64 buf_gpa, u64 len);

/// Releases the list pages of a chain back to guest memory.
void FreePrpChain(mem::GuestMemory& gm, const PrpChain& chain);

/// Walks the PRP entries of `sqe` for a transfer of `len` bytes, appending
/// the physically contiguous segments to `out`. Validates alignment rules
/// (PRP2/list entries must be page-aligned) and guest-memory bounds;
/// returns an error Status on malformed chains, which callers map to an
/// NVMe Data Transfer Error.
Status WalkPrps(mem::AddressSpace& gm, u64 prp1, u64 prp2, u64 len,
                std::vector<PrpSegment>* out);

inline Status WalkPrps(mem::AddressSpace& gm, const Sqe& sqe, u64 len,
                       std::vector<PrpSegment>* out) {
  return WalkPrps(gm, sqe.prp1, sqe.prp2, len, out);
}

/// Copies `len` bytes from the PRP-described guest buffer into `dst`.
Status PrpRead(mem::AddressSpace& gm, u64 prp1, u64 prp2, u64 len,
               void* dst);

/// Copies `len` bytes from `src` into the PRP-described guest buffer.
Status PrpWrite(mem::AddressSpace& gm, u64 prp1, u64 prp2, u64 len,
                const void* src);

}  // namespace nvmetro::nvme

#include "nvme/prp.h"

#include <algorithm>
#include <cstring>

namespace nvmetro::nvme {

using mem::kPageSize;

namespace {
constexpr u64 kEntriesPerListPage = kPageSize / sizeof(u64);
}

Result<PrpChain> BuildPrps(mem::GuestMemory& gm, u64 buf_gpa, u64 len) {
  if (len == 0) return InvalidArgument("BuildPrps: empty transfer");
  PrpChain chain;
  chain.prp1 = buf_gpa;
  u64 first_len = std::min<u64>(len, kPageSize - buf_gpa % kPageSize);
  u64 remaining = len - first_len;
  if (remaining == 0) {
    chain.prp2 = 0;
    return chain;
  }
  u64 next_page = buf_gpa - buf_gpa % kPageSize + kPageSize;
  u64 pages_needed = (remaining + kPageSize - 1) / kPageSize;
  if (pages_needed == 1) {
    chain.prp2 = next_page;
    return chain;
  }
  // Need a PRP list. Entries are page addresses of the 2nd..Nth pages.
  std::vector<u64> entries;
  entries.reserve(pages_needed);
  for (u64 i = 0; i < pages_needed; i++) {
    entries.push_back(next_page + i * kPageSize);
  }
  // Lay entries out into list pages: a full list page whose entries do not
  // finish the transfer uses its last slot as a chain pointer.
  u64 cursor = 0;
  u64 prev_chain_slot_gpa = 0;
  bool first_list_page = true;
  while (cursor < entries.size()) {
    auto page = gm.AllocPages(1);
    if (!page.ok()) return page.status();
    u64 list_gpa = *page;
    chain.list_pages.push_back(list_gpa);
    if (first_list_page) {
      chain.prp2 = list_gpa;
      first_list_page = false;
    } else {
      // Patch the previous page's chain slot.
      gm.Write(prev_chain_slot_gpa, &list_gpa, sizeof(u64));
    }
    u64 slots = kEntriesPerListPage;
    u64 left = entries.size() - cursor;
    u64 fill;
    if (left > slots) {
      fill = slots - 1;  // reserve last slot for chain pointer
      prev_chain_slot_gpa = list_gpa + (slots - 1) * sizeof(u64);
    } else {
      fill = left;
    }
    Status st =
        gm.Write(list_gpa, entries.data() + cursor, fill * sizeof(u64));
    if (!st.ok()) return st;
    cursor += fill;
  }
  return chain;
}

void FreePrpChain(mem::GuestMemory& gm, const PrpChain& chain) {
  for (u64 gpa : chain.list_pages) gm.FreePages(gpa, 1);
}

Status WalkPrps(mem::AddressSpace& gm, u64 prp1, u64 prp2, u64 len,
                std::vector<PrpSegment>* out) {
  if (len == 0) return InvalidArgument("WalkPrps: empty transfer");
  u64 first_len = std::min<u64>(len, kPageSize - prp1 % kPageSize);
  if (!gm.Translate(prp1, first_len))
    return OutOfRange("PRP1 out of guest memory");
  out->push_back({prp1, static_cast<u32>(first_len)});
  u64 remaining = len - first_len;
  if (remaining == 0) return OkStatus();

  u64 pages_needed = (remaining + kPageSize - 1) / kPageSize;
  if (pages_needed == 1) {
    if (prp2 % kPageSize != 0)
      return InvalidArgument("PRP2 data pointer not page-aligned");
    if (!gm.Translate(prp2, remaining))
      return OutOfRange("PRP2 out of guest memory");
    out->push_back({prp2, static_cast<u32>(remaining)});
    return OkStatus();
  }

  // PRP list traversal.
  if (prp2 % sizeof(u64) != 0)
    return InvalidArgument("PRP list pointer not qword-aligned");
  u64 list_gpa = prp2;
  u64 slot = (prp2 % kPageSize) / sizeof(u64);  // spec allows offset start
  list_gpa -= slot * sizeof(u64);
  // Guard against malicious/looping chains: a transfer of `len` bytes can
  // reference at most len/kPageSize + 2 list pages.
  u64 max_list_pages = pages_needed / (kEntriesPerListPage - 1) + 2;
  u64 visited_pages = 0;
  while (remaining > 0) {
    if (slot == kEntriesPerListPage) {
      return Internal("PRP walk slot overflow");
    }
    u64 entry = 0;
    NVM_RETURN_IF_ERROR(
        gm.Read(list_gpa + slot * sizeof(u64), &entry, sizeof(u64)));
    // A full list page with more data pending ends with a chain pointer.
    bool is_last_slot = (slot == kEntriesPerListPage - 1);
    u64 segs_after_this_slot = (remaining + kPageSize - 1) / kPageSize;
    if (is_last_slot && segs_after_this_slot > 1) {
      if (entry % kPageSize != 0)
        return InvalidArgument("PRP chain pointer not page-aligned");
      if (++visited_pages > max_list_pages)
        return InvalidArgument("PRP chain too long");
      list_gpa = entry;
      slot = 0;
      continue;
    }
    if (entry % kPageSize != 0)
      return InvalidArgument("PRP list entry not page-aligned");
    u64 seg = std::min<u64>(remaining, kPageSize);
    if (!gm.Translate(entry, seg))
      return OutOfRange("PRP list entry out of guest memory");
    out->push_back({entry, static_cast<u32>(seg)});
    remaining -= seg;
    slot++;
  }
  return OkStatus();
}

Status PrpRead(mem::AddressSpace& gm, u64 prp1, u64 prp2, u64 len,
               void* dst) {
  std::vector<PrpSegment> segs;
  NVM_RETURN_IF_ERROR(WalkPrps(gm, prp1, prp2, len, &segs));
  auto* p = static_cast<u8*>(dst);
  for (const auto& s : segs) {
    NVM_RETURN_IF_ERROR(gm.Read(s.gpa, p, s.len));
    p += s.len;
  }
  return OkStatus();
}

Status PrpWrite(mem::AddressSpace& gm, u64 prp1, u64 prp2, u64 len,
                const void* src) {
  std::vector<PrpSegment> segs;
  NVM_RETURN_IF_ERROR(WalkPrps(gm, prp1, prp2, len, &segs));
  const auto* p = static_cast<const u8*>(src);
  for (const auto& s : segs) {
    NVM_RETURN_IF_ERROR(gm.Write(s.gpa, p, s.len));
    p += s.len;
  }
  return OkStatus();
}

}  // namespace nvmetro::nvme

// NVM Express protocol definitions: command formats, opcodes and status
// codes, following the NVMe 1.4/2.0 base specification layouts.
//
// The 64-byte submission queue entry (Sqe) is the unit NVMetro routes:
// "it only passes around each request's 64-byte command block, while the
// scatter-gather lists and data pages stay inside the VM's memory"
// (paper §III-C).
#pragma once

#include <cstring>

#include "common/types.h"

namespace nvmetro::nvme {

// ---------------------------------------------------------------------------
// Opcodes
// ---------------------------------------------------------------------------

/// NVM command set opcodes (I/O queues).
enum NvmOpcode : u8 {
  kCmdFlush = 0x00,
  kCmdWrite = 0x01,
  kCmdRead = 0x02,
  kCmdWriteUncorrectable = 0x04,
  kCmdCompare = 0x05,
  kCmdWriteZeroes = 0x08,
  kCmdDsm = 0x09,  // Dataset Management (deallocate/TRIM)
  kCmdVerify = 0x0C,
  // Vendor-specific range (used to demonstrate NVMetro's pass-through of
  // vendor extensions, paper §III-B "Compatibility").
  kCmdVendorStart = 0x80,
};

/// Key-Value command set (paper §III-B: "NVMetro also easily adapts to
/// new NVMe features (e.g. the KV command set) by changing the classifier
/// without affecting the host kernel"). Simplified from TP-4076: opcodes
/// are placed in the extended range so they coexist with the NVM command
/// set on one controller; the 16-byte key travels in CDW2-3 + CDW14-15.
enum KvOpcode : u8 {
  kCmdKvStore = 0x90,
  kCmdKvRetrieve = 0x91,
  kCmdKvDelete = 0x92,
  kCmdKvExist = 0x93,
};

/// KV command accessors (key = 16 bytes; value length in CDW10; host
/// buffer length for retrieve in CDW11).
struct KvKey {
  u8 bytes[16];
};
inline KvKey KvKeyOf(const struct Sqe& sqe);
inline void SetKvKey(struct Sqe* sqe, const KvKey& key);

/// Admin command set opcodes.
enum AdminOpcode : u8 {
  kAdminDeleteIoSq = 0x00,
  kAdminCreateIoSq = 0x01,
  kAdminGetLogPage = 0x02,
  kAdminDeleteIoCq = 0x04,
  kAdminCreateIoCq = 0x05,
  kAdminIdentify = 0x06,
  kAdminSetFeatures = 0x09,
  kAdminGetFeatures = 0x0A,
};

/// Identify CNS values.
enum IdentifyCns : u8 {
  kCnsNamespace = 0x00,
  kCnsController = 0x01,
  kCnsActiveNsList = 0x02,
};

/// Feature identifiers for Get/Set Features.
enum FeatureId : u8 {
  kFeatNumQueues = 0x07,
};

// ---------------------------------------------------------------------------
// Status codes
// ---------------------------------------------------------------------------

/// Status Code Type (SCT) values.
enum StatusCodeType : u8 {
  kSctGeneric = 0x0,
  kSctCommandSpecific = 0x1,
  kSctMediaError = 0x2,
  kSctPathRelated = 0x3,
};

/// Generic command status (SCT 0).
enum GenericStatus : u8 {
  kScSuccess = 0x00,
  kScInvalidOpcode = 0x01,
  kScInvalidField = 0x02,
  kScCidConflict = 0x03,
  kScDataTransferError = 0x04,
  kScAbortedPowerLoss = 0x05,
  kScInternalError = 0x06,
  kScAbortRequested = 0x07,
  kScInvalidNamespace = 0x0B,
  kScLbaOutOfRange = 0x80,
  kScCapacityExceeded = 0x81,
  kScNamespaceNotReady = 0x82,
};

/// Command-specific status (SCT 1).
enum CommandSpecificStatus : u8 {
  kScInvalidQueueId = 0x01,
  kScInvalidQueueSize = 0x02,
  // KV command set.
  kScKvKeyNotFound = 0x20,
  kScKvValueTooLarge = 0x21,
};

/// Media error status (SCT 2).
enum MediaStatus : u8 {
  kScWriteFault = 0x80,
  kScUnrecoveredRead = 0x81,
  kScCompareFailure = 0x85,
  kScAccessDenied = 0x86,
};

/// A 15-bit NVMe status value as stored in CQE DW3 bits [15:1]
/// (phase excluded): SC in bits [7:0], SCT in bits [10:8].
using NvmeStatus = u16;

constexpr NvmeStatus MakeStatus(u8 sct, u8 sc) {
  return static_cast<NvmeStatus>((static_cast<u16>(sct & 0x7) << 8) |
                                 static_cast<u16>(sc));
}
constexpr NvmeStatus kStatusSuccess = MakeStatus(kSctGeneric, kScSuccess);
constexpr u8 StatusSct(NvmeStatus s) { return (s >> 8) & 0x7; }
constexpr u8 StatusSc(NvmeStatus s) { return s & 0xFF; }
constexpr bool StatusOk(NvmeStatus s) { return s == kStatusSuccess; }

/// Human-readable status string ("Generic/LbaOutOfRange" style).
const char* StatusName(NvmeStatus status);

// ---------------------------------------------------------------------------
// Submission / completion queue entries
// ---------------------------------------------------------------------------

/// 64-byte submission queue entry (command). Field names follow the spec's
/// common command format; cdw10..15 are command-specific.
struct Sqe {
  u8 opcode = 0;   // CDW0[7:0]
  u8 flags = 0;    // CDW0[14:8] FUSE/PSDT
  u16 cid = 0;     // CDW0[31:16] command identifier
  u32 nsid = 0;    // CDW1 namespace id
  u32 cdw2 = 0;
  u32 cdw3 = 0;
  u64 mptr = 0;    // metadata pointer
  u64 prp1 = 0;    // DPTR: PRP entry 1
  u64 prp2 = 0;    // DPTR: PRP entry 2 / PRP list pointer
  u32 cdw10 = 0;
  u32 cdw11 = 0;
  u32 cdw12 = 0;
  u32 cdw13 = 0;
  u32 cdw14 = 0;
  u32 cdw15 = 0;

  // --- NVM read/write accessors -------------------------------------------
  u64 slba() const { return (static_cast<u64>(cdw11) << 32) | cdw10; }
  void set_slba(u64 lba) {
    cdw10 = static_cast<u32>(lba);
    cdw11 = static_cast<u32>(lba >> 32);
  }
  /// Number of logical blocks, 0-based field => actual count = nlb0()+1.
  u16 nlb0() const { return static_cast<u16>(cdw12 & 0xFFFF); }
  void set_nlb0(u16 nlb0) { cdw12 = (cdw12 & 0xFFFF0000u) | nlb0; }
  u32 block_count() const { return static_cast<u32>(nlb0()) + 1; }

  bool is_read() const { return opcode == kCmdRead; }
  bool is_write() const { return opcode == kCmdWrite; }
  bool is_io_data_cmd() const {
    return opcode == kCmdRead || opcode == kCmdWrite ||
           opcode == kCmdCompare;
  }
};
static_assert(sizeof(Sqe) == 64, "SQE must be exactly 64 bytes");

/// 16-byte completion queue entry. The `status_phase` field packs the
/// phase tag in bit 0 and the 15-bit status in bits [15:1], as DW3[31:16]
/// of the spec.
struct Cqe {
  u32 result = 0;    // DW0 command-specific result
  u32 rsvd = 0;      // DW1
  u16 sq_head = 0;   // DW2[15:0] current SQ head pointer
  u16 sq_id = 0;     // DW2[31:16]
  u16 cid = 0;       // DW3[15:0]
  u16 status_phase = 0;  // DW3[31:16]

  bool phase() const { return status_phase & 1; }
  void set_phase(bool p) {
    status_phase = static_cast<u16>((status_phase & ~1u) | (p ? 1 : 0));
  }
  NvmeStatus status() const { return status_phase >> 1; }
  void set_status(NvmeStatus s) {
    status_phase =
        static_cast<u16>((s << 1) | (status_phase & 1));
  }
};
static_assert(sizeof(Cqe) == 16, "CQE must be exactly 16 bytes");

// ---------------------------------------------------------------------------
// Command builders
// ---------------------------------------------------------------------------

/// Builds an NVM read command.
Sqe MakeRead(u32 nsid, u64 slba, u32 nblocks, u64 prp1, u64 prp2);
/// Builds an NVM write command.
Sqe MakeWrite(u32 nsid, u64 slba, u32 nblocks, u64 prp1, u64 prp2);
/// Builds a flush command.
Sqe MakeFlush(u32 nsid);
/// Builds a Write Zeroes command over [slba, slba+nblocks).
Sqe MakeWriteZeroes(u32 nsid, u64 slba, u32 nblocks);

inline KvKey KvKeyOf(const Sqe& sqe) {
  KvKey key;
  std::memcpy(key.bytes + 0, &sqe.cdw2, 4);
  std::memcpy(key.bytes + 4, &sqe.cdw3, 4);
  std::memcpy(key.bytes + 8, &sqe.cdw14, 4);
  std::memcpy(key.bytes + 12, &sqe.cdw15, 4);
  return key;
}
inline void SetKvKey(Sqe* sqe, const KvKey& key) {
  std::memcpy(&sqe->cdw2, key.bytes + 0, 4);
  std::memcpy(&sqe->cdw3, key.bytes + 4, 4);
  std::memcpy(&sqe->cdw14, key.bytes + 8, 4);
  std::memcpy(&sqe->cdw15, key.bytes + 12, 4);
}

/// Builds a KV Store of `value_len` bytes (PRP-described) under `key`.
Sqe MakeKvStore(u32 nsid, const KvKey& key, u32 value_len, u64 prp1,
                u64 prp2);
/// Builds a KV Retrieve into a `buffer_len`-byte PRP buffer.
Sqe MakeKvRetrieve(u32 nsid, const KvKey& key, u32 buffer_len, u64 prp1,
                   u64 prp2);
Sqe MakeKvDelete(u32 nsid, const KvKey& key);
Sqe MakeKvExist(u32 nsid, const KvKey& key);

/// Queue size limits from the spec: queues hold up to 64K entries.
constexpr u32 kMaxQueueEntries = 65536;
/// Max number of I/O queue pairs a controller may expose (64K - admin).
constexpr u32 kMaxIoQueues = 65535;

}  // namespace nvmetro::nvme

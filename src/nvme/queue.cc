#include "nvme/queue.h"

#include <cassert>
#include <cstring>

namespace nvmetro::nvme {

SqRing::SqRing(u8* base, u32 entries) : base_(base), entries_(entries) {
  assert(base != nullptr);
  assert(entries >= 2 && entries <= kMaxQueueEntries);
}

bool SqRing::Push(const Sqe& sqe) {
  u32 next = (tail_ + 1) % entries_;
  if (next == head_) return false;  // full
  std::memcpy(base_ + static_cast<usize>(tail_) * sizeof(Sqe), &sqe,
              sizeof(Sqe));
  tail_ = next;
  return true;
}

u32 SqRing::PublishTail() {
  tail_doorbell_ = tail_;
  return tail_doorbell_;
}

bool SqRing::Pop(Sqe* out) {
  if (head_ == tail_doorbell_) return false;
  std::memcpy(out, base_ + static_cast<usize>(head_) * sizeof(Sqe),
              sizeof(Sqe));
  head_ = (head_ + 1) % entries_;
  return true;
}

bool SqRing::Peek(Sqe* out) const {
  if (head_ == tail_doorbell_) return false;
  std::memcpy(out, base_ + static_cast<usize>(head_) * sizeof(Sqe),
              sizeof(Sqe));
  return true;
}

u32 SqRing::Pending() const {
  return (tail_doorbell_ + entries_ - head_) % entries_;
}

u32 SqRing::SpaceLeft() const {
  // One slot is reserved to distinguish full from empty.
  return entries_ - 1 - (tail_ + entries_ - head_) % entries_;
}

CqRing::CqRing(u8* base, u32 entries) : base_(base), entries_(entries) {
  assert(base != nullptr);
  assert(entries >= 2 && entries <= kMaxQueueEntries);
}

bool CqRing::Push(Cqe cqe) {
  u32 next = (tail_ + 1) % entries_;
  if (next == head_doorbell_) return false;  // full
  cqe.set_phase(producer_phase_);
  std::memcpy(base_ + static_cast<usize>(tail_) * sizeof(Cqe), &cqe,
              sizeof(Cqe));
  tail_ = next;
  if (tail_ == 0) producer_phase_ = !producer_phase_;
  return true;
}

bool CqRing::Peek(Cqe* out) const {
  Cqe entry;
  std::memcpy(&entry, base_ + static_cast<usize>(head_) * sizeof(Cqe),
              sizeof(Cqe));
  if (entry.phase() != consumer_phase_) return false;
  *out = entry;
  return true;
}

void CqRing::Pop() {
  head_ = (head_ + 1) % entries_;
  if (head_ == 0) consumer_phase_ = !consumer_phase_;
}

u32 CqRing::PublishHead() {
  head_doorbell_ = head_;
  return head_doorbell_;
}

u32 CqRing::Pending() const {
  u32 n = 0;
  u32 h = head_;
  bool phase = consumer_phase_;
  // Count consecutive entries whose phase matches (bounded by ring size).
  for (u32 i = 0; i < entries_; i++) {
    Cqe entry;
    std::memcpy(&entry, base_ + static_cast<usize>(h) * sizeof(Cqe),
                sizeof(Cqe));
    if (entry.phase() != phase) break;
    n++;
    h = (h + 1) % entries_;
    if (h == 0) phase = !phase;
  }
  return n;
}

}  // namespace nvmetro::nvme

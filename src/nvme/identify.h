// Identify data structures (4 KiB payloads of the Identify admin command).
//
// Only the fields the stack consumes are named; reserved regions are kept
// as padding so the structures have spec-correct size and field offsets
// (verified by static_asserts and unit tests).
#pragma once

#include <cstring>

#include "common/types.h"

namespace nvmetro::nvme {

#pragma pack(push, 1)

/// Identify Controller data structure (CNS 01h).
struct IdentifyController {
  u16 vid = 0;        // PCI vendor
  u16 ssvid = 0;      // subsystem vendor
  char sn[20] = {};   // serial number (ASCII)
  char mn[40] = {};   // model number (ASCII)
  char fr[8] = {};    // firmware revision
  u8 rab = 0;         // recommended arbitration burst
  u8 ieee[3] = {};
  u8 cmic = 0;
  u8 mdts = 0;        // max data transfer size: 2^mdts * CAP.MPSMIN pages
  u16 cntlid = 0;
  u32 ver = 0;
  u8 rsvd84[428] = {};
  // Byte 512 onwards: queue entry sizes and namespace count.
  u8 sqes = 0x66;     // required/max SQE size: 2^6 = 64
  u8 cqes = 0x44;     // required/max CQE size: 2^4 = 16
  u16 maxcmd = 0;
  u32 nn = 0;         // number of namespaces
  u8 rsvd520[3576] = {};

  void SetStrings(const char* serial, const char* model, const char* fw);
};
static_assert(sizeof(IdentifyController) == 4096);
static_assert(offsetof(IdentifyController, mdts) == 77);
static_assert(offsetof(IdentifyController, sqes) == 512);
static_assert(offsetof(IdentifyController, nn) == 516);

/// One LBA format descriptor.
struct LbaFormat {
  u16 ms = 0;     // metadata size
  u8 lbads = 9;   // LBA data size: 2^lbads bytes
  u8 rp = 0;      // relative performance
};
static_assert(sizeof(LbaFormat) == 4);

/// Identify Namespace data structure (CNS 00h).
struct IdentifyNamespace {
  u64 nsze = 0;    // namespace size (logical blocks)
  u64 ncap = 0;    // capacity
  u64 nuse = 0;    // utilization
  u8 nsfeat = 0;
  u8 nlbaf = 0;    // number of LBA formats (0-based)
  u8 flbas = 0;    // formatted LBA size index
  u8 mc = 0;
  u8 dpc = 0;
  u8 dps = 0;
  u8 rsvd30[98] = {};
  LbaFormat lbaf[16] = {};
  u8 rsvd192[3904] = {};

  u32 lba_size() const { return 1u << lbaf[flbas & 0xF].lbads; }
};
static_assert(sizeof(IdentifyNamespace) == 4096);
static_assert(offsetof(IdentifyNamespace, nlbaf) == 25);
static_assert(offsetof(IdentifyNamespace, lbaf) == 128);

#pragma pack(pop)

inline void IdentifyController::SetStrings(const char* serial,
                                           const char* model,
                                           const char* fw) {
  auto pad_copy = [](char* dst, usize n, const char* src) {
    std::memset(dst, ' ', n);
    usize len = std::strlen(src);
    std::memcpy(dst, src, len < n ? len : n);
  };
  pad_copy(sn, sizeof(sn), serial);
  pad_copy(mn, sizeof(mn), model);
  pad_copy(fr, sizeof(fr), fw);
}

}  // namespace nvmetro::nvme

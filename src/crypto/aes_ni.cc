// AES-NI backend. This translation unit is compiled with -maes (see
// CMakeLists); callers reach it only after the runtime CPUID check.
#include "common/cpufeat.h"
#include "common/types.h"

#if defined(__x86_64__)
#include <wmmintrin.h>
#define NVM_HAVE_AESNI 1
#endif

namespace nvmetro::crypto::internal {

bool AesNiAvailable() {
#ifdef NVM_HAVE_AESNI
  return CpuHasAesNi();
#else
  return false;
#endif
}

#ifdef NVM_HAVE_AESNI

void AesNiMakeDecryptKeys(const u8* ek, int rounds, u8* dk) {
  // dk[0] = ek[rounds]; dk[i] = InvMixColumns(ek[rounds-i]); dk[rounds]=ek[0]
  const auto* ekv = reinterpret_cast<const __m128i*>(ek);
  auto* dkv = reinterpret_cast<__m128i*>(dk);
  _mm_storeu_si128(&dkv[0], _mm_loadu_si128(&ekv[rounds]));
  for (int i = 1; i < rounds; i++) {
    _mm_storeu_si128(&dkv[i],
                     _mm_aesimc_si128(_mm_loadu_si128(&ekv[rounds - i])));
  }
  _mm_storeu_si128(&dkv[rounds], _mm_loadu_si128(&ekv[0]));
}

void AesNiEncryptBlocks(const u8* ek, int rounds, const u8* in, u8* out,
                        usize len) {
  const auto* ekv = reinterpret_cast<const __m128i*>(ek);
  __m128i rk[15];
  for (int i = 0; i <= rounds; i++) rk[i] = _mm_loadu_si128(&ekv[i]);
  usize off = 0;
  // 4-way interleaving hides the aesenc latency (ECB blocks are
  // independent).
  for (; off + 64 <= len; off += 64) {
    const auto* ip = reinterpret_cast<const __m128i*>(in + off);
    __m128i b0 = _mm_xor_si128(_mm_loadu_si128(ip + 0), rk[0]);
    __m128i b1 = _mm_xor_si128(_mm_loadu_si128(ip + 1), rk[0]);
    __m128i b2 = _mm_xor_si128(_mm_loadu_si128(ip + 2), rk[0]);
    __m128i b3 = _mm_xor_si128(_mm_loadu_si128(ip + 3), rk[0]);
    for (int r = 1; r < rounds; r++) {
      b0 = _mm_aesenc_si128(b0, rk[r]);
      b1 = _mm_aesenc_si128(b1, rk[r]);
      b2 = _mm_aesenc_si128(b2, rk[r]);
      b3 = _mm_aesenc_si128(b3, rk[r]);
    }
    b0 = _mm_aesenclast_si128(b0, rk[rounds]);
    b1 = _mm_aesenclast_si128(b1, rk[rounds]);
    b2 = _mm_aesenclast_si128(b2, rk[rounds]);
    b3 = _mm_aesenclast_si128(b3, rk[rounds]);
    auto* op = reinterpret_cast<__m128i*>(out + off);
    _mm_storeu_si128(op + 0, b0);
    _mm_storeu_si128(op + 1, b1);
    _mm_storeu_si128(op + 2, b2);
    _mm_storeu_si128(op + 3, b3);
  }
  for (; off + 16 <= len; off += 16) {
    __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + off));
    b = _mm_xor_si128(b, rk[0]);
    for (int r = 1; r < rounds; r++) b = _mm_aesenc_si128(b, rk[r]);
    b = _mm_aesenclast_si128(b, rk[rounds]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + off), b);
  }
}

void AesNiDecryptBlocks(const u8* dk, int rounds, const u8* in, u8* out,
                        usize len) {
  const auto* dkv = reinterpret_cast<const __m128i*>(dk);
  __m128i rk[15];
  for (int i = 0; i <= rounds; i++) rk[i] = _mm_loadu_si128(&dkv[i]);
  usize off = 0;
  for (; off + 64 <= len; off += 64) {
    const auto* ip = reinterpret_cast<const __m128i*>(in + off);
    __m128i b0 = _mm_xor_si128(_mm_loadu_si128(ip + 0), rk[0]);
    __m128i b1 = _mm_xor_si128(_mm_loadu_si128(ip + 1), rk[0]);
    __m128i b2 = _mm_xor_si128(_mm_loadu_si128(ip + 2), rk[0]);
    __m128i b3 = _mm_xor_si128(_mm_loadu_si128(ip + 3), rk[0]);
    for (int r = 1; r < rounds; r++) {
      b0 = _mm_aesdec_si128(b0, rk[r]);
      b1 = _mm_aesdec_si128(b1, rk[r]);
      b2 = _mm_aesdec_si128(b2, rk[r]);
      b3 = _mm_aesdec_si128(b3, rk[r]);
    }
    b0 = _mm_aesdeclast_si128(b0, rk[rounds]);
    b1 = _mm_aesdeclast_si128(b1, rk[rounds]);
    b2 = _mm_aesdeclast_si128(b2, rk[rounds]);
    b3 = _mm_aesdeclast_si128(b3, rk[rounds]);
    auto* op = reinterpret_cast<__m128i*>(out + off);
    _mm_storeu_si128(op + 0, b0);
    _mm_storeu_si128(op + 1, b1);
    _mm_storeu_si128(op + 2, b2);
    _mm_storeu_si128(op + 3, b3);
  }
  for (; off + 16 <= len; off += 16) {
    __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + off));
    b = _mm_xor_si128(b, rk[0]);
    for (int r = 1; r < rounds; r++) b = _mm_aesdec_si128(b, rk[r]);
    b = _mm_aesdeclast_si128(b, rk[rounds]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + off), b);
  }
}

#else  // !NVM_HAVE_AESNI

void AesNiMakeDecryptKeys(const u8*, int, u8*) {}
void AesNiEncryptBlocks(const u8*, int, const u8*, u8*, usize) {}
void AesNiDecryptBlocks(const u8*, int, const u8*, u8*, usize) {}

#endif

}  // namespace nvmetro::crypto::internal

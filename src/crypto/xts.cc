#include "crypto/xts.h"

#include <cstring>

namespace nvmetro::crypto {

Result<XtsCipher> XtsCipher::Create(const u8* key, usize key_len) {
  if (key_len != 32 && key_len != 64)
    return InvalidArgument("XTS key must be 32 or 64 bytes");
  usize half = key_len / 2;
  auto data = Aes::Create(key, half);
  if (!data.ok()) return data.status();
  auto tweak = Aes::Create(key + half, half);
  if (!tweak.ok()) return tweak.status();
  return XtsCipher(std::move(*data), std::move(*tweak));
}

namespace {
/// Multiply the tweak by x in GF(2^128) with the XTS polynomial (0x87).
/// The tweak is little-endian: byte 0 holds the least significant bits.
inline void GfMulAlpha(u8 t[16]) {
  u64 lo, hi;
  std::memcpy(&lo, t, 8);
  std::memcpy(&hi, t + 8, 8);
  u64 carry = hi >> 63;
  hi = (hi << 1) | (lo >> 63);
  lo = (lo << 1) ^ (carry * 0x87);
  std::memcpy(t, &lo, 8);
  std::memcpy(t + 8, &hi, 8);
}
}  // namespace

void XtsCipher::Process(bool encrypt, u64 sector, const u8* in, u8* out,
                        usize len) const {
  // Tweak = E_k2(LE64(sector) || 0^64)  ("plain64" IV generation).
  u8 t[16] = {};
  std::memcpy(t, &sector, sizeof(sector));  // x86 is little-endian
  tweak_.EncryptBlock(t, t);
  for (usize off = 0; off + 16 <= len; off += 16) {
    u8 buf[16];
    for (int i = 0; i < 16; i++) buf[i] = in[off + i] ^ t[i];
    if (encrypt) {
      data_.EncryptBlock(buf, buf);
    } else {
      data_.DecryptBlock(buf, buf);
    }
    for (int i = 0; i < 16; i++) out[off + i] = buf[i] ^ t[i];
    GfMulAlpha(t);
  }
}

void XtsCipher::EncryptSector(u64 sector, const u8* in, u8* out,
                              usize len) const {
  Process(true, sector, in, out, len);
}

void XtsCipher::DecryptSector(u64 sector, const u8* in, u8* out,
                              usize len) const {
  Process(false, sector, in, out, len);
}

void XtsCipher::EncryptRange(u64 first_sector, u32 sector_size, const u8* in,
                             u8* out, usize len) const {
  for (usize off = 0; off < len; off += sector_size) {
    EncryptSector(first_sector + off / sector_size, in + off, out + off,
                  sector_size);
  }
}

void XtsCipher::DecryptRange(u64 first_sector, u32 sector_size, const u8* in,
                             u8* out, usize len) const {
  for (usize off = 0; off < len; off += sector_size) {
    DecryptSector(first_sector + off / sector_size, in + off, out + off,
                  sector_size);
  }
}

}  // namespace nvmetro::crypto

// XTS-AES (IEEE 1619) with plain64 sector tweaks.
//
// The on-media format matches Linux dm-crypt's "aes-xts-plain64" cipher
// with 512-byte sectors: the tweak for a sector is the little-endian
// 64-bit sector number encrypted with the second AES key, and consecutive
// 16-byte blocks multiply the tweak by x in GF(2^128). The paper's
// encryptors "use the standard XTS-AES algorithm and are compatible with
// Linux's dm-crypt" (§IV-A) — the test suite verifies both directions of
// that compatibility between our NVMetro encryption UIF and the dm-crypt
// device-mapper target.
#pragma once

#include "common/status.h"
#include "common/types.h"
#include "crypto/aes.h"

namespace nvmetro::crypto {

class XtsCipher {
 public:
  /// `key` is the concatenation of the data key and the tweak key
  /// (32 bytes = XTS-AES-128, 64 bytes = XTS-AES-256), exactly the key
  /// format dm-crypt uses for aes-xts.
  static Result<XtsCipher> Create(const u8* key, usize key_len);

  /// Encrypts one data unit ("sector"). len must be a multiple of 16.
  /// `sector` is the data-unit number (plain64 IV).
  void EncryptSector(u64 sector, const u8* in, u8* out, usize len) const;
  void DecryptSector(u64 sector, const u8* in, u8* out, usize len) const;

  /// Encrypts a run of consecutive sectors starting at `first_sector`.
  /// len must be a multiple of sector_size; in == out is allowed.
  void EncryptRange(u64 first_sector, u32 sector_size, const u8* in, u8* out,
                    usize len) const;
  void DecryptRange(u64 first_sector, u32 sector_size, const u8* in, u8* out,
                    usize len) const;

  bool using_aesni() const { return data_.using_aesni(); }
  void DisableAesni() {
    data_.DisableAesni();
    tweak_.DisableAesni();
  }

 private:
  XtsCipher(Aes data, Aes tweak)
      : data_(std::move(data)), tweak_(std::move(tweak)) {}

  void Process(bool encrypt, u64 sector, const u8* in, u8* out,
               usize len) const;

  Aes data_;
  Aes tweak_;
};

/// Default data-unit size used throughout (dm-crypt default).
constexpr u32 kXtsSectorSize = 512;

}  // namespace nvmetro::crypto

// AES block cipher (AES-128 / AES-256).
//
// Two implementations, selected at runtime:
//  - a portable table-free reference implementation (S-box + xtime), used
//    for correctness on any host and as the cross-check oracle in tests;
//  - an AES-NI fast path (aes_ni.cc, compiled with -maes) matching what
//    the paper's encryptors use ("Both versions use AES-NI instructions
//    for encryption, the same as dm-crypt, SPDK and other encryption
//    software", §IV-A).
#pragma once

#include <memory>

#include "common/status.h"
#include "common/types.h"

namespace nvmetro::crypto {

/// Expanded-key AES context. Copyable; key material is wiped on destroy.
class Aes {
 public:
  static constexpr usize kBlockSize = 16;

  /// key_len must be 16 (AES-128) or 32 (AES-256).
  static Result<Aes> Create(const u8* key, usize key_len);

  ~Aes();
  Aes(const Aes&) = default;
  Aes& operator=(const Aes&) = default;

  void EncryptBlock(const u8 in[16], u8 out[16]) const;
  void DecryptBlock(const u8 in[16], u8 out[16]) const;

  /// ECB over multiple blocks (len % 16 == 0); used by XTS.
  void EncryptBlocks(const u8* in, u8* out, usize len) const;
  void DecryptBlocks(const u8* in, u8* out, usize len) const;

  int rounds() const { return rounds_; }
  bool using_aesni() const { return aesni_; }

  /// Forces the portable path (tests compare it against AES-NI).
  void DisableAesni() { aesni_ = false; }

 private:
  Aes() = default;

  // Round keys as raw bytes, encryption order; 15 rounds covers AES-256.
  u8 ek_[240] = {};
  // aesimc-transformed decryption keys for the AES-NI path.
  u8 dk_[240] = {};
  int rounds_ = 0;
  bool aesni_ = false;
};

namespace internal {
/// True when the AES-NI backend is compiled in and supported by the CPU.
bool AesNiAvailable();
/// Builds aesimc-transformed decryption round keys from encryption keys.
void AesNiMakeDecryptKeys(const u8* ek, int rounds, u8* dk);
/// AES-NI bulk primitives over the raw round-key bytes.
void AesNiEncryptBlocks(const u8* ek, int rounds, const u8* in, u8* out,
                        usize len);
void AesNiDecryptBlocks(const u8* dk, int rounds, const u8* in, u8* out,
                        usize len);
}  // namespace internal

}  // namespace nvmetro::crypto

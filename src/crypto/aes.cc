#include "crypto/aes.h"

#include <cstring>

#include "common/cpufeat.h"

namespace nvmetro::crypto {

namespace {

// The S-box is derived at startup from its mathematical definition
// (multiplicative inverse in GF(2^8) followed by the affine transform)
// instead of a transcribed table; the FIPS-197 vectors in the test suite
// pin the result.
struct SboxTables {
  u8 sbox[256];
  u8 inv_sbox[256];
  SboxTables() {
    auto gf_mul = [](u8 a, u8 b) {
      u8 p = 0;
      for (int i = 0; i < 8; i++) {
        if (b & 1) p ^= a;
        bool hi = a & 0x80;
        a <<= 1;
        if (hi) a ^= 0x1B;
        b >>= 1;
      }
      return p;
    };
    // Multiplicative inverses by exhaustive search (once, 64K mults).
    u8 inv[256] = {};
    for (int a = 1; a < 256; a++) {
      for (int b = 1; b < 256; b++) {
        if (gf_mul(static_cast<u8>(a), static_cast<u8>(b)) == 1) {
          inv[a] = static_cast<u8>(b);
          break;
        }
      }
    }
    auto rotl8 = [](u8 x, int k) {
      return static_cast<u8>((x << k) | (x >> (8 - k)));
    };
    for (int x = 0; x < 256; x++) {
      u8 b = inv[x];
      u8 s = static_cast<u8>(b ^ rotl8(b, 1) ^ rotl8(b, 2) ^ rotl8(b, 3) ^
                             rotl8(b, 4) ^ 0x63);
      sbox[x] = s;
      inv_sbox[s] = static_cast<u8>(x);
    }
  }
};

const SboxTables& Tables() {
  static const SboxTables t;
  return t;
}

inline u8 XTime(u8 x) {
  return static_cast<u8>((x << 1) ^ ((x >> 7) * 0x1B));
}

inline u8 GfMul(u8 a, u8 b) {
  u8 p = 0;
  while (b) {
    if (b & 1) p ^= a;
    a = XTime(a);
    b >>= 1;
  }
  return p;
}

void SubBytes(u8 s[16]) {
  for (int i = 0; i < 16; i++) s[i] = Tables().sbox[s[i]];
}
void InvSubBytes(u8 s[16]) {
  for (int i = 0; i < 16; i++) s[i] = Tables().inv_sbox[s[i]];
}

// State layout: s[r + 4c] (column-major as FIPS-197).
void ShiftRows(u8 s[16]) {
  u8 t;
  // row 1: shift left 1
  t = s[1]; s[1] = s[5]; s[5] = s[9]; s[9] = s[13]; s[13] = t;
  // row 2: shift left 2
  std::swap(s[2], s[10]);
  std::swap(s[6], s[14]);
  // row 3: shift left 3 (== right 1)
  t = s[15]; s[15] = s[11]; s[11] = s[7]; s[7] = s[3]; s[3] = t;
}

void InvShiftRows(u8 s[16]) {
  u8 t;
  t = s[13]; s[13] = s[9]; s[9] = s[5]; s[5] = s[1]; s[1] = t;
  std::swap(s[2], s[10]);
  std::swap(s[6], s[14]);
  t = s[3]; s[3] = s[7]; s[7] = s[11]; s[11] = s[15]; s[15] = t;
}

void MixColumns(u8 s[16]) {
  for (int c = 0; c < 4; c++) {
    u8* col = s + 4 * c;
    u8 a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<u8>(XTime(a0) ^ (XTime(a1) ^ a1) ^ a2 ^ a3);
    col[1] = static_cast<u8>(a0 ^ XTime(a1) ^ (XTime(a2) ^ a2) ^ a3);
    col[2] = static_cast<u8>(a0 ^ a1 ^ XTime(a2) ^ (XTime(a3) ^ a3));
    col[3] = static_cast<u8>((XTime(a0) ^ a0) ^ a1 ^ a2 ^ XTime(a3));
  }
}

void InvMixColumns(u8 s[16]) {
  for (int c = 0; c < 4; c++) {
    u8* col = s + 4 * c;
    u8 a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = GfMul(a0, 14) ^ GfMul(a1, 11) ^ GfMul(a2, 13) ^ GfMul(a3, 9);
    col[1] = GfMul(a0, 9) ^ GfMul(a1, 14) ^ GfMul(a2, 11) ^ GfMul(a3, 13);
    col[2] = GfMul(a0, 13) ^ GfMul(a1, 9) ^ GfMul(a2, 14) ^ GfMul(a3, 11);
    col[3] = GfMul(a0, 11) ^ GfMul(a1, 13) ^ GfMul(a2, 9) ^ GfMul(a3, 14);
  }
}

void AddRoundKey(u8 s[16], const u8* rk) {
  for (int i = 0; i < 16; i++) s[i] ^= rk[i];
}

}  // namespace

Result<Aes> Aes::Create(const u8* key, usize key_len) {
  if (key_len != 16 && key_len != 32)
    return InvalidArgument("AES key must be 16 or 32 bytes");
  Aes aes;
  const int nk = static_cast<int>(key_len / 4);
  aes.rounds_ = nk + 6;  // 10 or 14
  const int total_words = 4 * (aes.rounds_ + 1);

  // Key expansion over byte-addressed words w[i] = ek_[4i..4i+4).
  std::memcpy(aes.ek_, key, key_len);
  u8 rcon = 1;
  for (int i = nk; i < total_words; i++) {
    u8 temp[4];
    std::memcpy(temp, aes.ek_ + 4 * (i - 1), 4);
    if (i % nk == 0) {
      // RotWord + SubWord + Rcon.
      u8 t0 = temp[0];
      temp[0] = static_cast<u8>(Tables().sbox[temp[1]] ^ rcon);
      temp[1] = Tables().sbox[temp[2]];
      temp[2] = Tables().sbox[temp[3]];
      temp[3] = Tables().sbox[t0];
      rcon = XTime(rcon);
    } else if (nk > 6 && i % nk == 4) {
      for (int j = 0; j < 4; j++) temp[j] = Tables().sbox[temp[j]];
    }
    for (int j = 0; j < 4; j++) {
      aes.ek_[4 * i + j] =
          static_cast<u8>(aes.ek_[4 * (i - nk) + j] ^ temp[j]);
    }
  }

  aes.aesni_ = internal::AesNiAvailable();
  if (aes.aesni_) {
    internal::AesNiMakeDecryptKeys(aes.ek_, aes.rounds_, aes.dk_);
  }
  return aes;
}

Aes::~Aes() {
  // Best-effort key wipe.
  volatile u8* p = ek_;
  for (usize i = 0; i < sizeof(ek_); i++) p[i] = 0;
  volatile u8* q = dk_;
  for (usize i = 0; i < sizeof(dk_); i++) q[i] = 0;
}

void Aes::EncryptBlock(const u8 in[16], u8 out[16]) const {
  if (aesni_) {
    internal::AesNiEncryptBlocks(ek_, rounds_, in, out, 16);
    return;
  }
  u8 s[16];
  std::memcpy(s, in, 16);
  AddRoundKey(s, ek_);
  for (int round = 1; round < rounds_; round++) {
    SubBytes(s);
    ShiftRows(s);
    MixColumns(s);
    AddRoundKey(s, ek_ + 16 * round);
  }
  SubBytes(s);
  ShiftRows(s);
  AddRoundKey(s, ek_ + 16 * rounds_);
  std::memcpy(out, s, 16);
}

void Aes::DecryptBlock(const u8 in[16], u8 out[16]) const {
  if (aesni_) {
    internal::AesNiDecryptBlocks(dk_, rounds_, in, out, 16);
    return;
  }
  u8 s[16];
  std::memcpy(s, in, 16);
  AddRoundKey(s, ek_ + 16 * rounds_);
  for (int round = rounds_ - 1; round >= 1; round--) {
    InvShiftRows(s);
    InvSubBytes(s);
    AddRoundKey(s, ek_ + 16 * round);
    InvMixColumns(s);
  }
  InvShiftRows(s);
  InvSubBytes(s);
  AddRoundKey(s, ek_);
  std::memcpy(out, s, 16);
}

void Aes::EncryptBlocks(const u8* in, u8* out, usize len) const {
  if (aesni_) {
    internal::AesNiEncryptBlocks(ek_, rounds_, in, out, len);
    return;
  }
  for (usize off = 0; off + 16 <= len; off += 16) {
    EncryptBlock(in + off, out + off);
  }
}

void Aes::DecryptBlocks(const u8* in, u8* out, usize len) const {
  if (aesni_) {
    internal::AesNiDecryptBlocks(dk_, rounds_, in, out, len);
    return;
  }
  for (usize off = 0; off + 16 <= len; off += 16) {
    DecryptBlock(in + off, out + off);
  }
}

}  // namespace nvmetro::crypto

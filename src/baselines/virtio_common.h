// Shared virtio-style guest driver used by the vhost-scsi, QEMU
// virtio-blk and SPDK vhost-user baselines.
//
// The guest builds a request with guest-physical data segments and rings
// the virtqueue doorbell. The doorbell cost depends on the backend: a
// vm-exit for eventfd-kick backends (vhost, QEMU), a plain shared-memory
// write when a poller watches the ring (SPDK). Completions arrive as
// virtual interrupts with guest-side handling costs.
#pragma once

#include <functional>
#include <vector>

#include "baselines/costs.h"
#include "baselines/solution.h"
#include "common/types.h"
#include "virt/vm.h"

namespace nvmetro::baselines {

struct VirtioRequest {
  StorageSolution::Op op = StorageSolution::Op::kRead;
  u64 sector = 0;
  u64 len = 0;
  struct Seg {
    u64 gpa;
    u64 len;
  };
  std::vector<Seg> segments;
  std::function<void(Status)> done;  // invoked by the backend (host side)
};

/// Backend of a virtqueue (the host side).
class VirtioBackend {
 public:
  virtual ~VirtioBackend() = default;
  virtual void Enqueue(VirtioRequest req) = 0;
  /// Doorbell. Only meaningful for kick-based backends.
  virtual void Kick() = 0;
  /// True when the backend polls the ring (no exit needed on kick).
  virtual bool polled() const = 0;
  /// virtio EVENT_IDX notification suppression: false while the backend
  /// is already draining the ring, so the guest skips the vm-exit.
  virtual bool NeedsKick() const { return !polled(); }
};

/// The guest half: charges guest CPU for submission, kick and interrupt
/// handling (with per-vCPU interrupt coalescing, as virtio/NAPI drains a
/// batch of used descriptors per interrupt), and forwards requests to the
/// backend.
class VirtioGuestDriver {
 public:
  VirtioGuestDriver(virt::Vm* vm, VirtioBackend* backend,
                    VirtioGuestCosts costs = VirtioGuestCosts())
      : vm_(vm), backend_(backend), costs_(costs),
        percpu_(vm->num_vcpus()) {}

  /// Issues a request from guest job `job` (vcpu job % nvcpus).
  void Submit(u32 job, VirtioRequest req) {
    u32 cpu_idx = job % vm_->num_vcpus();
    sim::VCpu* cpu = vm_->vcpu(cpu_idx);
    // Completion lands in the per-vCPU used ring; one interrupt drains
    // a whole batch.
    auto done = std::move(req.done);
    req.done = [this, cpu_idx, done = std::move(done)](Status st) {
      PerCpu& pc = percpu_[cpu_idx];
      pc.completed.push_back([done, st] {
        if (done) done(st);
      });
      if (pc.irq_scheduled) return;
      pc.irq_scheduled = true;
      sim::VCpu* vcpu = vm_->vcpu(cpu_idx);
      SimTime wake = sim::WakePenalty(*vcpu, costs_.halt_wake_warm_ns,
                                      costs_.halt_wake_cold_ns);
      vcpu->simulator()->ScheduleAfter(wake, [this, cpu_idx] {
        sim::VCpu* c = vm_->vcpu(cpu_idx);
        c->Run(costs_.irq_entry_ns, [this, cpu_idx] { Drain(cpu_idx); });
      });
    };
    SimTime kick_cost = costs_.kick_polled_ns;
    if (!backend_->polled() && backend_->NeedsKick()) {
      kick_cost = costs_.kick_exit_ns;  // EVENT_IDX: exit only when needed
    }
    cpu->Run(costs_.submit_cpu_ns + kick_cost,
             [this, req = std::move(req)]() mutable {
               backend_->Enqueue(std::move(req));
               backend_->Kick();
             });
  }

  virt::Vm* vm() { return vm_; }

 private:
  struct PerCpu {
    std::vector<std::function<void()>> completed;
    bool irq_scheduled = false;
  };

  void Drain(u32 cpu_idx) {
    PerCpu& pc = percpu_[cpu_idx];
    pc.irq_scheduled = false;
    auto batch = std::move(pc.completed);
    pc.completed.clear();
    vm_->vcpu(cpu_idx)->Charge(batch.size() * costs_.per_cqe_ns);
    for (auto& fn : batch) fn();
  }

  virt::Vm* vm_;
  VirtioBackend* backend_;
  VirtioGuestCosts costs_;
  std::vector<PerCpu> percpu_;
};

}  // namespace nvmetro::baselines

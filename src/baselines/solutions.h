// The storage-virtualization solutions compared in the paper's
// evaluation: NVMetro (and MDev-NVMe mode), direct PCIe passthrough,
// in-kernel vhost-scsi, QEMU virtio-blk (io_uring), and SPDK vhost-user.
//
// Each class is one VM's stack; the SolutionBundle factory (factory.h)
// wires complete setups including the dm-crypt / dm-mirror baselines and
// the NVMetro storage functions.
#pragma once

#include <deque>
#include <list>
#include <memory>
#include <unordered_map>

#include "baselines/costs.h"
#include "baselines/solution.h"
#include "baselines/virtio_common.h"
#include "core/router.h"
#include "kblock/devices.h"
#include "kblock/vhost_scsi.h"
#include "nvme/prp.h"
#include "sim/poller.h"
#include "virt/guest_nvme.h"

namespace nvmetro::baselines {

// ---------------------------------------------------------------------------
// Shared base: guest VM + scratch buffers + data copy plumbing.
// ---------------------------------------------------------------------------

class VmSolutionBase : public StorageSolution {
 public:
  virt::Vm* vm() override { return vm_.get(); }
  u64 HostAgentCpuNs() const override {
    return host_cpu_fn_ ? host_cpu_fn_() : 0;
  }

  /// Host-agent CPU is often shared across VMs (router threads, UIF
  /// processes); the factory installs an accounting closure.
  void SetHostCpuFn(std::function<u64()> fn) { host_cpu_fn_ = std::move(fn); }

 protected:
  VmSolutionBase(Testbed* tb, std::unique_ptr<virt::Vm> vm)
      : tb_(tb), vm_(std::move(vm)), pool_(&vm_->memory()) {}

  Testbed* tb_;
  std::unique_ptr<virt::Vm> vm_;
  GuestBufferPool pool_;
  std::function<u64()> host_cpu_fn_;
};

// ---------------------------------------------------------------------------
// NVMe-driver solutions: NVMetro / MDev (router) and passthrough.
// ---------------------------------------------------------------------------

/// Issues block I/O through a GuestNvmeDriver over any
/// virt::VirtualNvmeBackend (NVMetro virtual controller, passthrough...).
class NvmeDriverSolution : public VmSolutionBase {
 public:
  NvmeDriverSolution(Testbed* tb, std::unique_ptr<virt::Vm> vm,
                     virt::VirtualNvmeBackend* backend, std::string name,
                     u32 queues);

  Status Init() { return driver_->Init(queues_); }

  void Submit(u32 job, Op op, u64 offset_bytes, u64 len, void* data,
              std::function<void(Status)> done) override;
  u64 capacity_bytes() const override { return backend_->CapacityBytes(); }
  std::string name() const override { return name_; }

  virt::GuestNvmeDriver* driver() { return driver_.get(); }

 private:
  virt::VirtualNvmeBackend* backend_;
  std::string name_;
  u32 queues_;
  std::unique_ptr<virt::GuestNvmeDriver> driver_;
};

/// Device passthrough: the guest's rings are attached directly to the
/// physical controller; completions come back as forwarded interrupts.
class PassthroughBackend : public virt::VirtualNvmeBackend {
 public:
  PassthroughBackend(Testbed* tb, virt::Vm* vm, sim::VCpu* host_irq_cpu,
                     PassthroughCosts costs = PassthroughCosts());

  Status AttachQueuePair(u16 qid, nvme::SqRing* sq, nvme::CqRing* cq,
                         u64 sq_gpa, u64 cq_gpa) override;
  SimTime SqDoorbell(u16 qid) override;
  void CqDoorbell(u16 qid) override;
  void SetIrqHandler(u16 qid, std::function<void()> handler) override;
  u64 CapacityBytes() const override;

 private:
  struct Queue {
    u16 guest_qid;
    u16 host_qid;
    std::function<void()> irq;
    bool irq_pending = false;
  };
  void ForwardIrq(usize idx);

  Testbed* tb_;
  virt::Vm* vm_;
  sim::VCpu* host_irq_cpu_;
  PassthroughCosts costs_;
  std::vector<Queue> queues_;
};

// ---------------------------------------------------------------------------
// virtio-based solutions (vhost-scsi / QEMU / SPDK).
// ---------------------------------------------------------------------------

/// Block I/O through a VirtioGuestDriver over any VirtioBackend.
class VirtioSolution : public VmSolutionBase {
 public:
  VirtioSolution(Testbed* tb, std::unique_ptr<virt::Vm> vm,
                 VirtioBackend* backend, std::string name,
                 u64 capacity_bytes);

  void Submit(u32 job, Op op, u64 offset_bytes, u64 len, void* data,
              std::function<void(Status)> done) override;
  u64 capacity_bytes() const override { return capacity_; }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  u64 capacity_;
  std::unique_ptr<VirtioGuestDriver> driver_;
};

/// Adapts the kblock vhost-scsi target (SCSI CDB translation + kernel
/// worker) to the virtio interface.
class VhostScsiAdapter : public VirtioBackend {
 public:
  VhostScsiAdapter(kblock::VhostScsiBackend* backend, virt::Vm* vm)
      : backend_(backend), vm_(vm) {}

  void Enqueue(VirtioRequest req) override;
  void Kick() override { backend_->Kick(); }
  bool polled() const override { return false; }
  bool NeedsKick() const override { return !backend_->worker_active(); }

 private:
  kblock::VhostScsiBackend* backend_;
  virt::Vm* vm_;
};

/// Host page cache (buffered I/O) for the QEMU backend: LRU 4K pages
/// holding real data, with sequential readahead.
class PageCache {
 public:
  PageCache(u64 capacity_bytes, u64 readahead_bytes);

  bool ContainsRange(u64 offset, u64 len) const;
  /// Copies cached bytes out; only valid when ContainsRange.
  void CopyOut(u64 offset, u8* dst, u64 len) const;
  /// Inserts (write-through) data.
  void Insert(u64 offset, const u8* data, u64 len);

  /// Drops any cached pages overlapping the range (write invalidation /
  /// drop-behind).
  void Invalidate(u64 offset, u64 len);

  /// Returns the next readahead window [start,len) to fetch for a
  /// sequential read ending at `end`, or len 0 when RA is not warranted.
  std::pair<u64, u64> NextReadahead(u64 offset, u64 len, u64 device_cap);

  u64 hits() const { return hits_; }
  u64 misses() const { return misses_; }
  void CountLookup(bool hit) { (hit ? hits_ : misses_)++; }

 private:
  struct Page {
    std::unique_ptr<u8[]> data;
    std::list<u64>::iterator lru_it;
  };
  void Touch(u64 page_idx);
  void InsertPage(u64 page_idx, const u8* data);

  u64 capacity_pages_;
  u64 readahead_;
  std::unordered_map<u64, Page> pages_;
  std::list<u64> lru_;  // front = most recent
  u64 next_expected_ = ~0ull;  // sequential stream detector
  u64 ra_done_until_ = 0;
  u64 hits_ = 0;
  u64 misses_ = 0;
};

/// QEMU virtio-blk backend: an iothread woken by kicks, buffered host
/// I/O (page cache + readahead) over the host NVMe block device, and
/// io_uring-style submission costs.
class QemuBackend : public VirtioBackend {
 public:
  QemuBackend(Testbed* tb, virt::Vm* vm, kblock::BlockDevice* lower,
              QemuCosts costs = QemuCosts());

  void Enqueue(VirtioRequest req) override;
  void Kick() override;
  bool polled() const override { return false; }
  bool NeedsKick() const override { return !active_; }

  u64 HostCpuNs() const { return iothread_.busy_ns(); }
  const PageCache& cache() const { return cache_; }

 private:
  void IoThreadLoop();
  void Serve(VirtioRequest req);

  Testbed* tb_;
  virt::Vm* vm_;
  kblock::BlockDevice* lower_;
  QemuCosts costs_;
  sim::VCpu iothread_;
  PageCache cache_;
  std::deque<VirtioRequest> vring_;
  bool active_ = false;
  // Sequential-stream detector for readahead sizing.
  u64 stream_next_ = ~0ull;
  // In-flight demand fetches: racing readers of the same window wait on
  // the fetch instead of re-reading the device (page-cache page locks).
  struct InflightFetch {
    u64 offset;
    u64 len;
    struct Waiter {
      u64 offset;
      u8* host;
      u64 len;
      std::function<void(Status)> complete;
    };
    std::vector<Waiter> waiters;
  };
  std::vector<std::unique_ptr<InflightFetch>> inflight_;
};

/// SPDK vhost-user backend: dedicated reactor threads busy-polling the
/// vring and the device CQ; userspace NVMe driver with its own queue
/// pair on the physical controller.
class SpdkBackend : public VirtioBackend {
 public:
  SpdkBackend(Testbed* tb, virt::Vm* vm, SpdkCosts costs = SpdkCosts());

  void Start();

  void Enqueue(VirtioRequest req) override;
  void Kick() override {}  // poller sees the ring
  bool polled() const override { return true; }

  u64 HostCpuNs() const;

 private:
  void ServeOne();
  void OnDeviceCq();

  Testbed* tb_;
  virt::Vm* vm_;
  SpdkCosts costs_;
  mem::IommuSpace guest_dma_;  // guest memory + SPDK-owned list pages
  std::vector<std::unique_ptr<sim::VCpu>> reactors_;
  std::unique_ptr<sim::Poller> poller_;
  u32 src_ring_ = 0, src_cq_ = 0;
  u16 qid_ = 0;
  u16 next_cid_ = 1;
  std::deque<VirtioRequest> vring_;
  struct Pending {
    VirtioRequest req;
    std::vector<u64> windows;
    std::unique_ptr<std::vector<u8>> list_page;
  };
  std::map<u16, Pending> pending_;
};

}  // namespace nvmetro::baselines

// Factory assembling complete storage-virtualization setups on a Testbed:
// the six basic solutions of the paper's §V-B, and the storage-function
// configurations of §V-C/D (NVMetro encryption / SGX encryption vs
// dm-crypt, NVMetro replication vs dm-mirror).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "baselines/solutions.h"
#include "core/router.h"
#include "functions/encryptor_uif.h"
#include "functions/replicator_uif.h"
#include "kblock/dm.h"
#include "uif/framework.h"

namespace nvmetro::fault {
class FaultInjector;
}  // namespace nvmetro::fault

namespace nvmetro::baselines {

enum class SolutionKind {
  kNvmetro,      // router + dummy (passthrough) classifier, no UIF
  kMdev,         // MDev-NVMe: fixed in-kernel translation
  kPassthrough,  // direct device assignment
  kVhostScsi,    // in-kernel vhost-scsi
  kQemu,         // QEMU virtio-blk with io_uring
  kSpdk,         // SPDK vhost-user
  // Storage functions (paper §V-C/D):
  kNvmetroEncryption,
  kNvmetroSgx,
  kDmCrypt,      // dm-crypt + vhost-scsi
  kNvmetroReplication,
  kDmMirror,     // dm-mirror + vhost-scsi
};

const char* SolutionKindName(SolutionKind kind);

struct SolutionParams {
  u32 num_vms = 1;
  u32 guest_queues = 4;
  /// Router cost model override (NVMetro family; ablations). Batching is
  /// part of this: router_costs.max_batch > 1 turns on the batched
  /// submission/completion pipeline (DESIGN.md §10).
  core::RouterCosts router_costs{};
  /// NSQ entries the UIF framework harvests per poll dispatch
  /// (UifHostParams::max_batch); 1 = classic per-command dispatch.
  u32 uif_max_batch = 1;
  virt::VmConfig vm_cfg{.name = "vm", .memory_bytes = 96 * MiB, .vcpus = 4};
  u32 router_workers = 1;
  /// XTS key for the encryption variants (generated from `seed` when
  /// empty).
  std::vector<u8> xts_key;
  u64 seed = 7;
  /// Optional metrics + trace sink, threaded into the router workers, UIF
  /// host, dm targets and replication/mirror secondary drives. (The
  /// primary drive belongs to the Testbed — set ControllerConfig::obs
  /// there to cover it.)
  obs::Observability* obs = nullptr;
  /// Optional fault injector. The factory wires it into the testbed's
  /// physical drive (stalls, delayed errors, SQ bursts), the bundle's
  /// notify channels (UIF wedge) and the replication secondaries' NVMe-oF
  /// links + replicator UIFs (outage and heal-triggered resync).
  fault::FaultInjector* fault = nullptr;
};

/// Owns every object of one solution's stack (per testbed).
class SolutionBundle {
 public:
  static std::unique_ptr<SolutionBundle> Create(Testbed* tb,
                                                SolutionKind kind,
                                                SolutionParams params = {});

  ~SolutionBundle();

  SolutionKind kind() const { return kind_; }
  u32 num_vms() const { return static_cast<u32>(solutions_.size()); }
  StorageSolution* vm_solution(u32 i) { return solutions_[i]; }

  /// CPU burned by this bundle's host-side agents.
  u64 HostAgentCpuNs() const;

  // Internals for tests / white-box benches.
  core::NvmetroHost* nvmetro_host() { return nvmetro_host_.get(); }
  core::VirtualController* controller(u32 i) { return vcs_[i]; }
  const std::vector<u8>& xts_key() const { return xts_key_; }
  ssd::SimulatedController* secondary_drive(u32 i) {
    return i < secondary_ctrls_.size() ? secondary_ctrls_[i].get() : nullptr;
  }
  core::NotifyChannel* notify_channel(u32 i) {
    return i < channels_.size() ? channels_[i].get() : nullptr;
  }
  kblock::RemoteBlockDevice* remote_device(u32 i) {
    return i < remote_devs_.size() ? remote_devs_[i].get() : nullptr;
  }
  functions::ReplicatorUif* replicator(u32 i) {
    if (kind_ != SolutionKind::kNvmetroReplication || i >= uifs_.size()) {
      return nullptr;
    }
    return static_cast<functions::ReplicatorUif*>(uifs_[i].get());
  }
  kblock::NvmeBlockDevice* kernel_device() { return kernel_dev_.get(); }
  const QemuBackend* qemu_backend() const {
    return qemu_.empty() ? nullptr : qemu_[0].get();
  }

 private:
  SolutionBundle() = default;

  SolutionKind kind_ = SolutionKind::kNvmetro;
  Testbed* tb_ = nullptr;
  std::vector<u8> xts_key_;

  // Host-agent CPU accounting closures.
  std::vector<std::function<u64()>> host_cpu_fns_;

  // NVMetro family.
  std::unique_ptr<core::NvmetroHost> nvmetro_host_;
  std::vector<core::VirtualController*> vcs_;
  std::unique_ptr<kblock::NvmeBlockDevice> kernel_dev_;
  std::unique_ptr<uif::UifHost> uif_host_;
  std::vector<std::unique_ptr<core::NotifyChannel>> channels_;
  std::vector<std::unique_ptr<uif::UifBase>> uifs_;

  // Replication secondaries (one per VM).
  std::vector<std::unique_ptr<mem::IommuSpace>> secondary_dmas_;
  std::vector<std::unique_ptr<ssd::SimulatedController>> secondary_ctrls_;
  std::vector<std::unique_ptr<kblock::NvmeBlockDevice>> secondary_devs_;
  std::vector<std::unique_ptr<kblock::RemoteBlockDevice>> remote_devs_;

  // Passthrough.
  std::vector<std::unique_ptr<sim::VCpu>> irq_cpus_;
  std::vector<std::unique_ptr<PassthroughBackend>> pt_backends_;

  // vhost / dm family.
  std::vector<std::unique_ptr<sim::VCpu>> host_workers_;  // vhost + kcryptd
  std::vector<std::unique_ptr<kblock::NvmeBlockDevice>> lower_devs_;
  std::vector<std::unique_ptr<kblock::BlockDevice>> dm_devs_;
  std::vector<std::unique_ptr<kblock::VhostScsiBackend>> vhost_backends_;
  std::vector<std::unique_ptr<VhostScsiAdapter>> vhost_adapters_;

  // QEMU / SPDK.
  std::vector<std::unique_ptr<QemuBackend>> qemu_;
  std::vector<std::unique_ptr<SpdkBackend>> spdk_;

  // The per-VM frontends (owned).
  std::vector<std::unique_ptr<VmSolutionBase>> owned_solutions_;
  std::vector<StorageSolution*> solutions_;
};

}  // namespace nvmetro::baselines

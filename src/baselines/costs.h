// Central calibration constants for the baseline storage-virtualization
// solutions.
//
// Every number here models a real phenomenon of the corresponding Linux/
// QEMU/SPDK stack and is chosen so the *relationships* in the paper's
// evaluation hold (see EXPERIMENTS.md for the shape checks):
//   - polling solutions (NVMetro, MDev, SPDK) share latency; passthrough
//     pays interrupt forwarding (+18% median at 512B RR, Fig. 4);
//   - vhost-scsi pays kick + kernel worker + SCSI translation (+74%);
//   - QEMU pays kick + iothread wakeup + io_uring + irq (~3.4x), but
//     regains throughput at high QD via batching and buffered host I/O;
//   - SPDK burns the most CPU (dedicated reactors), passthrough the
//     least (Fig. 11).
#pragma once

#include "common/types.h"

namespace nvmetro::baselines {

// --- Device passthrough -------------------------------------------------------

struct PassthroughCosts {
  /// Guest doorbell MMIO to real hardware.
  SimTime doorbell_ns = 200;
  /// Host CPU per forwarded interrupt (hardware MSI -> host handler ->
  /// irqfd/posted interrupt to guest).
  SimTime irq_forward_cpu_ns = 1'300;
  /// Added latency of the interrupt forwarding path: cold when the host
  /// core idled through a long device op (C-state exit), warm when
  /// completions arrive back-to-back.
  SimTime irq_forward_cold_ns = 12'000;
  SimTime irq_forward_warm_ns = 2'000;
};

// --- virtio-based guests (vhost-scsi, QEMU, SPDK vhost-user) --------------------

struct VirtioGuestCosts {
  /// Guest CPU per request (virtio-blk/scsi driver, descriptor setup).
  SimTime submit_cpu_ns = 900;
  /// Guest cost of a doorbell that traps (vm-exit + eventfd signal).
  SimTime kick_exit_ns = 2'100;
  /// Guest cost of a doorbell the backend observes by polling (SPDK).
  SimTime kick_polled_ns = 120;
  /// Guest interrupt entry + per-completion handling.
  SimTime irq_entry_ns = 1'600;
  SimTime per_cqe_ns = 500;
  /// Halted-vCPU wake latency (cold) vs running vCPU (warm).
  SimTime halt_wake_cold_ns = 6'000;
  SimTime halt_wake_warm_ns = 500;
};

// --- QEMU virtio-blk (userspace VMM, io_uring backend) ---------------------------

struct QemuCosts {
  /// iothread wakeup after a kick (or a uring completion) when the
  /// thread has been idle a while: ppoll return + scheduler + C-state
  /// exit on the testbed; warm when recently active.
  SimTime iothread_wake_cold_ns = 100'000;
  SimTime iothread_wake_warm_ns = 15'000;
  /// iothread CPU per request (vring pop, request setup).
  SimTime per_req_cpu_ns = 1'400;
  /// io_uring submit per SQE (batched io_uring_enter amortized).
  SimTime uring_submit_ns = 500;
  /// iothread CPU per completion + irqfd injection.
  SimTime per_cpl_cpu_ns = 1'100;
  /// Latency of the virtual interrupt to the guest.
  SimTime irq_latency_ns = 6'000;
  /// Host page cache: per-byte copy cost on hits, and readahead window.
  double cache_copy_ns_per_byte = 0.06;
  u64 page_cache_bytes = 512 * MiB;
  u64 readahead_bytes = 1 * MiB;
};

// --- SPDK vhost-user --------------------------------------------------------------

struct SpdkCosts {
  /// Reactor CPU per request (vring pop + bdev + nvme submit), the thin
  /// userspace path.
  SimTime per_req_cpu_ns = 650;
  /// Reactor CPU per completion (+ guest irq signal).
  SimTime per_cpl_cpu_ns = 500;
  /// Latency of the guest interrupt (irqfd from userspace).
  SimTime irq_latency_ns = 900;
  /// Number of dedicated poller reactors (always spinning).
  u32 reactors = 1;
};

}  // namespace nvmetro::baselines

// Common frontend for all storage-virtualization solutions.
//
// Workloads (fio, YCSB/MiniKv) issue block I/O against a StorageSolution,
// which hides whether the underlying stack is NVMetro, MDev, passthrough,
// vhost-scsi, QEMU virtio-blk or SPDK vhost — exactly the role the guest
// block device plays for the benchmarks in the paper.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "mem/guest_memory.h"
#include "sim/simulator.h"
#include "ssd/controller.h"
#include "virt/vm.h"

namespace nvmetro::baselines {

/// Shared environment: the simulator, the physical drive and its DMA
/// space — the "host machine" of the experiment.
struct Testbed {
  sim::Simulator sim;
  mem::IommuSpace dma{nullptr, 1ull << 40};
  std::unique_ptr<ssd::SimulatedController> phys;

  explicit Testbed(ssd::ControllerConfig cfg = DefaultDrive()) {
    phys = std::make_unique<ssd::SimulatedController>(&sim, &dma, cfg);
  }

  static ssd::ControllerConfig DefaultDrive() {
    ssd::ControllerConfig cfg;
    cfg.capacity = 8 * GiB;  // working area; the model scales regardless
    cfg.max_io_queues = 256;
    return cfg;
  }
};

/// One VM's storage interface.
class StorageSolution {
 public:
  enum class Op { kRead, kWrite, kFlush };

  virtual ~StorageSolution() = default;

  /// Issues one I/O from guest job `job` (jobs map to guest vCPUs).
  /// `data` is optional: when null, the solution uses an internal guest
  /// scratch buffer (fio mode); when set, `len` bytes are copied in
  /// (writes) or out (reads) of guest memory so callers see real data
  /// (filesystem / KV mode).
  virtual void Submit(u32 job, Op op, u64 offset_bytes, u64 len, void* data,
                      std::function<void(Status)> done) = 0;

  virtual u64 capacity_bytes() const = 0;
  virtual std::string name() const = 0;
  virtual virt::Vm* vm() = 0;

  /// CPU burned by host-side agents of this solution (router threads,
  /// UIFs, vhost workers, QEMU iothreads, SPDK reactors, kcryptd...),
  /// excluding the guest's own vCPUs.
  virtual u64 HostAgentCpuNs() const = 0;

  /// Guest + host agents.
  u64 TotalCpuNs() { return vm()->TotalCpuBusyNs() + HostAgentCpuNs(); }
};

/// Guest scratch-buffer pool: reusable page-aligned buffers in guest
/// memory, one free list per size class.
class GuestBufferPool {
 public:
  explicit GuestBufferPool(mem::GuestMemory* gm) : gm_(gm) {}

  /// Returns the gpa of a free buffer with room for `len` bytes.
  Result<u64> Acquire(u64 len) {
    u64 pages = (len + mem::kPageSize - 1) / mem::kPageSize;
    auto& list = free_[pages];
    if (!list.empty()) {
      u64 gpa = list.back();
      list.pop_back();
      return gpa;
    }
    return gm_->AllocPages(pages);
  }

  void Release(u64 gpa, u64 len) {
    u64 pages = (len + mem::kPageSize - 1) / mem::kPageSize;
    free_[pages].push_back(gpa);
  }

 private:
  mem::GuestMemory* gm_;
  std::map<u64, std::vector<u64>> free_;
};

}  // namespace nvmetro::baselines

#include "baselines/factory.h"

#include "common/rng.h"
#include "fault/fault.h"
#include "functions/classifiers.h"

namespace nvmetro::baselines {

const char* SolutionKindName(SolutionKind kind) {
  switch (kind) {
    case SolutionKind::kNvmetro: return "NVMetro";
    case SolutionKind::kMdev: return "MDev";
    case SolutionKind::kPassthrough: return "Passthrough";
    case SolutionKind::kVhostScsi: return "Vhost";
    case SolutionKind::kQemu: return "QEMU";
    case SolutionKind::kSpdk: return "SPDK";
    case SolutionKind::kNvmetroEncryption: return "NVMetro-Encr";
    case SolutionKind::kNvmetroSgx: return "NVMetro-SGX";
    case SolutionKind::kDmCrypt: return "dm-crypt";
    case SolutionKind::kNvmetroReplication: return "NVMetro-Repl";
    case SolutionKind::kDmMirror: return "dm-mirror";
  }
  return "?";
}

SolutionBundle::~SolutionBundle() = default;

namespace {
bool IsNvmetroFamily(SolutionKind k) {
  switch (k) {
    case SolutionKind::kNvmetro:
    case SolutionKind::kMdev:
    case SolutionKind::kNvmetroEncryption:
    case SolutionKind::kNvmetroSgx:
    case SolutionKind::kNvmetroReplication:
      return true;
    default:
      return false;
  }
}

std::unique_ptr<virt::Vm> MakeVm(Testbed* tb, const SolutionParams& p,
                                 u32 idx) {
  virt::VmConfig cfg = p.vm_cfg;
  cfg.name = p.vm_cfg.name + std::to_string(idx);
  return std::make_unique<virt::Vm>(&tb->sim, cfg);
}
}  // namespace

std::unique_ptr<SolutionBundle> SolutionBundle::Create(Testbed* tb,
                                                       SolutionKind kind,
                                                       SolutionParams params) {
  auto bundle = std::unique_ptr<SolutionBundle>(new SolutionBundle());
  SolutionBundle& b = *bundle;
  b.kind_ = kind;
  b.tb_ = tb;
  b.xts_key_ = params.xts_key;
  if (b.xts_key_.empty()) {
    b.xts_key_.resize(64);
    Rng rng(params.seed * 7919 + 13);
    rng.Fill(b.xts_key_.data(), b.xts_key_.size());
  }
  const u64 ns_lbas = tb->phys->ns_block_count(1);
  const u64 part_lbas = ns_lbas / std::max<u32>(1, params.num_vms);

  if (params.fault) tb->phys->SetFaultInjector(params.fault);

  if (IsNvmetroFamily(kind)) {
    core::NvmetroHost::Config host_cfg;
    host_cfg.num_workers = params.router_workers;
    host_cfg.costs = params.router_costs;
    host_cfg.obs = params.obs;
    b.nvmetro_host_ =
        std::make_unique<core::NvmetroHost>(&tb->sim, tb->phys.get(),
                                            host_cfg);
    auto* host = b.nvmetro_host_.get();
    b.host_cpu_fns_.push_back([host] { return host->RouterCpuBusyNs(); });

    // Function-specific shared infrastructure.
    const bool encryption = kind == SolutionKind::kNvmetroEncryption ||
                            kind == SolutionKind::kNvmetroSgx;
    const bool replication = kind == SolutionKind::kNvmetroReplication;
    if (encryption || replication) {
      uif::UifHostParams uif_params;
      uif_params.threads = kind == SolutionKind::kNvmetroSgx ? 1 : 2;
      uif_params.max_batch = params.uif_max_batch;
      uif_params.obs = params.obs;
      b.uif_host_ = std::make_unique<uif::UifHost>(&tb->sim, "uif",
                                                   uif_params);
      auto* uh = b.uif_host_.get();
      b.host_cpu_fns_.push_back([uh] { return uh->TotalCpuBusyNs(); });
    }
    if (encryption || replication) {
      // Encryption UIFs submit ciphertext here; replication stacks use it
      // as the router's kernel path (UIF failover) and as the resync
      // source for degraded replicas.
      b.kernel_dev_ = std::make_unique<kblock::NvmeBlockDevice>(
          &tb->sim, tb->phys.get(), &tb->dma, 1);
    }

    for (u32 i = 0; i < params.num_vms; i++) {
      auto vm = MakeVm(tb, params, i);
      virt::Vm* vm_ptr = vm.get();
      core::VirtualController::Config vc_cfg;
      vc_cfg.vm_id = i + 1;
      vc_cfg.part_first_lba = i * part_lbas;
      vc_cfg.part_nlb = part_lbas;
      auto* vc = host->CreateController(vm_ptr, vc_cfg);
      b.vcs_.push_back(vc);

      if (kind == SolutionKind::kMdev) {
        vc->SetFixedTranslationMode(true);
      } else {
        Result<ebpf::Program> prog =
            encryption   ? functions::EncryptorClassifier()
            : replication ? functions::ReplicatorClassifier()
                          : functions::PassthroughClassifier();
        if (!prog.ok()) return nullptr;
        if (!vc->InstallClassifier(std::move(*prog)).ok()) return nullptr;
      }

      if (b.kernel_dev_) vc->AttachKernelDevice(b.kernel_dev_.get());

      if (encryption) {
        auto channel = std::make_unique<core::NotifyChannel>();
        vc->AttachUif(channel.get());
        std::unique_ptr<uif::UifBase> impl;
        if (kind == SolutionKind::kNvmetroSgx) {
          auto enc = functions::SgxEncryptorUif::Create(
              &tb->sim, b.kernel_dev_.get(), b.xts_key_.data(),
              b.xts_key_.size());
          if (!enc.ok()) return nullptr;
          auto* sgx_uif = enc->get();
          b.uif_host_->AddFunction(channel.get(), vm_ptr, sgx_uif);
          sgx_uif->StartSwitchlessWorker();
          auto* sl_cpu = sgx_uif->switchless_cpu();
          b.host_cpu_fns_.push_back([sl_cpu] { return sl_cpu->busy_ns(); });
          impl = std::move(*enc);
        } else {
          auto enc = functions::EncryptorUif::Create(
              &tb->sim, b.kernel_dev_.get(), b.xts_key_.data(),
              b.xts_key_.size());
          if (!enc.ok()) return nullptr;
          b.uif_host_->AddFunction(channel.get(), vm_ptr, enc->get());
          impl = std::move(*enc);
        }
        b.channels_.push_back(std::move(channel));
        b.uifs_.push_back(std::move(impl));
      } else if (replication) {
        // Per-VM secondary drive on a remote host over NVMe-oF.
        auto sdma = std::make_unique<mem::IommuSpace>(nullptr, 1ull << 40);
        ssd::ControllerConfig scfg;
        scfg.capacity = part_lbas * 512;
        scfg.seed = params.seed + 100 + i;
        scfg.obs = params.obs;
        auto sctrl = std::make_unique<ssd::SimulatedController>(
            &tb->sim, sdma.get(), scfg);
        auto sdev = std::make_unique<kblock::NvmeBlockDevice>(
            &tb->sim, sctrl.get(), sdma.get(), 1);
        auto remote = std::make_unique<kblock::RemoteBlockDevice>(
            &tb->sim, sdev.get());
        auto channel = std::make_unique<core::NotifyChannel>();
        vc->AttachUif(channel.get());
        auto repl = std::make_unique<functions::ReplicatorUif>(
            &tb->sim, remote.get());
        repl->AttachPrimary(b.kernel_dev_.get());
        b.uif_host_->AddFunction(channel.get(), vm_ptr, repl.get());
        if (params.fault) {
          // Order matters: the transport must flip before the replicator
          // hears about a heal, so resync submissions find the link up.
          params.fault->OnLinkChange([r = remote.get()](bool down) {
            r->SetLinkDown(down);
          });
          params.fault->OnLinkChange([u = repl.get()](bool down) {
            u->OnLinkChange(down);
          });
        }
        b.secondary_dmas_.push_back(std::move(sdma));
        b.secondary_ctrls_.push_back(std::move(sctrl));
        b.secondary_devs_.push_back(std::move(sdev));
        b.remote_devs_.push_back(std::move(remote));
        b.channels_.push_back(std::move(channel));
        b.uifs_.push_back(std::move(repl));
      }

      auto sol = std::make_unique<NvmeDriverSolution>(
          tb, std::move(vm), vc, SolutionKindName(kind),
          params.guest_queues);
      if (!sol->Init().ok()) return nullptr;
      b.owned_solutions_.push_back(std::move(sol));
    }
    if (params.fault) {
      for (auto& ch : b.channels_) {
        params.fault->OnUifWedgeChange(
            [c = ch.get()](bool wedged) { c->SetWedged(wedged); });
      }
    }
    host->Start();
    if (b.uif_host_) b.uif_host_->Start();
  } else if (kind == SolutionKind::kPassthrough) {
    for (u32 i = 0; i < params.num_vms; i++) {
      auto vm = MakeVm(tb, params, i);
      virt::Vm* vm_ptr = vm.get();
      b.irq_cpus_.push_back(std::make_unique<sim::VCpu>(
          &tb->sim, "host.irq" + std::to_string(i)));
      auto* irq_cpu = b.irq_cpus_.back().get();
      b.host_cpu_fns_.push_back([irq_cpu] { return irq_cpu->busy_ns(); });
      b.pt_backends_.push_back(std::make_unique<PassthroughBackend>(
          tb, vm_ptr, irq_cpu));
      auto sol = std::make_unique<NvmeDriverSolution>(
          tb, std::move(vm), b.pt_backends_.back().get(),
          SolutionKindName(kind), params.guest_queues);
      if (!sol->Init().ok()) return nullptr;
      b.owned_solutions_.push_back(std::move(sol));
    }
  } else {
    // virtio family: vhost-scsi (+dm variants), QEMU, SPDK.
    for (u32 i = 0; i < params.num_vms; i++) {
      auto vm = MakeVm(tb, params, i);
      virt::Vm* vm_ptr = vm.get();
      VirtioBackend* backend = nullptr;
      u64 capacity = 0;

      switch (kind) {
        case SolutionKind::kVhostScsi:
        case SolutionKind::kDmCrypt:
        case SolutionKind::kDmMirror: {
          b.lower_devs_.push_back(std::make_unique<kblock::NvmeBlockDevice>(
              &tb->sim, tb->phys.get(), &tb->dma, 1));
          kblock::BlockDevice* dev = b.lower_devs_.back().get();
          // The vhost worker kthread is also the submitting context for
          // the dm layer, so its per-bio work lands there.
          b.host_workers_.push_back(std::make_unique<sim::VCpu>(
              &tb->sim, "vhost" + std::to_string(i)));
          sim::VCpu* vhost_worker = b.host_workers_.back().get();
          b.host_cpu_fns_.push_back(
              [vhost_worker] { return vhost_worker->busy_ns(); });
          if (kind == SolutionKind::kDmCrypt) {
            // kcryptd queues work on the submitting CPU; the single vhost
            // worker therefore funnels all crypto through ONE kcryptd —
            // the serialization behind the paper's 3.2-3.7x gap at high
            // parallelism.
            std::vector<sim::VCpu*> workers;
            for (int w = 0; w < 1; w++) {
              b.host_workers_.push_back(std::make_unique<sim::VCpu>(
                  &tb->sim, "kcryptd" + std::to_string(w)));
              workers.push_back(b.host_workers_.back().get());
              auto* wc = workers.back();
              b.host_cpu_fns_.push_back([wc] { return wc->busy_ns(); });
            }
            auto crypt = kblock::DmCrypt::Create(
                &tb->sim, dev, b.xts_key_.data(), b.xts_key_.size(),
                workers);
            if (!crypt.ok()) return nullptr;
            (*crypt)->SetObservability(params.obs);
            b.dm_devs_.push_back(std::move(*crypt));
            dev = b.dm_devs_.back().get();
          } else if (kind == SolutionKind::kDmMirror) {
            auto sdma = std::make_unique<mem::IommuSpace>(nullptr,
                                                          1ull << 40);
            ssd::ControllerConfig scfg;
            scfg.capacity = tb->phys->config().capacity;
            scfg.seed = params.seed + 200 + i;
            scfg.obs = params.obs;
            auto sctrl = std::make_unique<ssd::SimulatedController>(
                &tb->sim, sdma.get(), scfg);
            auto sdev = std::make_unique<kblock::NvmeBlockDevice>(
                &tb->sim, sctrl.get(), sdma.get(), 1);
            auto remote = std::make_unique<kblock::RemoteBlockDevice>(
                &tb->sim, sdev.get());
            // The mirror layer's work runs in the submitting (vhost)
            // context; the worker is created below and patched in.
            auto mirror = std::make_unique<kblock::DmMirror>(
                dev, remote.get(), /*read_balance=*/true, vhost_worker);
            mirror->SetObservability(params.obs);
            b.dm_devs_.push_back(std::move(mirror));
            b.secondary_dmas_.push_back(std::move(sdma));
            b.secondary_ctrls_.push_back(std::move(sctrl));
            b.secondary_devs_.push_back(std::move(sdev));
            b.remote_devs_.push_back(std::move(remote));
            dev = b.dm_devs_.back().get();
          }
          b.vhost_backends_.push_back(
              std::make_unique<kblock::VhostScsiBackend>(&tb->sim,
                                                         vhost_worker, dev));
          b.vhost_adapters_.push_back(std::make_unique<VhostScsiAdapter>(
              b.vhost_backends_.back().get(), vm_ptr));
          backend = b.vhost_adapters_.back().get();
          capacity = dev->capacity_sectors() * 512;
          break;
        }
        case SolutionKind::kQemu: {
          b.lower_devs_.push_back(std::make_unique<kblock::NvmeBlockDevice>(
              &tb->sim, tb->phys.get(), &tb->dma, 1));
          b.qemu_.push_back(std::make_unique<QemuBackend>(
              tb, vm_ptr, b.lower_devs_.back().get()));
          auto* q = b.qemu_.back().get();
          b.host_cpu_fns_.push_back([q] { return q->HostCpuNs(); });
          backend = q;
          capacity = b.lower_devs_.back()->capacity_sectors() * 512;
          break;
        }
        case SolutionKind::kSpdk: {
          b.spdk_.push_back(std::make_unique<SpdkBackend>(tb, vm_ptr));
          auto* s = b.spdk_.back().get();
          s->Start();
          b.host_cpu_fns_.push_back([s] { return s->HostCpuNs(); });
          backend = s;
          capacity = tb->phys->ns_block_count(1) * 512;
          break;
        }
        default:
          return nullptr;
      }
      b.owned_solutions_.push_back(std::make_unique<VirtioSolution>(
          tb, std::move(vm), backend, SolutionKindName(kind), capacity));
    }
  }

  for (auto& s : b.owned_solutions_) {
    // Host-agent CPU is accounted at bundle level (agents are shared
    // between this bundle's VMs); each solution reports the bundle sum.
    s->SetHostCpuFn([bp = bundle.get()] { return bp->HostAgentCpuNs(); });
    b.solutions_.push_back(s.get());
  }
  return bundle;
}

u64 SolutionBundle::HostAgentCpuNs() const {
  u64 sum = 0;
  for (const auto& fn : host_cpu_fns_) sum += fn();
  return sum;
}

}  // namespace nvmetro::baselines

#include "baselines/solutions.h"

#include <cstring>

#include "kblock/scsi.h"

namespace nvmetro::baselines {

namespace {
constexpr u32 kSector = 512;

Status StatusFromNvme(nvme::NvmeStatus st) {
  return nvme::StatusOk(st) ? OkStatus() : Internal(nvme::StatusName(st));
}
}  // namespace

// --- NvmeDriverSolution ---------------------------------------------------------

NvmeDriverSolution::NvmeDriverSolution(Testbed* tb,
                                       std::unique_ptr<virt::Vm> vm,
                                       virt::VirtualNvmeBackend* backend,
                                       std::string name, u32 queues)
    : VmSolutionBase(tb, std::move(vm)),
      backend_(backend),
      name_(std::move(name)),
      queues_(queues) {
  driver_ = std::make_unique<virt::GuestNvmeDriver>(vm_.get(), backend_);
}

void NvmeDriverSolution::Submit(u32 job, Op op, u64 offset_bytes, u64 len,
                                void* data,
                                std::function<void(Status)> done) {
  u32 queue = job % driver_->num_queues();
  if (op == Op::kFlush) {
    driver_->Submit(queue, nvme::MakeFlush(1),
                    [done = std::move(done)](nvme::NvmeStatus st, u32) {
                      done(StatusFromNvme(st));
                    });
    return;
  }
  mem::GuestMemory& gm = vm_->memory();
  auto buf = pool_.Acquire(len);
  if (!buf.ok()) {
    done(buf.status());
    return;
  }
  u64 gpa = *buf;
  if (op == Op::kWrite && data) {
    Status st = gm.Write(gpa, data, len);
    if (!st.ok()) {
      pool_.Release(gpa, len);
      done(st);
      return;
    }
  }
  auto chain = nvme::BuildPrps(gm, gpa, len);
  if (!chain.ok()) {
    pool_.Release(gpa, len);
    done(chain.status());
    return;
  }
  nvme::Sqe sqe;
  sqe.opcode = op == Op::kRead ? nvme::kCmdRead : nvme::kCmdWrite;
  sqe.nsid = 1;
  sqe.set_slba(offset_bytes / kSector);
  sqe.set_nlb0(static_cast<u16>(len / kSector - 1));
  sqe.prp1 = chain->prp1;
  sqe.prp2 = chain->prp2;
  auto chain_val = *chain;
  driver_->Submit(
      queue, sqe,
      [this, op, gpa, len, data, chain_val,
       done = std::move(done)](nvme::NvmeStatus st, u32) {
        if (op == Op::kRead && data && nvme::StatusOk(st)) {
          vm_->memory().Read(gpa, data, len);
        }
        nvme::FreePrpChain(vm_->memory(), chain_val);
        pool_.Release(gpa, len);
        done(StatusFromNvme(st));
      });
}

// --- PassthroughBackend ---------------------------------------------------------

PassthroughBackend::PassthroughBackend(Testbed* tb, virt::Vm* vm,
                                       sim::VCpu* host_irq_cpu,
                                       PassthroughCosts costs)
    : tb_(tb), vm_(vm), host_irq_cpu_(host_irq_cpu), costs_(costs) {}

Status PassthroughBackend::AttachQueuePair(u16 qid, nvme::SqRing* sq,
                                           nvme::CqRing* cq, u64 /*sq_gpa*/,
                                           u64 /*cq_gpa*/) {
  usize idx = queues_.size();
  auto host_qid = tb_->phys->AttachSharedQueuePair(
      sq, cq, [this, idx] { ForwardIrq(idx); }, &vm_->memory());
  if (!host_qid.ok()) return host_qid.status();
  queues_.push_back(Queue{qid, *host_qid, nullptr, false});
  return OkStatus();
}

void PassthroughBackend::ForwardIrq(usize idx) {
  Queue& q = queues_[idx];
  if (q.irq_pending) return;  // interrupt coalescing in flight
  q.irq_pending = true;
  SimTime latency = sim::WakePenalty(*host_irq_cpu_,
                                     costs_.irq_forward_warm_ns,
                                     costs_.irq_forward_cold_ns);
  host_irq_cpu_->Run(costs_.irq_forward_cpu_ns, [this, idx, latency] {
    tb_->sim.ScheduleAfter(latency, [this, idx] {
      Queue& queue = queues_[idx];
      queue.irq_pending = false;
      if (queue.irq) queue.irq();
    });
  });
}

SimTime PassthroughBackend::SqDoorbell(u16 qid) {
  for (auto& q : queues_) {
    if (q.guest_qid == qid) {
      tb_->phys->RingSqDoorbell(q.host_qid);
      break;
    }
  }
  return costs_.doorbell_ns;
}

void PassthroughBackend::CqDoorbell(u16 qid) {
  for (auto& q : queues_) {
    if (q.guest_qid == qid) {
      tb_->phys->RingCqDoorbell(q.host_qid);
      break;
    }
  }
}

void PassthroughBackend::SetIrqHandler(u16 qid,
                                       std::function<void()> handler) {
  for (auto& q : queues_) {
    if (q.guest_qid == qid) {
      q.irq = std::move(handler);
      return;
    }
  }
}

u64 PassthroughBackend::CapacityBytes() const {
  return tb_->phys->ns_block_count(1) * tb_->phys->lba_size();
}

// --- VirtioSolution --------------------------------------------------------------

VirtioSolution::VirtioSolution(Testbed* tb, std::unique_ptr<virt::Vm> vm,
                               VirtioBackend* backend, std::string name,
                               u64 capacity_bytes)
    : VmSolutionBase(tb, std::move(vm)),
      name_(std::move(name)),
      capacity_(capacity_bytes) {
  driver_ = std::make_unique<VirtioGuestDriver>(vm_.get(), backend);
}

void VirtioSolution::Submit(u32 job, Op op, u64 offset_bytes, u64 len,
                            void* data, std::function<void(Status)> done) {
  VirtioRequest req;
  req.op = op;
  if (op == Op::kFlush) {
    req.done = std::move(done);
    driver_->Submit(job, std::move(req));
    return;
  }
  mem::GuestMemory& gm = vm_->memory();
  auto buf = pool_.Acquire(len);
  if (!buf.ok()) {
    done(buf.status());
    return;
  }
  u64 gpa = *buf;
  if (op == Op::kWrite && data) {
    Status st = gm.Write(gpa, data, len);
    if (!st.ok()) {
      pool_.Release(gpa, len);
      done(st);
      return;
    }
  }
  req.sector = offset_bytes / kSector;
  req.len = len;
  req.segments = {{gpa, len}};
  req.done = [this, op, gpa, len, data,
              done = std::move(done)](Status st) {
    if (op == Op::kRead && data && st.ok()) {
      vm_->memory().Read(gpa, data, len);
    }
    pool_.Release(gpa, len);
    done(st);
  };
  driver_->Submit(job, std::move(req));
}

// --- VhostScsiAdapter ------------------------------------------------------------

void VhostScsiAdapter::Enqueue(VirtioRequest req) {
  kblock::VhostScsiBackend::Request out;
  switch (req.op) {
    case StorageSolution::Op::kRead:
      out.cdb = kblock::scsi::BuildRead16(req.sector,
                                          static_cast<u32>(req.len / 512));
      break;
    case StorageSolution::Op::kWrite:
      out.cdb = kblock::scsi::BuildWrite16(req.sector,
                                           static_cast<u32>(req.len / 512));
      break;
    case StorageSolution::Op::kFlush:
      out.cdb = kblock::scsi::BuildSynchronizeCache16();
      break;
  }
  for (const auto& seg : req.segments) {
    u8* p = vm_->memory().Translate(seg.gpa, seg.len);
    out.segments.push_back({p, seg.len});
  }
  out.done = [done = std::move(req.done)](u8 status, u8 /*sense*/) {
    done(status == kblock::scsi::kGood
             ? OkStatus()
             : Internal("SCSI CHECK CONDITION"));
  };
  backend_->Enqueue(std::move(out));
}

// --- PageCache --------------------------------------------------------------------

namespace {
constexpr u64 kCachePage = 4096;
}

PageCache::PageCache(u64 capacity_bytes, u64 readahead_bytes)
    : capacity_pages_(capacity_bytes / kCachePage),
      readahead_(readahead_bytes) {}

bool PageCache::ContainsRange(u64 offset, u64 len) const {
  u64 first = offset / kCachePage;
  u64 last = (offset + len - 1) / kCachePage;
  for (u64 p = first; p <= last; p++) {
    if (!pages_.count(p)) return false;
  }
  return true;
}

void PageCache::CopyOut(u64 offset, u8* dst, u64 len) const {
  u64 remaining = len;
  while (remaining > 0) {
    u64 page = offset / kCachePage;
    u64 in_page = offset % kCachePage;
    u64 n = std::min(remaining, kCachePage - in_page);
    auto it = pages_.find(page);
    std::memcpy(dst, it->second.data.get() + in_page, n);
    dst += n;
    offset += n;
    remaining -= n;
  }
}

void PageCache::Touch(u64 page_idx) {
  auto it = pages_.find(page_idx);
  if (it == pages_.end()) return;
  lru_.erase(it->second.lru_it);
  lru_.push_front(page_idx);
  it->second.lru_it = lru_.begin();
}

void PageCache::InsertPage(u64 page_idx, const u8* data) {
  auto it = pages_.find(page_idx);
  if (it != pages_.end()) {
    std::memcpy(it->second.data.get(), data, kCachePage);
    Touch(page_idx);
    return;
  }
  while (pages_.size() >= capacity_pages_ && !lru_.empty()) {
    u64 victim = lru_.back();
    lru_.pop_back();
    pages_.erase(victim);
  }
  Page page;
  page.data = std::make_unique<u8[]>(kCachePage);
  std::memcpy(page.data.get(), data, kCachePage);
  lru_.push_front(page_idx);
  page.lru_it = lru_.begin();
  pages_.emplace(page_idx, std::move(page));
}

void PageCache::Invalidate(u64 offset, u64 len) {
  u64 first = offset / kCachePage;
  u64 last = (offset + len - 1) / kCachePage;
  for (u64 p = first; p <= last; p++) {
    auto it = pages_.find(p);
    if (it != pages_.end()) {
      lru_.erase(it->second.lru_it);
      pages_.erase(it);
    }
  }
}

void PageCache::Insert(u64 offset, const u8* data, u64 len) {
  // Only whole pages are cached; partial edges are skipped (they would
  // need read-modify-write as in a real cache; the workloads here are
  // block-aligned so this rarely triggers).
  u64 end = offset + len;
  u64 page = (offset + kCachePage - 1) / kCachePage;
  while ((page + 1) * kCachePage <= end) {
    InsertPage(page, data + (page * kCachePage - offset));
    page++;
  }
}

std::pair<u64, u64> PageCache::NextReadahead(u64 offset, u64 len,
                                             u64 device_cap) {
  bool sequential = offset == next_expected_;
  next_expected_ = offset + len;
  if (!sequential) {
    ra_done_until_ = 0;
    return {0, 0};
  }
  u64 start = std::max(offset + len, ra_done_until_);
  u64 end = std::min(offset + len + readahead_, device_cap);
  if (start >= end) return {0, 0};
  ra_done_until_ = end;
  return {start, end - start};
}

// --- QemuBackend ------------------------------------------------------------------

QemuBackend::QemuBackend(Testbed* tb, virt::Vm* vm,
                         kblock::BlockDevice* lower, QemuCosts costs)
    : tb_(tb),
      vm_(vm),
      lower_(lower),
      costs_(costs),
      iothread_(&tb->sim, "qemu.iothread"),
      cache_(costs.page_cache_bytes, costs.readahead_bytes) {}

void QemuBackend::Enqueue(VirtioRequest req) {
  vring_.push_back(std::move(req));
}

void QemuBackend::Kick() {
  if (active_) return;
  active_ = true;
  SimTime wake = sim::WakePenalty(iothread_, costs_.iothread_wake_warm_ns,
                                  costs_.iothread_wake_cold_ns);
  // Wakeups are not free: ppoll return, scheduler, main-loop dispatch.
  iothread_.Charge(wake / 4);
  tb_->sim.ScheduleAfter(wake, [this] { IoThreadLoop(); });
}

void QemuBackend::IoThreadLoop() {
  if (vring_.empty()) {
    active_ = false;
    return;
  }
  VirtioRequest req = std::move(vring_.front());
  vring_.pop_front();
  iothread_.Run(costs_.per_req_cpu_ns,
                [this, req = std::move(req)]() mutable {
                  Serve(std::move(req));
                  IoThreadLoop();
                });
}

void QemuBackend::Serve(VirtioRequest req) {
  auto complete = [this, done = req.done](Status st) {
    // Reaping a uring completion wakes the iothread again.
    SimTime wake = sim::WakePenalty(iothread_, costs_.iothread_wake_warm_ns,
                                    costs_.iothread_wake_cold_ns);
    iothread_.Charge(wake / 4);
    tb_->sim.ScheduleAfter(wake, [this, done, st] {
      iothread_.Run(costs_.per_cpl_cpu_ns, [this, done, st] {
        tb_->sim.ScheduleAfter(costs_.irq_latency_ns,
                               [done, st] { done(st); });
      });
    });
  };
  u64 offset = req.sector * kSector;
  u64 len = req.len;

  switch (req.op) {
    case StorageSolution::Op::kFlush: {
      lower_->Submit(kblock::Bio::Flush(complete));
      return;
    }
    case StorageSolution::Op::kWrite: {
      // Write-through with drop-behind: written data is not retained
      // (memory pressure; the guest has its own caches), and any stale
      // cached copy of the range is invalidated for coherence.
      u8* host = vm_->memory().Translate(req.segments[0].gpa, len);
      cache_.Invalidate(offset, len);
      iothread_.Charge(costs_.uring_submit_ns);
      lower_->Submit(kblock::Bio::Write(req.sector, host, len, complete));
      return;
    }
    case StorageSolution::Op::kRead: {
      u8* host = vm_->memory().Translate(req.segments[0].gpa, len);
      if (cache_.ContainsRange(offset, len)) {
        cache_.CountLookup(true);
        cache_.CopyOut(offset, host, len);
        auto copy_cost = static_cast<SimTime>(
            static_cast<double>(len) * costs_.cache_copy_ns_per_byte);
        iothread_.Run(copy_cost, [complete] { complete(OkStatus()); });
        return;
      }
      cache_.CountLookup(false);
      // Page-cache page locking: a read inside an in-flight demand fetch
      // waits for that fetch instead of issuing a duplicate device read.
      for (auto& fl : inflight_) {
        if (offset >= fl->offset && offset + len <= fl->offset + fl->len) {
          fl->waiters.push_back({offset, host, len, complete});
          return;
        }
      }
      iothread_.Charge(costs_.uring_submit_ns);
      // Demand fetch with readahead: one large buffered read covers the
      // request and (for sequential streams) the window ahead of it, as
      // the Linux page cache does — larger device commands also use the
      // drive's bandwidth more efficiently.
      bool sequential = offset == stream_next_;
      u64 device_cap = lower_->capacity_sectors() * kSector;
      u64 fetch_len = len;
      if (sequential) {
        fetch_len = std::min(len + costs_.readahead_bytes,
                             device_cap - offset);
      }
      stream_next_ = offset + fetch_len;
      auto fl = std::make_unique<InflightFetch>();
      fl->offset = offset;
      fl->len = fetch_len;
      InflightFetch* flp = fl.get();
      inflight_.push_back(std::move(fl));
      auto buf = std::make_shared<std::vector<u8>>(fetch_len);
      lower_->Submit(kblock::Bio::Read(
          offset / kSector, buf->data(), fetch_len,
          [this, flp, buf, offset, host, len, complete](Status st) {
            if (st.ok()) {
              cache_.Insert(offset, buf->data(), buf->size());
              std::memcpy(host, buf->data() + 0, len);
            }
            complete(st);
            // Serve the readers that piled onto this window.
            for (auto& w : flp->waiters) {
              if (st.ok()) {
                std::memcpy(w.host, buf->data() + (w.offset - offset),
                            w.len);
                auto copy_cost = static_cast<SimTime>(
                    static_cast<double>(w.len) *
                    costs_.cache_copy_ns_per_byte);
                auto wc = w.complete;
                iothread_.Run(copy_cost, [wc] { wc(OkStatus()); });
              } else {
                w.complete(st);
              }
            }
            for (usize i = 0; i < inflight_.size(); i++) {
              if (inflight_[i].get() == flp) {
                inflight_.erase(inflight_.begin() + i);
                break;
              }
            }
          }));
      return;
    }
  }
}

// --- SpdkBackend ------------------------------------------------------------------

SpdkBackend::SpdkBackend(Testbed* tb, virt::Vm* vm, SpdkCosts costs)
    : tb_(tb),
      vm_(vm),
      costs_(costs),
      guest_dma_(&vm->memory(), std::max<u64>(vm->memory().size(), 4 * GiB)) {
  for (u32 i = 0; i < std::max<u32>(1, costs_.reactors); i++) {
    reactors_.push_back(std::make_unique<sim::VCpu>(
        &tb_->sim, "spdk.reactor" + std::to_string(i)));
  }
  sim::Poller::Options opts;
  opts.dispatch_cost = 90;
  opts.adaptive = false;  // SPDK reactors spin
  poller_ = std::make_unique<sim::Poller>(&tb_->sim, reactors_[0].get(),
                                          opts);
  src_ring_ = poller_->AddSource([this] { ServeOne(); });
  src_cq_ = poller_->AddSource([this] { OnDeviceCq(); });
  auto qid = tb_->phys->CreateIoQueuePair(
      256, [this] { poller_->Notify(src_cq_); }, &guest_dma_);
  qid_ = qid.ok() ? *qid : 0;
}

void SpdkBackend::Start() {
  poller_->Start();
  // Additional reactors spin too (SPDK dedicates cores), contributing to
  // the highest CPU consumption among the solutions (paper Fig. 11).
  for (usize i = 1; i < reactors_.size(); i++) {
    reactors_[i]->SetPolling(true);
  }
}

u64 SpdkBackend::HostCpuNs() const {
  u64 sum = 0;
  for (const auto& r : reactors_) sum += r->busy_ns();
  return sum;
}

void SpdkBackend::Enqueue(VirtioRequest req) {
  vring_.push_back(std::move(req));
  poller_->Notify(src_ring_);
}

void SpdkBackend::ServeOne() {
  if (vring_.empty()) return;
  VirtioRequest req = std::move(vring_.front());
  vring_.pop_front();
  reactors_[0]->Charge(costs_.per_req_cpu_ns);

  nvme::Sqe sqe;
  sqe.nsid = 1;
  Pending p;
  switch (req.op) {
    case StorageSolution::Op::kFlush:
      sqe.opcode = nvme::kCmdFlush;
      break;
    case StorageSolution::Op::kRead:
    case StorageSolution::Op::kWrite: {
      sqe.opcode = req.op == StorageSolution::Op::kRead ? nvme::kCmdRead
                                                        : nvme::kCmdWrite;
      sqe.set_slba(req.sector);
      sqe.set_nlb0(static_cast<u16>(req.len / kSector - 1));
      // PRPs straight over guest memory (vhost-user shared memory); a
      // list page lives in SPDK's own mapping when needed.
      std::vector<u64> entries;
      for (const auto& seg : req.segments) {
        for (u64 off = 0; off < seg.len; off += mem::kPageSize) {
          entries.push_back(seg.gpa + off);
        }
      }
      sqe.prp1 = entries[0];
      if (entries.size() == 2) {
        sqe.prp2 = entries[1];
      } else if (entries.size() > 2) {
        p.list_page =
            std::make_unique<std::vector<u8>>(mem::kPageSize, 0);
        std::memcpy(p.list_page->data(), entries.data() + 1,
                    (entries.size() - 1) * sizeof(u64));
        u64 win = guest_dma_.MapHostBuffer(p.list_page->data(),
                                           mem::kPageSize);
        p.windows.push_back(win);
        sqe.prp2 = win;
      }
      break;
    }
  }
  u16 cid;
  do {
    cid = next_cid_++;
  } while (pending_.count(cid) || cid == 0);
  sqe.cid = cid;
  p.req = std::move(req);
  if (!tb_->phys->Submit(qid_, sqe)) {
    for (u64 w : p.windows) guest_dma_.Unmap(w);
    p.req.done(ResourceExhausted("spdk device queue full"));
    return;
  }
  pending_.emplace(cid, std::move(p));
}

void SpdkBackend::OnDeviceCq() {
  auto* cq = tb_->phys->cq(qid_);
  if (!cq) return;
  nvme::Cqe cqe;
  if (!cq->Peek(&cqe)) return;
  cq->Pop();
  cq->PublishHead();
  tb_->phys->RingCqDoorbell(qid_);
  reactors_[0]->Charge(costs_.per_cpl_cpu_ns);
  auto it = pending_.find(cqe.cid);
  if (it != pending_.end()) {
    Pending p = std::move(it->second);
    pending_.erase(it);
    for (u64 w : p.windows) guest_dma_.Unmap(w);
    Status st = StatusFromNvme(cqe.status());
    tb_->sim.ScheduleAfter(costs_.irq_latency_ns,
                           [done = std::move(p.req.done), st] { done(st); });
  }
  if (!cq->Empty()) poller_->Notify(src_cq_);
}

}  // namespace nvmetro::baselines

// Transparent disk-encryption UIFs (paper §IV-A).
//
// EncryptorUif decrypts device data in place after reads and encrypts
// guest data into a temporary buffer on writes, writing the ciphertext to
// disk itself with io_uring (Listing 2). The on-disk format is XTS-AES
// with plain64 sector tweaks over guest-relative sectors — byte-identical
// to our dm-crypt target, so disks are interchangeable between the two
// (tested both directions).
//
// SgxEncryptorUif keeps the key inside a (simulated) SGX enclave and uses
// switchless calls serviced by a dedicated enclave worker thread: same
// classifier, ~same data path, different cost structure ("1 worker + 1
// SGX switchless thread", §V-C).
#pragma once

#include <memory>

#include "kblock/bio.h"
#include "sgx/enclave.h"
#include "sim/vcpu.h"
#include "uif/framework.h"
#include "uif/uring.h"

namespace nvmetro::functions {

struct EncryptorParams {
  /// AES-NI XTS throughput on the UIF threads, ns per byte (~2.9 GB/s
  /// per thread: a tight userspace loop over contiguous buffers, vs the
  /// kernel's sector-at-a-time scatterwalk in dm-crypt).
  double aes_ns_per_byte = 0.35;
  /// Per-request bookkeeping cost.
  SimTime per_req_ns = 300;
};

class EncryptorUif : public uif::UifBase {
 public:
  /// `disk` is the backend-namespace block device ciphertext is written
  /// to (namespace-absolute sectors). The XTS key is 32 or 64 bytes.
  static Result<std::unique_ptr<EncryptorUif>> Create(
      sim::Simulator* sim, kblock::BlockDevice* disk, const u8* xts_key,
      usize key_len, EncryptorParams params = EncryptorParams());

  bool work(const nvme::Sqe& cmd, u32 tag, u16& status) override;

  u64 reads_decrypted() const { return reads_; }
  u64 writes_encrypted() const { return writes_; }

 private:
  EncryptorUif(sim::Simulator* sim, kblock::BlockDevice* disk,
               crypto::XtsCipher cipher, EncryptorParams params)
      : sim_(sim), disk_(disk), cipher_(std::move(cipher)),
        params_(params) {}

  uif::Uring* EnsureUring();
  SimTime CryptoCost(u64 bytes) const {
    return params_.per_req_ns +
           static_cast<SimTime>(static_cast<double>(bytes) *
                                params_.aes_ns_per_byte);
  }

  sim::Simulator* sim_;
  kblock::BlockDevice* disk_;
  crypto::XtsCipher cipher_;
  EncryptorParams params_;
  std::unique_ptr<uif::Uring> uring_;
  u64 reads_ = 0;
  u64 writes_ = 0;
};

struct SgxEncryptorParams {
  sgx::EnclaveParams enclave{};
  SimTime per_req_ns = 300;
  /// Use switchless calls (the paper's configuration) instead of regular
  /// ECALLs.
  bool switchless = true;
  /// The switchless worker parks after this long without calls.
  SimTime worker_idle_ns = 25 * kUs;
};

class SgxEncryptorUif : public uif::UifBase {
 public:
  /// The key is sealed into the enclave; this class never holds it.
  static Result<std::unique_ptr<SgxEncryptorUif>> Create(
      sim::Simulator* sim, kblock::BlockDevice* disk, const u8* xts_key,
      usize key_len, SgxEncryptorParams params = SgxEncryptorParams());

  bool work(const nvme::Sqe& cmd, u32 tag, u16& status) override;

  /// Enables the switchless worker. Like Intel's SDK, the worker spins
  /// only while calls keep arriving; after an idle window it parks and
  /// the next call takes the regular-ECALL path (which re-arms it).
  void StartSwitchlessWorker();

  sgx::Enclave* enclave() { return enclave_.get(); }
  /// The dedicated switchless worker thread (CPU accounting).
  sim::VCpu* switchless_cpu() { return switchless_cpu_.get(); }

 private:
  SgxEncryptorUif(sim::Simulator* sim, kblock::BlockDevice* disk,
                  std::unique_ptr<sgx::Enclave> enclave,
                  SgxEncryptorParams params);

  uif::Uring* EnsureUring();

  /// Marks switchless-worker activity; returns true when the worker was
  /// already awake (call can go switchless).
  bool TouchSwitchlessWorker();

  sim::Simulator* sim_;
  kblock::BlockDevice* disk_;
  std::unique_ptr<sgx::Enclave> enclave_;
  SgxEncryptorParams params_;
  std::unique_ptr<sim::VCpu> switchless_cpu_;
  bool switchless_enabled_ = false;
  bool worker_polling_ = false;
  u64 worker_stamp_ = 0;
  std::unique_ptr<uif::Uring> uring_;
};

}  // namespace nvmetro::functions

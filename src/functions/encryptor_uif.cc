#include "functions/encryptor_uif.h"

#include <cstring>

#include "crypto/xts.h"

namespace nvmetro::functions {

using crypto::kXtsSectorSize;

// --- EncryptorUif --------------------------------------------------------------

Result<std::unique_ptr<EncryptorUif>> EncryptorUif::Create(
    sim::Simulator* sim, kblock::BlockDevice* disk, const u8* xts_key,
    usize key_len, EncryptorParams params) {
  auto cipher = crypto::XtsCipher::Create(xts_key, key_len);
  if (!cipher.ok()) return cipher.status();
  return std::unique_ptr<EncryptorUif>(
      new EncryptorUif(sim, disk, std::move(*cipher), params));
}

uif::Uring* EncryptorUif::EnsureUring() {
  if (!uring_) {
    uring_ = std::make_unique<uif::Uring>(sim_, disk_,
                                          function()->host()->poll_cpu());
  }
  return uring_.get();
}

bool EncryptorUif::work(const nvme::Sqe& cmd, u32 tag, u16& status) {
  switch (cmd.opcode) {
    case nvme::kCmdRead: {
      // Ciphertext was read into guest pages by the device; decrypt it
      // in place, tweaked with the guest-relative sector number so the
      // format matches dm-crypt on the same partition.
      uif::GuestData data = function()->Parse(cmd);
      if (!data.ok()) {
        status = nvme::MakeStatus(nvme::kSctGeneric,
                                  nvme::kScDataTransferError);
        return false;
      }
      u64 part = function()->part_first_lba();
      for (uif::GuestData it = data; !it.at_end(); it++) {
        u8* block = *it;
        if (!block) {
          status = nvme::MakeStatus(nvme::kSctGeneric,
                                    nvme::kScDataTransferError);
          return false;
        }
        cipher_.DecryptSector(it.lba() - part, block, block,
                              kXtsSectorSize);
      }
      reads_++;
      // Respond once the (modeled) decryption work has run.
      function()->host()->Async(CryptoCost(data.nbytes()),
                                [fn = function(), tag] {
                                  fn->Respond(tag, nvme::kStatusSuccess);
                                });
      return true;
    }
    case nvme::kCmdWrite: {
      uif::GuestData data = function()->Parse(cmd);
      if (!data.ok()) {
        status = nvme::MakeStatus(nvme::kSctGeneric,
                                  nvme::kScDataTransferError);
        return false;
      }
      // Encrypt plaintext from the guest into a temporary buffer
      // (Listing 2 do_write_async), then write ciphertext with io_uring.
      auto ticket = std::make_unique<uif::IovecTicket>();
      ticket->tag = tag;
      auto buf = std::make_shared<std::vector<u8>>(data.nbytes());
      u64 part = function()->part_first_lba();
      for (uif::GuestData it = data; !it.at_end(); it++) {
        const u8* block = *it;
        if (!block) {
          status = nvme::MakeStatus(nvme::kSctGeneric,
                                    nvme::kScDataTransferError);
          return false;
        }
        cipher_.EncryptSector(it.lba() - part, block,
                              buf->data() + it.block_offset(),
                              kXtsSectorSize);
      }
      writes_++;
      ticket->iovecs.push_back({buf->data(), buf->size()});
      ticket->done = [fn = function(), tag, buf](Status st) {
        fn->Respond(tag, st.ok()
                             ? nvme::kStatusSuccess
                             : nvme::MakeStatus(nvme::kSctMediaError,
                                                nvme::kScWriteFault));
      };
      u64 sector = data.disk_addr();  // namespace-absolute (translated)
      uif::Uring* ring = EnsureUring();
      function()->host()->Async(
          CryptoCost(data.nbytes()),
          [ring, t = ticket.release(), sector]() mutable {
            ring->QueueWritev(std::unique_ptr<uif::IovecTicket>(t), sector);
          });
      return true;
    }
    default:
      status = nvme::MakeStatus(nvme::kSctGeneric, nvme::kScInvalidOpcode);
      return false;
  }
}

// --- SgxEncryptorUif ------------------------------------------------------------

SgxEncryptorUif::SgxEncryptorUif(sim::Simulator* sim,
                                 kblock::BlockDevice* disk,
                                 std::unique_ptr<sgx::Enclave> enclave,
                                 SgxEncryptorParams params)
    : sim_(sim), disk_(disk), enclave_(std::move(enclave)), params_(params) {
  if (params_.switchless) {
    switchless_cpu_ =
        std::make_unique<sim::VCpu>(sim_, "sgx.switchless");
  }
}

Result<std::unique_ptr<SgxEncryptorUif>> SgxEncryptorUif::Create(
    sim::Simulator* sim, kblock::BlockDevice* disk, const u8* xts_key,
    usize key_len, SgxEncryptorParams params) {
  auto enclave = sgx::Enclave::Create(xts_key, key_len, params.enclave);
  if (!enclave.ok()) return enclave.status();
  return std::unique_ptr<SgxEncryptorUif>(new SgxEncryptorUif(
      sim, disk, std::move(*enclave), params));
}

void SgxEncryptorUif::StartSwitchlessWorker() {
  switchless_enabled_ = switchless_cpu_ != nullptr;
}

bool SgxEncryptorUif::TouchSwitchlessWorker() {
  if (!switchless_enabled_) return false;
  bool was_awake = worker_polling_;
  if (!worker_polling_) {
    switchless_cpu_->SetPolling(true);
    worker_polling_ = true;
  }
  u64 stamp = ++worker_stamp_;
  sim_->ScheduleAfter(params_.worker_idle_ns, [this, stamp] {
    if (stamp == worker_stamp_ && worker_polling_) {
      switchless_cpu_->SetPolling(false);
      worker_polling_ = false;
    }
  });
  return was_awake;
}

uif::Uring* SgxEncryptorUif::EnsureUring() {
  if (!uring_) {
    uring_ = std::make_unique<uif::Uring>(sim_, disk_,
                                          function()->host()->poll_cpu());
  }
  return uring_.get();
}

bool SgxEncryptorUif::work(const nvme::Sqe& cmd, u32 tag, u16& status) {
  // Switchless only when the worker is already spinning; a call arriving
  // at a parked worker takes the regular-ECALL path and re-arms it
  // (Intel SDK switchless fallback semantics).
  const bool sl = params_.switchless && switchless_cpu_ != nullptr &&
                  TouchSwitchlessWorker();
  switch (cmd.opcode) {
    case nvme::kCmdRead: {
      uif::GuestData data = function()->Parse(cmd);
      if (!data.ok()) {
        status = nvme::MakeStatus(nvme::kSctGeneric,
                                  nvme::kScDataTransferError);
        return false;
      }
      u64 part = function()->part_first_lba();
      for (uif::GuestData it = data; !it.at_end(); it++) {
        u8* block = *it;
        if (!block) {
          status = nvme::MakeStatus(nvme::kSctGeneric,
                                    nvme::kScDataTransferError);
          return false;
        }
        // Per-block data transform; the call cost is charged once per
        // request below (real UIFs make one ECALL per command).
        sl ? enclave_->SwitchlessDecrypt(it.lba() - part, block, block,
                                         kXtsSectorSize)
           : enclave_->EcallDecrypt(it.lba() - part, block, block,
                                    kXtsSectorSize);
      }
      sgx::EcallCost total = enclave_->CallCost(sl, data.nbytes());
      auto respond = [fn = function(), tag] {
        fn->Respond(tag, nvme::kStatusSuccess);
      };
      if (sl) {
        // Caller posts the call; the enclave worker does the crypto.
        function()->host()->PickWorker()->Charge(params_.per_req_ns +
                                                 total.caller_ns);
        switchless_cpu_->Run(total.enclave_ns, respond);
      } else {
        function()->host()->Async(
            params_.per_req_ns + total.caller_ns + total.enclave_ns,
            respond);
      }
      return true;
    }
    case nvme::kCmdWrite: {
      uif::GuestData data = function()->Parse(cmd);
      if (!data.ok()) {
        status = nvme::MakeStatus(nvme::kSctGeneric,
                                  nvme::kScDataTransferError);
        return false;
      }
      auto ticket = std::make_unique<uif::IovecTicket>();
      ticket->tag = tag;
      auto buf = std::make_shared<std::vector<u8>>(data.nbytes());
      u64 part = function()->part_first_lba();
      for (uif::GuestData it = data; !it.at_end(); it++) {
        const u8* block = *it;
        if (!block) {
          status = nvme::MakeStatus(nvme::kSctGeneric,
                                    nvme::kScDataTransferError);
          return false;
        }
        sl ? enclave_->SwitchlessEncrypt(it.lba() - part, block,
                                         buf->data() + it.block_offset(),
                                         kXtsSectorSize)
           : enclave_->EcallEncrypt(it.lba() - part, block,
                                    buf->data() + it.block_offset(),
                                    kXtsSectorSize);
      }
      sgx::EcallCost total = enclave_->CallCost(sl, data.nbytes());
      ticket->iovecs.push_back({buf->data(), buf->size()});
      ticket->done = [fn = function(), tag, buf](Status st) {
        fn->Respond(tag, st.ok()
                             ? nvme::kStatusSuccess
                             : nvme::MakeStatus(nvme::kSctMediaError,
                                                nvme::kScWriteFault));
      };
      u64 sector = data.disk_addr();
      uif::Uring* ring = EnsureUring();
      auto submit = [ring, t = ticket.release(), sector]() mutable {
        ring->QueueWritev(std::unique_ptr<uif::IovecTicket>(t), sector);
      };
      if (sl) {
        function()->host()->PickWorker()->Charge(params_.per_req_ns +
                                                 total.caller_ns);
        switchless_cpu_->Run(total.enclave_ns, submit);
      } else {
        function()->host()->Async(
            params_.per_req_ns + total.caller_ns + total.enclave_ns,
            submit);
      }
      return true;
    }
    default:
      status = nvme::MakeStatus(nvme::kSctGeneric, nvme::kScInvalidOpcode);
      return false;
  }
}

}  // namespace nvmetro::functions

// The eBPF I/O classifiers for the NVMetro storage functions.
//
// The paper writes classifiers in C compiled to eBPF (Listing 1); here
// they are authored in eBPF assembly and built with ebpf::Assemble. All
// classifiers perform LBA translation (guest LBA -> backend-namespace
// LBA via ctx->part_offset) as their direct-mediation step, then route:
//
//  - Passthrough: everything to the fast path (the "dummy eBPF classifier
//    without UIF" used in the basic evaluations, §V-B).
//  - Encryptor (Listing 1): reads go to the device then to the UIF for
//    decryption (HOOK_HCQ); writes go to the UIF for encryption, which
//    writes ciphertext itself; device errors short-circuit to the VM.
//  - Replicator: reads served by the primary disk directly; writes are
//    fanned out to the disk AND the UIF simultaneously and complete only
//    when both finish (§IV-B).
//  - ReadOnly: write-class commands are rejected with Access Denied —
//    a three-line policy demonstrating classifier-level mediation.
//  - VendorPass: passes vendor-specific opcodes straight to hardware
//    (compatibility criterion, §III-B) and normal I/O via the fast path.
#pragma once

#include <memory>

#include "common/status.h"
#include "ebpf/map.h"
#include "ebpf/program.h"

namespace nvmetro::functions {

Result<ebpf::Program> PassthroughClassifier();
Result<ebpf::Program> EncryptorClassifier();
Result<ebpf::Program> ReplicatorClassifier();
Result<ebpf::Program> ReadOnlyClassifier();
Result<ebpf::Program> VendorPassClassifier();
/// Routes the KV command set straight to hardware and regular NVM
/// commands through the translated fast path — adopting a new command
/// set without touching the router (paper §III-B).
Result<ebpf::Program> KvPassClassifier();

/// Point-lookup pushdown over a kv::Pushdown index (DESIGN.md §15): at
/// each completion hook the classifier searches the returned index block
/// for the key the guest placed in cdw2/cdw3 (ctx->cmd_arg) and returns
/// kResubmit with slba rewritten to the child block — the whole
/// root-to-leaf walk happens below the guest, which sees exactly one
/// completion carrying the leaf page.
Result<ebpf::Program> PushdownLookupClassifier();

/// Assembly text of each classifier (for Table I line counting and the
/// custom-classifier example).
const char* PassthroughClassifierAsm();
const char* EncryptorClassifierAsm();
const char* ReplicatorClassifierAsm();
const char* ReadOnlyClassifierAsm();
const char* VendorPassClassifierAsm();
const char* KvPassClassifierAsm();
const char* RateLimitClassifierAsm();
const char* PushdownLookupClassifierAsm();

/// Token-bucket rate limiting, entirely inside the classifier: bucket
/// state and configuration live in an eBPF array map; refill uses the
/// ktime helper. Demonstrates stateful policies without router changes.
///
/// The map must be an ArrayMap(value_size=32, max_entries>=1); slot 0 is
/// laid out as four u64s:
///   [0] tokens (scaled by 1e6)   [1] last refill timestamp (ns)
///   [2] rate (requests/second)   [3] burst (requests)
/// Use MakeQosMap() to build and configure one.
Result<ebpf::Program> RateLimitClassifier(
    std::shared_ptr<ebpf::ArrayMap> qos_map);

/// Builds the QoS map for RateLimitClassifier.
std::shared_ptr<ebpf::ArrayMap> MakeQosMap(u64 rate_per_sec, u64 burst);

}  // namespace nvmetro::functions

// Live disk replication UIF (paper §IV-B).
//
// The classifier passes reads straight to the primary disk and fans
// writes out to both the primary disk (fast path) and this UIF (notify
// path). The UIF forwards each write to the secondary drive — attached to
// a remote host over NVMe-oF — using io_uring, zero-copy from the VM's
// buffers (the mirroring is synchronous, so the guest buffers stay valid
// until both legs finish).
//
// Degraded replication (DESIGN.md §9): when the secondary leg fails
// (replica outage, NVMe-oF link drop) and `degraded_mode` is on, the UIF
// stops failing guest writes — it acks them from the primary leg alone
// and logs the written ranges in a merged dirty-region map. When the link
// heals (OnLinkChange(false)), it resyncs the dirty ranges chunk by chunk
// from the attached primary device and leaves degraded mode once the log
// drains. A resync-chunk failure re-marks the chunk and waits for the
// next heal.
#pragma once

#include <map>
#include <memory>

#include "kblock/bio.h"
#include "uif/framework.h"
#include "uif/uring.h"

namespace nvmetro::obs {
class Counter;
}  // namespace nvmetro::obs

namespace nvmetro::functions {

struct ReplicatorParams {
  /// Per-request bookkeeping cost on the UIF thread.
  SimTime per_req_ns = 400;
  /// Secondary-leg failures degrade the mirror (dirty log + resync)
  /// instead of failing guest writes. A healthy secondary never takes
  /// these branches, so this default changes nothing in fault-free runs.
  bool degraded_mode = true;
  /// Resync copy granularity (128 sectors = 64 KiB).
  u64 resync_chunk_sectors = 128;
  /// UIF CPU charged per resync chunk (claim + submit bookkeeping).
  SimTime resync_chunk_cpu_ns = 1'000;
};

class ReplicatorUif : public uif::UifBase {
 public:
  /// `secondary` is the remote mirror leg (typically a
  /// kblock::RemoteBlockDevice). Sectors on the secondary are
  /// guest-relative (the mirror is an image of the VM's disk).
  ReplicatorUif(sim::Simulator* sim, kblock::BlockDevice* secondary,
                ReplicatorParams params = ReplicatorParams());

  /// Resync source: the primary disk, namespace-absolute sectors (the
  /// same device the router's kernel path uses). Without it a degraded
  /// replicator stays degraded — there is nothing to copy from.
  void AttachPrimary(kblock::BlockDevice* primary) { primary_ = primary; }

  /// Link-state notification for the secondary transport. A heal
  /// (down == false) while degraded starts the dirty-region resync.
  void OnLinkChange(bool down);

  bool work(const nvme::Sqe& cmd, u32 tag, u16& status) override;

  u64 writes_replicated() const { return writes_; }
  /// Secondary-leg writes that failed (never counted in writes_).
  u64 writes_failed() const { return writes_failed_; }
  /// Writes acked from the primary leg alone while degraded.
  u64 degraded_writes() const { return degraded_writes_; }
  u64 resynced_sectors() const { return resynced_sectors_; }
  bool degraded() const { return degraded_; }
  bool resyncing() const { return resyncing_; }
  usize dirty_regions() const { return dirty_.size(); }
  u64 dirty_sectors() const;

 private:
  uif::Uring* EnsureUring();
  void EnsureMetrics();
  void EnterDegraded();
  /// Merges [sector, sector+nsect) into the dirty-region log.
  void MarkDirty(u64 sector, u64 nsect);
  void StartResync();
  /// Claims and copies one dirty chunk; reschedules itself until the log
  /// is empty (then clears degraded) or a copy fails (then waits for the
  /// next heal). Event-driven: never self-probes on a timer.
  void PumpResync();

  sim::Simulator* sim_;
  kblock::BlockDevice* secondary_;
  kblock::BlockDevice* primary_ = nullptr;
  ReplicatorParams params_;
  std::unique_ptr<uif::Uring> uring_;
  u64 writes_ = 0;
  u64 writes_failed_ = 0;
  u64 degraded_writes_ = 0;
  u64 resynced_sectors_ = 0;
  bool degraded_ = false;
  bool resyncing_ = false;
  bool link_down_ = false;
  /// Dirty-region log: first sector -> sector count, merged, guest-
  /// relative (secondary address space).
  std::map<u64, u64> dirty_;
  bool metrics_init_ = false;
  obs::Counter* m_degraded_writes_ = nullptr;
  obs::Counter* m_resynced_ = nullptr;
  obs::Counter* m_writes_failed_ = nullptr;
};

}  // namespace nvmetro::functions

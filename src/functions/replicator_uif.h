// Live disk replication UIF (paper §IV-B).
//
// The classifier passes reads straight to the primary disk and fans
// writes out to both the primary disk (fast path) and this UIF (notify
// path). The UIF forwards each write to the secondary drive — attached to
// a remote host over NVMe-oF — using io_uring, zero-copy from the VM's
// buffers (the mirroring is synchronous, so the guest buffers stay valid
// until both legs finish).
#pragma once

#include <memory>

#include "kblock/bio.h"
#include "uif/framework.h"
#include "uif/uring.h"

namespace nvmetro::functions {

struct ReplicatorParams {
  /// Per-request bookkeeping cost on the UIF thread.
  SimTime per_req_ns = 400;
};

class ReplicatorUif : public uif::UifBase {
 public:
  /// `secondary` is the remote mirror leg (typically a
  /// kblock::RemoteBlockDevice). Sectors on the secondary are
  /// guest-relative (the mirror is an image of the VM's disk).
  ReplicatorUif(sim::Simulator* sim, kblock::BlockDevice* secondary,
                ReplicatorParams params = ReplicatorParams());

  bool work(const nvme::Sqe& cmd, u32 tag, u16& status) override;

  u64 writes_replicated() const { return writes_; }

 private:
  uif::Uring* EnsureUring();

  sim::Simulator* sim_;
  kblock::BlockDevice* secondary_;
  ReplicatorParams params_;
  std::unique_ptr<uif::Uring> uring_;
  u64 writes_ = 0;
};

}  // namespace nvmetro::functions

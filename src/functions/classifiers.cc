#include "functions/classifiers.h"

#include <string>

#include "common/strutil.h"
#include "core/classifier.h"
#include "ebpf/assembler.h"
#include "kv/pushdown.h"
#include "nvme/defs.h"

namespace nvmetro::functions {

namespace {

// Verdict values baked into the assembly (kept in sync with
// core::Verdict by the classifier unit tests).
constexpr u64 kFast = core::kSendHq | core::kWillCompleteHq;
constexpr u64 kToUif = core::kSendNq | core::kWillCompleteNq;
constexpr u64 kReadViaDevice =
    core::kSendHq | core::kHookOnHcq | core::kWaitForHook;
constexpr u64 kMirrorWrite = core::kSendHq | core::kSendNq |
                             core::kWillCompleteHq | core::kWillCompleteNq;
constexpr u64 kDenied =
    core::kComplete |
    nvme::MakeStatus(nvme::kSctMediaError, nvme::kScAccessDenied);

// ctx field offsets (see core::ClassifierCtx).
constexpr int kOffHook = 0;
constexpr int kOffOpcode = 8;
constexpr int kOffSlba = 24;
constexpr int kOffNlb = 32;
constexpr int kOffError = 40;
constexpr int kOffPartOff = 64;
constexpr int kOffCmdArg = 80;
constexpr int kOffData = 88;

/// Shared epilogue: translate guest LBA to backend-namespace LBA.
std::string TranslateSnippet() {
  return StrFormat(
      "  ldxdw r4, [r1+%d]\n"
      "  ldxdw r5, [r1+%d]\n"
      "  add r4, r5\n"
      "  stxdw [r1+%d], r4\n",
      kOffSlba, kOffPartOff, kOffSlba);
}

std::string PassthroughText() {
  return StrFormat(
             "; NVMetro passthrough classifier: LBA translation + fast "
             "path.\n"
             "  ldxdw r3, [r1+%d]\n"
             "  jeq r3, %d, data\n"
             "  jeq r3, %d, data\n"
             "  jeq r3, %d, data\n"
             "  jeq r3, %d, data\n"
             "  mov r0, %llu\n"
             "  exit\n"
             "data:\n",
             kOffOpcode, nvme::kCmdRead, nvme::kCmdWrite, nvme::kCmdCompare,
             nvme::kCmdWriteZeroes, (unsigned long long)kFast) +
         TranslateSnippet() +
         StrFormat("  mov r0, %llu\n  exit\n", (unsigned long long)kFast);
}

std::string EncryptorText() {
  // Paper Listing 1, in assembly:
  //   HOOK_VSQ:  read  -> SEND_HQ | HOOK_HCQ | WAIT_FOR_HOOK
  //              write -> SEND_NQ | WILL_COMPLETE_NQ
  //              other -> SEND_HQ | WILL_COMPLETE_HQ
  //   HOOK_HCQ:  error -> error | COMPLETE
  //              ok    -> SEND_NQ | WILL_COMPLETE_NQ
  return StrFormat(
             "; NVMetro encryption classifier (paper Listing 1).\n"
             "  ldxdw r2, [r1+%d]\n"
             "  jeq r2, %d, hook_hcq\n"
             "  ldxdw r3, [r1+%d]\n"
             "  jeq r3, %d, vsq_read\n"
             "  jeq r3, %d, vsq_write\n",
             kOffHook, (int)core::kHookHcq, kOffOpcode, nvme::kCmdRead,
             nvme::kCmdWrite) +
         TranslateSnippet() +
         StrFormat("  mov r0, %llu\n  exit\n", (unsigned long long)kFast) +
         "vsq_read:\n" + TranslateSnippet() +
         StrFormat("  mov r0, %llu\n  exit\n",
                   (unsigned long long)kReadViaDevice) +
         "vsq_write:\n" + TranslateSnippet() +
         StrFormat("  mov r0, %llu\n  exit\n",
                   (unsigned long long)kToUif) +
         StrFormat(
             "hook_hcq:\n"
             "  ldxdw r3, [r1+%d]\n"
             "  jne r3, 0, fwd_err\n"
             "  mov r0, %llu\n"
             "  exit\n"
             "fwd_err:\n"
             "  mov r0, r3\n"
             "  or r0, %llu\n"
             "  exit\n",
             kOffError, (unsigned long long)kToUif,
             (unsigned long long)core::kComplete);
}

std::string ReplicatorText() {
  return StrFormat(
             "; NVMetro replication classifier: reads from the local "
             "disk,\n"
             "; writes fanned out to disk + UIF, completing when both "
             "finish.\n"
             "  ldxdw r3, [r1+%d]\n"
             "  jeq r3, %d, wr\n"
             "  jeq r3, %d, rd\n"
             "  mov r0, %llu\n"
             "  exit\n"
             "rd:\n",
             kOffOpcode, nvme::kCmdWrite, nvme::kCmdRead,
             (unsigned long long)kFast) +
         TranslateSnippet() +
         StrFormat("  mov r0, %llu\n  exit\n", (unsigned long long)kFast) +
         "wr:\n" + TranslateSnippet() +
         StrFormat("  mov r0, %llu\n  exit\n",
                   (unsigned long long)kMirrorWrite);
}

std::string ReadOnlyText() {
  return StrFormat(
             "; Read-only enforcement: deny write-class commands.\n"
             "  ldxdw r3, [r1+%d]\n"
             "  jeq r3, %d, deny\n"
             "  jeq r3, %d, deny\n"
             "  jeq r3, %d, deny\n",
             kOffOpcode, nvme::kCmdWrite, nvme::kCmdWriteZeroes,
             nvme::kCmdDsm) +
         TranslateSnippet() +
         StrFormat(
             "  mov r0, %llu\n"
             "  exit\n"
             "deny:\n"
             "  mov r0, %llu\n"
             "  exit\n",
             (unsigned long long)kFast, (unsigned long long)kDenied);
}

std::string VendorPassText() {
  return StrFormat(
             "; Vendor-extension passthrough (compatibility, paper "
             "SIII-B):\n"
             "; opcodes >= 0x80 go straight to hardware, untranslated.\n"
             "  ldxdw r3, [r1+%d]\n"
             "  jge r3, %d, vendor\n",
             kOffOpcode, nvme::kCmdVendorStart) +
         TranslateSnippet() +
         StrFormat(
             "  mov r0, %llu\n"
             "  exit\n"
             "vendor:\n"
             "  mov r0, %llu\n"
             "  exit\n",
             (unsigned long long)kFast, (unsigned long long)kFast);
}

std::string KvPassText() {
  return StrFormat(
             "; KV command set adoption: opcodes 0x90-0x93 go straight\n"
             "; to hardware; NVM commands take the translated fast path.\n"
             "  ldxdw r3, [r1+%d]\n"
             "  jge r3, %d, kv_check\n"
             "normal:\n",
             kOffOpcode, nvme::kCmdKvStore) +
         TranslateSnippet() +
         StrFormat(
             "  mov r0, %llu\n"
             "  exit\n"
             "kv_check:\n"
             "  jgt r3, %d, normal2\n"
             "  mov r0, %llu\n"
             "  exit\n"
             "normal2:\n",
             (unsigned long long)kFast, nvme::kCmdKvExist,
             (unsigned long long)kFast) +
         TranslateSnippet() +
         StrFormat("  mov r0, %llu\n  exit\n", (unsigned long long)kFast);
}

std::string RateLimitText() {
  // Bucket math in scaled units: tokens_scaled += delta_ns * rate / 1000
  // (1 request = 1'000'000 scaled tokens); clamp to burst; spend one
  // token per admitted request. Denied requests complete with
  // AbortRequested so the guest retries.
  constexpr u64 kDeny =
      core::kComplete |
      nvme::MakeStatus(nvme::kSctGeneric, nvme::kScAbortRequested);
  return StrFormat(
             "; Token-bucket QoS classifier: state + config in map 0.\n"
             "  stxdw [r10-16], r1\n"      // spill ctx (helpers clobber r1)
             "  lddw r1, map 0\n"
             "  mov r2, r10\n"
             "  add r2, -4\n"
             "  stw [r10-4], 0\n"
             "  call map_lookup_elem\n"
             "  jne r0, 0, have_cfg\n"
             "; no config installed: admit everything\n"
             "  ja admit_noctx\n"
             "have_cfg:\n"
             "  mov r6, r0\n"
             "  ldxdw r7, [r6+0]\n"        // tokens_scaled
             "  ldxdw r8, [r6+8]\n"        // last_ns
             "  call ktime_get_ns\n"
             "  mov r9, r0\n"              // now
             "  sub r0, r8\n"              // delta (last <= now)
             "  ldxdw r3, [r6+16]\n"       // rate/s
             "  mul r0, r3\n"
             "  div r0, 1000\n"            // scaled refill
             "  add r7, r0\n"
             "  ldxdw r4, [r6+24]\n"       // burst (requests)
             "  mov r5, 1000000\n"
             "  mul r4, r5\n"              // burst scaled
             "  jle r7, r4, no_clamp\n"
             "  mov r7, r4\n"
             "no_clamp:\n"
             "  stxdw [r6+8], r9\n"        // last = now
             "  jge r7, 1000000, admit\n"
             "  stxdw [r6+0], r7\n"        // save partial refill
             "  lddw r0, %llu\n"
             "  exit\n"
             "admit:\n"
             "  sub r7, 1000000\n"         // spend one token
             "  stxdw [r6+0], r7\n"
             "admit_noctx:\n"
             "  ldxdw r1, [r10-16]\n",     // reload ctx
             (unsigned long long)kDeny) +
         TranslateSnippet() +
         StrFormat("  mov r0, %llu\n  exit\n", (unsigned long long)kFast);
}

std::string PushdownLookupText() {
  // Chain start (VSQ): reads route to the device with a completion hook
  // installed; writes and everything else behave like Passthrough.
  //
  // Completion hook: if the returned page is a pushdown *internal* block
  // (magic matches, level > 0), run the same 7-step uniform binary
  // search as kv::PushdownSearchBlock — fully unrolled, so the search
  // index is a compile-time constant on every verifier path and the
  // data-region loads need no bounds guards — then rewrite slba to the
  // child's LBA and return RESUBMIT. Leaf blocks (level 0), non-index
  // pages and missing data pages complete to the guest; device errors
  // are forwarded.
  std::string s =
      StrFormat(
          "; NVMetro pushdown point-lookup classifier (DESIGN.md S15).\n"
          "  ldxdw r2, [r1+%d]\n"
          "  jne r2, 0, hook_cpl\n"
          "  ldxdw r3, [r1+%d]\n"
          "  jeq r3, %d, vsq_read\n"
          "  jeq r3, %d, vsq_write\n"
          "  mov r0, %llu\n"
          "  exit\n"
          "vsq_write:\n",
          kOffHook, kOffOpcode, nvme::kCmdRead, nvme::kCmdWrite,
          (unsigned long long)kFast) +
      TranslateSnippet() +
      StrFormat("  mov r0, %llu\n  exit\nvsq_read:\n",
                (unsigned long long)kFast) +
      TranslateSnippet() +
      StrFormat("  mov r0, %llu\n  exit\n",
                (unsigned long long)kReadViaDevice) +
      StrFormat(
          "hook_cpl:\n"
          "  ldxdw r3, [r1+%d]\n"
          "  jne r3, 0, fwd_err\n"
          "  ldxdw r2, [r1+%d]\n"         // data page (null-checked below)
          "  jeq r2, 0, done_ok\n"
          "  ldxdw r3, [r2+0]\n"          // word0 = magic<<32 | level
          "  mov r4, r3\n"
          "  rsh r4, 32\n"
          "  jne r4, %d, done_ok\n"       // not a pushdown block
          "  mov32 r3, r3\n"              // level
          "  jeq r3, 0, done_ok\n"        // leaf: guest finishes lookup
          "  ldxdw r6, [r1+%d]\n"         // key = cmd_arg
          "  mov r7, 0\n",                // idx
          kOffError, kOffData, (int)kv::kPushdownMagic, kOffCmdArg);
  // Floor search: idx = last entry with key <= target (pad keys are ~0,
  // never <= a real key, so empty slots self-exclude).
  for (u32 step = kv::kPushdownFanout / 2; step >= 1; step >>= 1) {
    s += StrFormat(
        "  mov r4, r7\n"
        "  add r4, %u\n"                  // cand = idx + step
        "  mov r5, r4\n"
        "  lsh r5, 4\n"
        "  mov r3, r2\n"
        "  add r3, r5\n"
        "  ldxdw r3, [r3+%u]\n"           // entry_key(cand)
        "  jgt r3, r6, skip%u\n"
        "  mov r7, r4\n"
        "skip%u:\n",
        step, kv::kPushdownHeaderBytes, step, step);
  }
  s += StrFormat(
      "  mov r5, r7\n"
      "  lsh r5, 4\n"
      "  mov r3, r2\n"
      "  add r3, r5\n"
      "  ldxdw r3, [r3+%u]\n"             // entry_val(idx): child guest LBA
      "  ldxdw r4, [r1+%d]\n"
      "  add r3, r4\n"                    // translate to backend LBA
      "  stxdw [r1+%d], r3\n"
      "  mov r4, %u\n"
      "  stxdw [r1+%d], r4\n"             // read one index block
      "  mov r0, %llu\n"
      "  exit\n"
      "done_ok:\n"
      "  mov r0, %llu\n"
      "  exit\n"
      "fwd_err:\n"
      "  mov r0, r3\n"
      "  or r0, %llu\n"
      "  exit\n",
      kv::kPushdownHeaderBytes + 8, kOffPartOff, kOffSlba,
      kv::kPushdownLbasPerBlock, kOffNlb,
      (unsigned long long)core::kResubmit,
      (unsigned long long)core::kComplete,
      (unsigned long long)core::kComplete);
  return s;
}

}  // namespace

const char* PushdownLookupClassifierAsm() {
  static const std::string* kText = new std::string(PushdownLookupText());
  return kText->c_str();
}

Result<ebpf::Program> PushdownLookupClassifier() {
  return ebpf::Assemble(PushdownLookupClassifierAsm());
}

const char* RateLimitClassifierAsm() {
  static const std::string* kText = new std::string(RateLimitText());
  return kText->c_str();
}

std::shared_ptr<ebpf::ArrayMap> MakeQosMap(u64 rate_per_sec, u64 burst) {
  auto map = std::make_shared<ebpf::ArrayMap>(32, 1);
  u64 value[4] = {burst * 1'000'000, 0, rate_per_sec, burst};
  u32 key = 0;
  (void)map->Update(&key, value);
  return map;
}

Result<ebpf::Program> RateLimitClassifier(
    std::shared_ptr<ebpf::ArrayMap> qos_map) {
  return ebpf::Assemble(RateLimitClassifierAsm(), {std::move(qos_map)});
}

const char* KvPassClassifierAsm() {
  static const std::string* kText = new std::string(KvPassText());
  return kText->c_str();
}

Result<ebpf::Program> KvPassClassifier() {
  return ebpf::Assemble(KvPassClassifierAsm());
}

const char* PassthroughClassifierAsm() {
  static const std::string* kText = new std::string(PassthroughText());
  return kText->c_str();
}
const char* EncryptorClassifierAsm() {
  static const std::string* kText = new std::string(EncryptorText());
  return kText->c_str();
}
const char* ReplicatorClassifierAsm() {
  static const std::string* kText = new std::string(ReplicatorText());
  return kText->c_str();
}
const char* ReadOnlyClassifierAsm() {
  static const std::string* kText = new std::string(ReadOnlyText());
  return kText->c_str();
}
const char* VendorPassClassifierAsm() {
  static const std::string* kText = new std::string(VendorPassText());
  return kText->c_str();
}

Result<ebpf::Program> PassthroughClassifier() {
  return ebpf::Assemble(PassthroughClassifierAsm());
}
Result<ebpf::Program> EncryptorClassifier() {
  return ebpf::Assemble(EncryptorClassifierAsm());
}
Result<ebpf::Program> ReplicatorClassifier() {
  return ebpf::Assemble(ReplicatorClassifierAsm());
}
Result<ebpf::Program> ReadOnlyClassifier() {
  return ebpf::Assemble(ReadOnlyClassifierAsm());
}
Result<ebpf::Program> VendorPassClassifier() {
  return ebpf::Assemble(VendorPassClassifierAsm());
}

}  // namespace nvmetro::functions

#include "functions/replicator_uif.h"

#include <algorithm>
#include <vector>

#include "obs/obs.h"

namespace nvmetro::functions {

ReplicatorUif::ReplicatorUif(sim::Simulator* sim,
                             kblock::BlockDevice* secondary,
                             ReplicatorParams params)
    : sim_(sim), secondary_(secondary), params_(params) {}

uif::Uring* ReplicatorUif::EnsureUring() {
  if (!uring_) {
    uring_ = std::make_unique<uif::Uring>(sim_, secondary_,
                                          function()->host()->poll_cpu());
  }
  return uring_.get();
}

void ReplicatorUif::EnsureMetrics() {
  if (metrics_init_ || !function()) return;
  metrics_init_ = true;
  obs::Observability* obs = function()->host()->params().obs;
  if (!obs) return;
  m_degraded_writes_ = obs->metrics().GetCounter("repl.degraded_writes");
  m_resynced_ = obs->metrics().GetCounter("repl.resynced_lbas");
  m_writes_failed_ = obs->metrics().GetCounter("repl.writes_failed");
}

u64 ReplicatorUif::dirty_sectors() const {
  u64 n = 0;
  for (const auto& [sector, count] : dirty_) n += count;
  return n;
}

void ReplicatorUif::EnterDegraded() {
  degraded_ = true;
}

void ReplicatorUif::MarkDirty(u64 sector, u64 nsect) {
  if (nsect == 0) return;
  u64 end = sector + nsect;
  // Merge with any region starting at or before `end`, working backwards
  // from the first region past the new range.
  auto it = dirty_.upper_bound(end);
  while (it != dirty_.begin()) {
    auto prev = std::prev(it);
    u64 p_end = prev->first + prev->second;
    if (p_end < sector) break;  // disjoint, no further overlap possible
    sector = std::min(sector, prev->first);
    end = std::max(end, p_end);
    it = dirty_.erase(prev);
  }
  dirty_[sector] = end - sector;
}

void ReplicatorUif::OnLinkChange(bool down) {
  link_down_ = down;
  if (!down) StartResync();
}

void ReplicatorUif::StartResync() {
  if (!degraded_ || resyncing_ || link_down_) return;
  if (dirty_.empty()) {
    degraded_ = false;
    return;
  }
  if (!primary_) return;  // nothing to copy from: stay degraded
  resyncing_ = true;
  PumpResync();
}

void ReplicatorUif::PumpResync() {
  if (dirty_.empty()) {
    resyncing_ = false;
    degraded_ = false;
    return;
  }
  // Claim one chunk off the front of the log. A concurrent guest write to
  // the claimed range re-dirties it via MarkDirty, so nothing is lost.
  auto it = dirty_.begin();
  u64 sector = it->first;
  u64 n = std::min(it->second, params_.resync_chunk_sectors);
  if (n == it->second) {
    dirty_.erase(it);
  } else {
    u64 rest = it->second - n;
    dirty_.erase(it);
    dirty_[sector + n] = rest;
  }
  if (function()) {
    function()->host()->poll_cpu()->Charge(params_.resync_chunk_cpu_ns);
  }
  u64 offset = function() ? function()->part_first_lba() : 0;
  auto buf = std::make_shared<std::vector<u8>>(n * kblock::kSectorSize);
  u64 len = buf->size();
  primary_->Submit(kblock::Bio::Read(
      sector + offset, buf->data(), len, [this, sector, n, buf, len](Status st) {
        if (!st.ok()) {
          MarkDirty(sector, n);
          resyncing_ = false;  // wait for the next heal
          return;
        }
        secondary_->Submit(kblock::Bio::Write(
            sector, buf->data(), len, [this, sector, n, buf](Status wst) {
              if (!wst.ok()) {
                MarkDirty(sector, n);
                resyncing_ = false;
                return;
              }
              resynced_sectors_ += n;
              EnsureMetrics();
              if (m_resynced_) m_resynced_->Inc(n);
              PumpResync();
            }));
      }));
}

bool ReplicatorUif::work(const nvme::Sqe& cmd, u32 tag, u16& status) {
  switch (cmd.opcode) {
    case nvme::kCmdWrite: {
      uif::GuestData data = function()->Parse(cmd);
      if (!data.ok()) {
        status = nvme::MakeStatus(nvme::kSctGeneric,
                                  nvme::kScDataTransferError);
        return false;
      }
      EnsureMetrics();
      // Secondary mirrors the guest's view: guest-relative sectors.
      u64 sector = data.disk_addr() - function()->part_first_lba();
      u64 nsect = cmd.block_count();
      function()->host()->poll_cpu()->Charge(params_.per_req_ns);
      if (degraded_) {
        // The primary leg (fast path) carries the write; log the range
        // for resync and ack.
        MarkDirty(sector, nsect);
        degraded_writes_++;
        if (m_degraded_writes_) m_degraded_writes_->Inc();
        status = nvme::kStatusSuccess;
        return false;
      }
      // Zero-copy: forward the guest's own pages to the secondary.
      auto ticket = std::make_unique<uif::IovecTicket>();
      ticket->tag = tag;
      mem::GuestMemory* gm = data.guest_memory();
      for (const auto& seg : data.segments()) {
        u8* p = gm->Translate(seg.gpa, seg.len);
        if (!p) {
          status = nvme::MakeStatus(nvme::kSctGeneric,
                                    nvme::kScDataTransferError);
          return false;
        }
        ticket->iovecs.push_back({p, seg.len});
      }
      ticket->done = [this, fn = function(), tag, sector, nsect](Status st) {
        if (st.ok()) {
          writes_++;
          fn->Respond(tag, nvme::kStatusSuccess);
          return;
        }
        writes_failed_++;
        if (m_writes_failed_) m_writes_failed_->Inc();
        if (!params_.degraded_mode) {
          fn->Respond(tag, nvme::MakeStatus(nvme::kSctMediaError,
                                            nvme::kScWriteFault));
          return;
        }
        // Degrade: the primary leg already has the data; remember the
        // range and ack so the guest keeps running on one replica.
        EnterDegraded();
        MarkDirty(sector, nsect);
        degraded_writes_++;
        if (m_degraded_writes_) m_degraded_writes_->Inc();
        fn->Respond(tag, nvme::kStatusSuccess);
      };
      EnsureUring()->QueueWritev(std::move(ticket), sector);
      return true;
    }
    case nvme::kCmdFlush:
      if (degraded_) {
        // No secondary to flush; durability is the primary's problem
        // until resync completes.
        status = nvme::kStatusSuccess;
        return false;
      }
      // Propagate flushes to the secondary for durability parity.
      EnsureUring()->QueueFsync([this, fn = function(), tag](Status st) {
        if (st.ok() || params_.degraded_mode) {
          if (!st.ok()) EnterDegraded();
          fn->Respond(tag, nvme::kStatusSuccess);
        } else {
          fn->Respond(tag, nvme::MakeStatus(nvme::kSctMediaError,
                                            nvme::kScWriteFault));
        }
      });
      return true;
    default:
      // The classifier filters reads out ("the UIF only needed to
      // consider writes", paper §V-F); anything else is a policy error.
      status = nvme::MakeStatus(nvme::kSctGeneric, nvme::kScInvalidOpcode);
      return false;
  }
}

}  // namespace nvmetro::functions

#include "functions/replicator_uif.h"

namespace nvmetro::functions {

ReplicatorUif::ReplicatorUif(sim::Simulator* sim,
                             kblock::BlockDevice* secondary,
                             ReplicatorParams params)
    : sim_(sim), secondary_(secondary), params_(params) {}

uif::Uring* ReplicatorUif::EnsureUring() {
  if (!uring_) {
    uring_ = std::make_unique<uif::Uring>(sim_, secondary_,
                                          function()->host()->poll_cpu());
  }
  return uring_.get();
}

bool ReplicatorUif::work(const nvme::Sqe& cmd, u32 tag, u16& status) {
  switch (cmd.opcode) {
    case nvme::kCmdWrite: {
      uif::GuestData data = function()->Parse(cmd);
      if (!data.ok()) {
        status = nvme::MakeStatus(nvme::kSctGeneric,
                                  nvme::kScDataTransferError);
        return false;
      }
      // Zero-copy: forward the guest's own pages to the secondary.
      auto ticket = std::make_unique<uif::IovecTicket>();
      ticket->tag = tag;
      mem::GuestMemory* gm = data.guest_memory();
      for (const auto& seg : data.segments()) {
        u8* p = gm->Translate(seg.gpa, seg.len);
        if (!p) {
          status = nvme::MakeStatus(nvme::kSctGeneric,
                                    nvme::kScDataTransferError);
          return false;
        }
        ticket->iovecs.push_back({p, seg.len});
      }
      ticket->done = [fn = function(), tag](Status st) {
        fn->Respond(tag, st.ok()
                             ? nvme::kStatusSuccess
                             : nvme::MakeStatus(nvme::kSctMediaError,
                                                nvme::kScWriteFault));
      };
      writes_++;
      function()->host()->poll_cpu()->Charge(params_.per_req_ns);
      // Secondary mirrors the guest's view: guest-relative sectors.
      u64 sector = data.disk_addr() - function()->part_first_lba();
      EnsureUring()->QueueWritev(std::move(ticket), sector);
      return true;
    }
    case nvme::kCmdFlush:
      // Propagate flushes to the secondary for durability parity.
      EnsureUring()->QueueFsync([fn = function(), tag](Status st) {
        fn->Respond(tag, st.ok() ? nvme::kStatusSuccess
                                 : nvme::MakeStatus(nvme::kSctMediaError,
                                                    nvme::kScWriteFault));
      });
      return true;
    default:
      // The classifier filters reads out ("the UIF only needed to
      // consider writes", paper §V-F); anything else is a policy error.
      status = nvme::MakeStatus(nvme::kSctGeneric, nvme::kScInvalidOpcode);
      return false;
  }
}

}  // namespace nvmetro::functions

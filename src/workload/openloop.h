// Open-loop arrival generation: production-shaped traffic that does NOT
// wait for completions.
//
// Every bench before this one was closed-loop (fio/YCSB issue-on-
// complete): offered load self-limits to service capacity, so queues can
// never grow without bound and the overload regime is unreachable. Real
// fleets are open-loop — arrivals come from independent clients on their
// own schedule — and the failure mode that matters is exactly the one
// closed-loop harnesses cannot express: offered > capacity, queues grow,
// p999 explodes (the "hockey stick").
//
// The generator synthesizes per-tenant arrival streams on the virtual
// clock:
//
//  - Poisson base process per tenant (exponential inter-arrivals at
//    `base_iops`), the standard model for aggregated client fan-in.
//  - A diurnal envelope: sinusoidal rate modulation with a configurable
//    period/amplitude, compressing a day's load cycle into a bench run.
//  - Burst episodes: pseudo-random on/off periods during which the
//    tenant's rate is multiplied (e.g. 10x), modeling correlated client
//    retry storms and batch jobs; a deterministic forced burst window
//    can be pinned for time-to-recover measurements.
//  - Mixed block sizes drawn from a weighted table, read/write split,
//    and uniformly random LBAs within a per-tenant region.
//  - Skewed tenant popularity: BuildSkewedTenants() carves an aggregate
//    rate across N tenants Zipf-style, so a few tenants dominate the
//    fan-in as in multi-tenant traces ("Cross-IP Request Coalescing").
//
// Determinism: every tenant owns an independent Rng stream derived from
// (seed, tenant_id), so the merged stream is bit-identical for a given
// config — adding a tenant never perturbs another tenant's arrivals.
// Time-varying rates use Lewis-Shedler thinning against the tenant's
// peak rate: candidate arrivals are drawn from a homogeneous Poisson
// process at `peak_rate` and accepted with probability rate(t)/peak, so
// the accepted process is exactly the modulated Poisson process and
// stays deterministic under any modulation shape.
//
// The generator is pure (no simulator dependency): it yields Arrival
// records in nondecreasing time order; callers schedule them (see
// bench/open_loop_traffic) or consume them directly (tests).
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace nvmetro::workload {

/// One generated request arrival.
struct Arrival {
  SimTime at = 0;     // arrival time on the virtual clock
  u32 tenant_id = 0;  // matches qos::TenantConfig::tenant_id
  bool is_write = false;
  u64 slba = 0;
  u32 nlb = 0;  // 512-byte blocks
};

/// One entry of a tenant's block-size mix.
struct BlockSizeMix {
  u32 nlb = 8;       // request size in 512-byte blocks
  u32 weight = 1;    // relative draw weight
};

/// One tenant's open-loop load shape.
struct TenantLoad {
  u32 tenant_id = 0;
  /// Base Poisson arrival rate before modulation.
  double base_iops = 1000.0;
  double write_fraction = 0.3;
  /// LBA region [first_lba, first_lba + region_nlb): offsets are drawn
  /// uniformly and aligned to the request size.
  u64 first_lba = 0;
  u64 region_nlb = 1 << 20;
  std::vector<BlockSizeMix> mix = {{8, 1}};  // default: 4 KiB

  // --- Burst episodes -----------------------------------------------------
  /// Rate multiplier while a burst episode is active (1.0 = no bursts).
  double burst_multiplier = 1.0;
  /// Mean gap between episode starts and mean episode length; both are
  /// exponentially distributed (episode process is itself Poisson).
  SimTime burst_mean_interval_ns = 0;  // 0 disables random episodes
  SimTime burst_mean_duration_ns = 0;
  /// Deterministic forced burst window [forced_burst_at, +duration): the
  /// time-to-recover measurement needs the burst edge at a known time.
  SimTime forced_burst_at_ns = 0;
  SimTime forced_burst_duration_ns = 0;  // 0 disables

  // --- Diurnal envelope ---------------------------------------------------
  /// rate(t) *= 1 + amplitude * sin(2*pi*t/period). amplitude in [0,1).
  double diurnal_amplitude = 0.0;
  SimTime diurnal_period_ns = 0;  // 0 disables
};

struct OpenLoopConfig {
  u64 seed = 1;
  SimTime horizon_ns = 100'000'000;  // generate arrivals in [0, horizon)
  std::vector<TenantLoad> tenants;
};

/// Deterministic merged arrival stream over all configured tenants.
class OpenLoopGenerator {
 public:
  explicit OpenLoopGenerator(OpenLoopConfig cfg);

  /// Next arrival in nondecreasing time order; false once every tenant's
  /// stream has passed the horizon. Ties break by tenant config order,
  /// deterministically.
  bool Next(Arrival* out);

  /// Drains the whole stream into a vector (tests, pre-scheduling).
  std::vector<Arrival> GenerateAll();

  /// The tenant's instantaneous rate multiplier relative to base_iops at
  /// time `t` (diurnal envelope x burst state). Exposed so tests can
  /// validate thinning against the exact modulation the generator used.
  double RateFactorAt(usize tenant_index, SimTime t) const;

  /// Peak rate factor the thinning envelope uses for this tenant.
  double PeakFactor(usize tenant_index) const;

  const OpenLoopConfig& config() const { return cfg_; }

 private:
  struct BurstEpisode {
    SimTime start = 0;
    SimTime end = 0;
  };

  struct TenantStream {
    TenantLoad load;
    Rng rng;               // arrival candidates + acceptance + op mix
    double peak_factor = 1.0;
    u32 mix_total_weight = 0;
    /// Random burst episodes materialized up front (deterministic; the
    /// episode process must not share draws with the arrival process).
    std::vector<BurstEpisode> episodes;
    Arrival pending;       // next accepted arrival, valid while !done
    bool done = false;
    SimTime clock = 0;     // candidate-process time
  };

  void Advance(TenantStream* ts);
  static double RateFactor(const TenantStream& ts, SimTime t);

  OpenLoopConfig cfg_;
  std::vector<TenantStream> streams_;
};

/// Carves `aggregate_iops` across `n` tenants with Zipf-skewed shares
/// (tenant_id = first_tenant_id + i; share_i proportional to
/// 1/(i+1)^theta), each covering an equal slice of `region_nlb`. The
/// few head tenants dominate, as multi-tenant fan-in traces show.
std::vector<TenantLoad> BuildSkewedTenants(u32 n, u32 first_tenant_id,
                                           double aggregate_iops,
                                           double theta, u64 region_nlb);

}  // namespace nvmetro::workload

#include "workload/openloop.h"

#include <algorithm>
#include <cmath>

namespace nvmetro::workload {

namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

OpenLoopGenerator::OpenLoopGenerator(OpenLoopConfig cfg) : cfg_(std::move(cfg)) {
  streams_.reserve(cfg_.tenants.size());
  for (const TenantLoad& load : cfg_.tenants) {
    TenantStream ts;
    ts.load = load;
    ts.rng = Rng(FnvHash64(cfg_.seed ^
                           (0x9E3779B97F4A7C15ull * (load.tenant_id + 1))));
    ts.mix_total_weight = 0;
    for (const BlockSizeMix& m : ts.load.mix) ts.mix_total_weight += m.weight;
    if (ts.load.mix.empty() || ts.mix_total_weight == 0) {
      ts.load.mix = {{8, 1}};
      ts.mix_total_weight = 1;
    }

    // Peak envelope for thinning: diurnal crest times burst multiplier.
    ts.peak_factor = 1.0 + std::max(0.0, ts.load.diurnal_amplitude);
    if (ts.load.burst_multiplier > 1.0 &&
        (ts.load.burst_mean_interval_ns > 0 ||
         ts.load.forced_burst_duration_ns > 0)) {
      ts.peak_factor *= ts.load.burst_multiplier;
    }

    // Materialize random burst episodes from a dedicated stream so the
    // episode schedule never consumes arrival-process draws (keeps the
    // arrival stream stable when bursts are toggled off via multiplier).
    if (ts.load.burst_mean_interval_ns > 0 &&
        ts.load.burst_mean_duration_ns > 0 && ts.load.burst_multiplier > 1.0) {
      Rng erng(FnvHash64(cfg_.seed ^ 0xB5297A4D3F84D5B5ull ^
                         (u64{load.tenant_id} << 32)));
      SimTime t = 0;
      while (t < cfg_.horizon_ns) {
        t += static_cast<SimTime>(
            erng.NextExponential(
                static_cast<double>(ts.load.burst_mean_interval_ns)) +
            1.0);
        if (t >= cfg_.horizon_ns) break;
        SimTime dur = static_cast<SimTime>(
            erng.NextExponential(
                static_cast<double>(ts.load.burst_mean_duration_ns)) +
            1.0);
        ts.episodes.push_back({t, t + dur});
        t += dur;
      }
    }

    streams_.push_back(std::move(ts));
    Advance(&streams_.back());
  }
}

double OpenLoopGenerator::RateFactor(const TenantStream& ts, SimTime t) {
  double f = 1.0;
  const TenantLoad& l = ts.load;
  if (l.diurnal_period_ns > 0 && l.diurnal_amplitude > 0.0) {
    f *= 1.0 + l.diurnal_amplitude *
                   std::sin(2.0 * kPi * static_cast<double>(t) /
                            static_cast<double>(l.diurnal_period_ns));
  }
  bool bursting = false;
  if (l.forced_burst_duration_ns > 0 && t >= l.forced_burst_at_ns &&
      t < l.forced_burst_at_ns + l.forced_burst_duration_ns) {
    bursting = true;
  }
  if (!bursting) {
    for (const BurstEpisode& e : ts.episodes) {
      if (t < e.start) break;  // episodes are time-ordered
      if (t < e.end) {
        bursting = true;
        break;
      }
    }
  }
  if (bursting) f *= l.burst_multiplier;
  return f;
}

double OpenLoopGenerator::RateFactorAt(usize tenant_index, SimTime t) const {
  return RateFactor(streams_[tenant_index], t);
}

double OpenLoopGenerator::PeakFactor(usize tenant_index) const {
  return streams_[tenant_index].peak_factor;
}

void OpenLoopGenerator::Advance(TenantStream* ts) {
  const TenantLoad& l = ts->load;
  if (l.base_iops <= 0.0) {
    ts->done = true;
    return;
  }
  const double peak_rate_per_ns = l.base_iops * ts->peak_factor / 1e9;
  const double mean_gap_ns = 1.0 / peak_rate_per_ns;
  // Lewis-Shedler thinning: homogeneous candidates at the peak rate,
  // accept with probability rate(t)/peak.
  while (true) {
    double gap = ts->rng.NextExponential(mean_gap_ns);
    if (gap < 1.0) gap = 1.0;  // integral clock; keeps strict progress
    SimTime next = ts->clock + static_cast<SimTime>(gap);
    if (next >= cfg_.horizon_ns || next < ts->clock) {  // horizon or overflow
      ts->done = true;
      return;
    }
    ts->clock = next;
    double accept_p = RateFactor(*ts, next) / ts->peak_factor;
    if (ts->rng.NextDouble() >= accept_p) continue;

    Arrival a;
    a.at = next;
    a.tenant_id = l.tenant_id;
    a.is_write = ts->rng.NextBool(l.write_fraction);
    // Weighted block-size draw.
    u32 pick = static_cast<u32>(ts->rng.NextBounded(ts->mix_total_weight));
    a.nlb = ts->load.mix.back().nlb;
    for (const BlockSizeMix& m : ts->load.mix) {
      if (pick < m.weight) {
        a.nlb = m.nlb;
        break;
      }
      pick -= m.weight;
    }
    // Size-aligned offset inside the tenant region.
    u64 slots = l.region_nlb > a.nlb ? l.region_nlb / a.nlb : 1;
    a.slba = l.first_lba + ts->rng.NextBounded(slots) * a.nlb;
    ts->pending = a;
    return;
  }
}

bool OpenLoopGenerator::Next(Arrival* out) {
  usize best = streams_.size();
  for (usize i = 0; i < streams_.size(); ++i) {
    if (streams_[i].done) continue;
    if (best == streams_.size() ||
        streams_[i].pending.at < streams_[best].pending.at) {
      best = i;
    }
  }
  if (best == streams_.size()) return false;
  *out = streams_[best].pending;
  Advance(&streams_[best]);
  return true;
}

std::vector<Arrival> OpenLoopGenerator::GenerateAll() {
  std::vector<Arrival> all;
  Arrival a;
  while (Next(&a)) all.push_back(a);
  return all;
}

std::vector<TenantLoad> BuildSkewedTenants(u32 n, u32 first_tenant_id,
                                           double aggregate_iops, double theta,
                                           u64 region_nlb) {
  std::vector<TenantLoad> out;
  if (n == 0) return out;
  double zeta = 0.0;
  for (u32 i = 0; i < n; ++i) zeta += 1.0 / std::pow(i + 1, theta);
  u64 slice = region_nlb / n;
  for (u32 i = 0; i < n; ++i) {
    TenantLoad t;
    t.tenant_id = first_tenant_id + i;
    t.base_iops = aggregate_iops * (1.0 / std::pow(i + 1, theta)) / zeta;
    t.first_lba = static_cast<u64>(i) * slice;
    t.region_nlb = slice;
    out.push_back(t);
  }
  return out;
}

}  // namespace nvmetro::workload

// YCSB core workloads A-F (Cooper et al., SoCC'10), as used in the
// paper's database evaluations (§V-A: RocksDB over ext4, 6 built-in
// workloads, 1M ops on 3M records — scaled by record/op counts here).
//
//   A: 50% read / 50% update, zipfian
//   B: 95% read /  5% update, zipfian
//   C: 100% read, zipfian
//   D: 95% read (latest) / 5% insert
//   E: 95% scan (zipfian start, uniform length) / 5% insert
//   F: 50% read / 50% read-modify-write, zipfian
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "kv/minikv.h"
#include "sim/simulator.h"
#include "sim/vcpu.h"

namespace nvmetro::workload {

struct YcsbConfig {
  char workload = 'a';  // 'a'..'f'
  u64 record_count = 30'000;
  u64 op_count = 10'000;
  /// YCSB default record: 10 fields x 100 bytes.
  u32 value_bytes = 1'000;
  u32 scan_max_len = 100;
  /// Client-side CPU per operation (YCSB core + DB API glue).
  SimTime client_cpu_ns = 2'500;
  u64 seed = 1;
};

struct YcsbResult {
  double ops_per_sec = 0;
  u64 ops = 0;
  u64 failures = 0;
  LatencyHistogram lat;
  SimTime elapsed = 0;
};

class Ycsb {
 public:
  /// Loads `record_count` records (sequential inserts), completing via
  /// `done`. Keys are "user<n>"; values are deterministic pseudo-random
  /// bytes so read-back correctness is checkable.
  static void Load(kv::MiniKv* db, const YcsbConfig& cfg,
                   std::function<void(Status)> done);

  /// Runs the op mix on an opened+loaded store; one closed-loop client
  /// on `client_cpu`. Asynchronous; result delivered via `done`.
  static void Run(sim::Simulator* sim, kv::MiniKv* db,
                  sim::VCpu* client_cpu, const YcsbConfig& cfg,
                  std::function<void(YcsbResult)> done);

  /// Deterministic value for a key (load-time contents).
  static std::string ValueFor(u64 keynum, u32 value_bytes);
  static std::string KeyFor(u64 keynum);
};

}  // namespace nvmetro::workload

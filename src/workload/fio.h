// fio-style benchmark harness (paper §V-A, Table II).
//
// Reproduces fio's closed-loop queue-depth model: each job keeps
// `queue_depth` requests in flight against a StorageSolution, choosing
// offsets randomly or sequentially over its region, optionally rate
// limited (the fixed-10K-IOPS latency experiments of Figure 4). Results
// report IOPS, bandwidth, latency percentiles and CPU over an explicit
// measurement window after warmup.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "baselines/solution.h"
#include "common/histogram.h"
#include "common/rng.h"

namespace nvmetro::workload {

enum class FioMode {
  kRandRead,
  kRandWrite,
  kRandRW,
  kSeqRead,
  kSeqWrite,
  kSeqRW,
};

/// fio-style short names: RR, RW, RRW, SR, SW, SRW.
const char* FioModeName(FioMode mode);
bool FioModeIsRandom(FioMode mode);

struct FioConfig {
  u64 block_size = 4096;
  u32 queue_depth = 1;
  u32 num_jobs = 1;
  FioMode mode = FioMode::kRandRead;
  /// Read share for the mixed modes (fio randrw default 50/50).
  double read_fraction = 0.5;
  /// Fixed total request rate (0 = unbounded closed loop).
  double rate_iops = 0;
  /// Random jobs address this many bytes (from the device start).
  u64 random_region = 1 * GiB;
  /// Sequential jobs loop over a private region of this size each.
  /// Larger than the QEMU host page cache, as the paper's fio files
  /// exceed host RAM: buffered reads win through bigger device commands
  /// (readahead), not through cache residency.
  u64 seq_region_per_job = 768 * MiB;
  SimTime warmup = 60 * kMs;
  SimTime duration = 240 * kMs;
  u64 seed = 99;
};

struct FioResult {
  std::string solution;
  double iops = 0;
  double mbps = 0;
  u64 ops = 0;
  u64 errors = 0;
  LatencyHistogram lat;        // all ops
  LatencyHistogram read_lat;
  LatencyHistogram write_lat;
  /// CPU percent of one core over the measurement window.
  double guest_cpu_pct = 0;
  double host_cpu_pct = 0;
  double total_cpu_pct() const { return guest_cpu_pct + host_cpu_pct; }
};

class Fio {
 public:
  /// Runs the workload on all solutions concurrently (same simulator!)
  /// and returns per-solution results. Used directly for the multi-VM
  /// scalability experiment; Run() wraps the single-solution case.
  static std::vector<FioResult> RunMulti(
      sim::Simulator* sim,
      const std::vector<baselines::StorageSolution*>& solutions,
      const FioConfig& cfg);

  static FioResult Run(sim::Simulator* sim,
                       baselines::StorageSolution* solution,
                       const FioConfig& cfg) {
    return RunMulti(sim, {solution}, cfg)[0];
  }
};

}  // namespace nvmetro::workload

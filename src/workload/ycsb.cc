#include "workload/ycsb.h"

#include <memory>

namespace nvmetro::workload {

std::string Ycsb::KeyFor(u64 keynum) {
  char buf[32];
  snprintf(buf, sizeof(buf), "user%012llu", (unsigned long long)keynum);
  return buf;
}

std::string Ycsb::ValueFor(u64 keynum, u32 value_bytes) {
  std::string v(value_bytes, 0);
  Rng rng(keynum * 2654435761ull + 17);
  rng.Fill(v.data(), v.size());
  // Keep it printable-ish to catch truncation bugs in parsing.
  for (auto& c : v) c = static_cast<char>('a' + (static_cast<u8>(c) % 26));
  return v;
}

namespace {
struct LoadCtx {
  kv::MiniKv* db;
  YcsbConfig cfg;
  u64 next = 0;
  std::function<void(Status)> done;
};

void LoadStep(std::shared_ptr<LoadCtx> ctx) {
  if (ctx->next >= ctx->cfg.record_count) {
    ctx->done(OkStatus());
    return;
  }
  u64 n = ctx->next++;
  ctx->db->Put(Ycsb::KeyFor(n),
               Ycsb::ValueFor(n, ctx->cfg.value_bytes),
               [ctx](Status st) {
                 if (!st.ok()) {
                   ctx->done(st);
                   return;
                 }
                 LoadStep(ctx);
               });
}
}  // namespace

void Ycsb::Load(kv::MiniKv* db, const YcsbConfig& cfg,
                std::function<void(Status)> done) {
  auto ctx = std::make_shared<LoadCtx>();
  ctx->db = db;
  ctx->cfg = cfg;
  ctx->done = std::move(done);
  LoadStep(std::move(ctx));
}

namespace {

struct RunCtx {
  sim::Simulator* sim;
  kv::MiniKv* db;
  sim::VCpu* cpu;
  YcsbConfig cfg;
  std::function<void(YcsbResult)> done;

  Rng rng{1};
  std::unique_ptr<ScrambledZipfianGenerator> zipf;
  std::unique_ptr<LatestGenerator> latest;
  u64 record_count = 0;
  u64 ops_done = 0;
  SimTime started = 0;
  YcsbResult result;

  u64 NextKeynum() {
    if (cfg.workload == 'd') {
      return latest->Next();
    }
    return zipf->Next();
  }
};

void NextOp(std::shared_ptr<RunCtx> ctx);

void OpDone(std::shared_ptr<RunCtx> ctx, SimTime issued, bool ok) {
  ctx->result.lat.Record(ctx->sim->now() - issued);
  if (!ok) ctx->result.failures++;
  ctx->ops_done++;
  if (ctx->ops_done >= ctx->cfg.op_count) {
    ctx->result.ops = ctx->ops_done;
    ctx->result.elapsed = ctx->sim->now() - ctx->started;
    ctx->result.ops_per_sec =
        static_cast<double>(ctx->ops_done) /
        (static_cast<double>(ctx->result.elapsed) / 1e9);
    ctx->done(std::move(ctx->result));
    return;
  }
  NextOp(ctx);
}

void DoInsert(std::shared_ptr<RunCtx> ctx, SimTime issued) {
  u64 n = ctx->record_count++;
  if (ctx->cfg.workload == 'd') {
    ctx->latest->SetItemCount(ctx->record_count);
  } else {
    ctx->zipf->SetItemCount(ctx->record_count);
  }
  ctx->db->Put(Ycsb::KeyFor(n), Ycsb::ValueFor(n, ctx->cfg.value_bytes),
               [ctx, issued](Status st) { OpDone(ctx, issued, st.ok()); });
}

void NextOp(std::shared_ptr<RunCtx> ctx) {
  ctx->cpu->Run(ctx->cfg.client_cpu_ns, [ctx] {
    SimTime issued = ctx->sim->now();
    double p = ctx->rng.NextDouble();
    switch (ctx->cfg.workload) {
      case 'a': {
        if (p < 0.5) {
          ctx->db->Get(Ycsb::KeyFor(ctx->NextKeynum()),
                       [ctx, issued](Result<std::string> r) {
                         OpDone(ctx, issued, r.ok());
                       });
        } else {
          u64 k = ctx->NextKeynum();
          ctx->db->Put(Ycsb::KeyFor(k),
                       Ycsb::ValueFor(k + 7, ctx->cfg.value_bytes),
                       [ctx, issued](Status st) {
                         OpDone(ctx, issued, st.ok());
                       });
        }
        return;
      }
      case 'b':
      case 'c': {
        double read_share = ctx->cfg.workload == 'b' ? 0.95 : 1.0;
        if (p < read_share) {
          ctx->db->Get(Ycsb::KeyFor(ctx->NextKeynum()),
                       [ctx, issued](Result<std::string> r) {
                         OpDone(ctx, issued, r.ok());
                       });
        } else {
          u64 k = ctx->NextKeynum();
          ctx->db->Put(Ycsb::KeyFor(k),
                       Ycsb::ValueFor(k + 7, ctx->cfg.value_bytes),
                       [ctx, issued](Status st) {
                         OpDone(ctx, issued, st.ok());
                       });
        }
        return;
      }
      case 'd': {
        if (p < 0.95) {
          ctx->db->Get(Ycsb::KeyFor(ctx->NextKeynum()),
                       [ctx, issued](Result<std::string> r) {
                         OpDone(ctx, issued, r.ok());
                       });
        } else {
          DoInsert(ctx, issued);
        }
        return;
      }
      case 'e': {
        if (p < 0.95) {
          u64 start = ctx->NextKeynum();
          u32 len = 1 + static_cast<u32>(
                            ctx->rng.NextBounded(ctx->cfg.scan_max_len));
          ctx->db->Scan(Ycsb::KeyFor(start), len,
                        [ctx, issued](Result<kv::MiniKv::ScanResult> r) {
                          OpDone(ctx, issued, r.ok());
                        });
        } else {
          DoInsert(ctx, issued);
        }
        return;
      }
      case 'f':
      default: {
        if (p < 0.5) {
          ctx->db->Get(Ycsb::KeyFor(ctx->NextKeynum()),
                       [ctx, issued](Result<std::string> r) {
                         OpDone(ctx, issued, r.ok());
                       });
        } else {
          // Read-modify-write.
          u64 k = ctx->NextKeynum();
          ctx->db->Get(
              Ycsb::KeyFor(k), [ctx, issued, k](Result<std::string> r) {
                std::string v = r.ok() ? *r : std::string();
                if (!v.empty()) v[0] = static_cast<char>(v[0] ^ 1);
                ctx->db->Put(Ycsb::KeyFor(k),
                             v.empty() ? Ycsb::ValueFor(
                                             k, ctx->cfg.value_bytes)
                                       : v,
                             [ctx, issued](Status st) {
                               OpDone(ctx, issued, st.ok());
                             });
              });
        }
        return;
      }
    }
  });
}

}  // namespace

void Ycsb::Run(sim::Simulator* sim, kv::MiniKv* db, sim::VCpu* client_cpu,
               const YcsbConfig& cfg, std::function<void(YcsbResult)> done) {
  auto ctx = std::make_shared<RunCtx>();
  ctx->sim = sim;
  ctx->db = db;
  ctx->cpu = client_cpu;
  ctx->cfg = cfg;
  ctx->done = std::move(done);
  ctx->rng = Rng(cfg.seed * 77 + 5);
  ctx->record_count = cfg.record_count;
  ctx->zipf = std::make_unique<ScrambledZipfianGenerator>(
      cfg.record_count, 0.99, cfg.seed + 3);
  ctx->latest =
      std::make_unique<LatestGenerator>(cfg.record_count, cfg.seed + 4);
  ctx->started = sim->now();
  NextOp(ctx);
}

}  // namespace nvmetro::workload

#include "workload/solution_fs.h"

#include <cstring>
#include <memory>

namespace nvmetro::workload {

using baselines::StorageSolution;

SolutionFsBackend::SolutionFsBackend(StorageSolution* sol, u32 job,
                                     u64 base_offset, u64 size)
    : sol_(sol), job_(job), base_(base_offset), size_(size) {}

void SolutionFsBackend::Read(u64 offset, void* buf, u64 len, Callback done) {
  if (offset + len > size_) {
    done(OutOfRange("fs backend read out of range"));
    return;
  }
  u64 first = offset / kSector * kSector;
  u64 last = (offset + len + kSector - 1) / kSector * kSector;
  if (first == offset && last == offset + len) {
    sol_->Submit(job_, StorageSolution::Op::kRead, base_ + offset, len, buf,
                 std::move(done));
    return;
  }
  // Unaligned: read the covering sectors and copy the middle out.
  auto bounce = std::make_shared<std::vector<u8>>(last - first);
  u64 head = offset - first;
  sol_->Submit(job_, StorageSolution::Op::kRead, base_ + first,
               bounce->size(), bounce->data(),
               [bounce, buf, head, len, done = std::move(done)](Status st) {
                 if (st.ok()) {
                   std::memcpy(buf, bounce->data() + head, len);
                 }
                 done(st);
               });
}

void SolutionFsBackend::Write(u64 offset, const void* buf, u64 len,
                              Callback done) {
  if (offset + len > size_) {
    done(OutOfRange("fs backend write out of range"));
    return;
  }
  EnqueueWrite(offset, buf, len, std::move(done));
}

void SolutionFsBackend::EnqueueWrite(u64 offset, const void* buf, u64 len,
                                     Callback done) {
  // Writes are serialized: unaligned writes need read-modify-write, and
  // overlapping RMWs of the same sectors would corrupt data (a page
  // cache serializes per-page in the same way).
  write_queue_.push_back({offset, buf, len, std::move(done)});
  PumpWrites();
}

void SolutionFsBackend::PumpWrites() {
  if (write_active_ || write_queue_.empty()) return;
  write_active_ = true;
  PendingWrite w = std::move(write_queue_.front());
  write_queue_.pop_front();
  DoWrite(w.offset, w.buf, w.len,
          [this, done = std::move(w.done)](Status st) {
            done(st);
            write_active_ = false;
            PumpWrites();
          });
}

void SolutionFsBackend::DoWrite(u64 offset, const void* buf, u64 len,
                                Callback done) {
  u64 first = offset / kSector * kSector;
  u64 last = (offset + len + kSector - 1) / kSector * kSector;
  if (first == offset && last == offset + len) {
    sol_->Submit(job_, StorageSolution::Op::kWrite, base_ + offset, len,
                 const_cast<void*>(buf), std::move(done));
    return;
  }
  rmw_writes_++;
  auto bounce = std::make_shared<std::vector<u8>>(last - first);
  u64 head = offset - first;
  sol_->Submit(
      job_, StorageSolution::Op::kRead, base_ + first, bounce->size(),
      bounce->data(),
      [this, bounce, buf, head, len, first,
       done = std::move(done)](Status st) {
        if (!st.ok()) {
          done(st);
          return;
        }
        std::memcpy(bounce->data() + head, buf, len);
        sol_->Submit(job_, StorageSolution::Op::kWrite, base_ + first,
                     bounce->size(), bounce->data(),
                     [bounce, done](Status st2) { done(st2); });
      });
}

void SolutionFsBackend::Flush(Callback done) {
  sol_->Submit(job_, StorageSolution::Op::kFlush, 0, 0, nullptr,
               std::move(done));
}

}  // namespace nvmetro::workload

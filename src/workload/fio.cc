#include "workload/fio.h"

#include <algorithm>
#include <memory>

namespace nvmetro::workload {

using baselines::StorageSolution;

const char* FioModeName(FioMode mode) {
  switch (mode) {
    case FioMode::kRandRead: return "RR";
    case FioMode::kRandWrite: return "RW";
    case FioMode::kRandRW: return "RRW";
    case FioMode::kSeqRead: return "SR";
    case FioMode::kSeqWrite: return "SW";
    case FioMode::kSeqRW: return "SRW";
  }
  return "?";
}

bool FioModeIsRandom(FioMode mode) {
  return mode == FioMode::kRandRead || mode == FioMode::kRandWrite ||
         mode == FioMode::kRandRW;
}

namespace {

struct JobState {
  StorageSolution* sol = nullptr;
  u32 job_idx = 0;
  Rng rng{1};
  u64 region_off = 0;
  u64 region_len = 0;
  u64 seq_pos = 0;
  u32 inflight = 0;
  bool stopped = false;
  FioResult* result = nullptr;
  const FioConfig* cfg = nullptr;
  sim::Simulator* sim = nullptr;
  SimTime window_start = 0, window_end = 0;
  u64 ops_in_window = 0;
};

void IssueOne(std::shared_ptr<JobState> js);

void OnComplete(std::shared_ptr<JobState> js, SimTime issued_at, bool is_read,
                Status st) {
  js->inflight--;
  SimTime now = js->sim->now();
  if (now >= js->window_start && now < js->window_end) {
    if (!st.ok()) {
      js->result->errors++;
    } else {
      js->ops_in_window++;
      u64 latency = now - issued_at;
      js->result->lat.Record(latency);
      if (is_read) {
        js->result->read_lat.Record(latency);
      } else {
        js->result->write_lat.Record(latency);
      }
    }
  }
  // Closed loop: replace the completed request (rate mode issues from its
  // own timer instead).
  if (!js->stopped && js->cfg->rate_iops == 0) IssueOne(js);
}

void IssueOne(std::shared_ptr<JobState> js) {
  if (js->stopped) return;
  const FioConfig& cfg = *js->cfg;
  bool is_read;
  switch (cfg.mode) {
    case FioMode::kRandRead:
    case FioMode::kSeqRead:
      is_read = true;
      break;
    case FioMode::kRandWrite:
    case FioMode::kSeqWrite:
      is_read = false;
      break;
    default:
      is_read = js->rng.NextBool(cfg.read_fraction);
  }
  u64 blocks_in_region = js->region_len / cfg.block_size;
  u64 offset;
  if (FioModeIsRandom(cfg.mode)) {
    offset = js->region_off +
             js->rng.NextBounded(blocks_in_region) * cfg.block_size;
  } else {
    offset = js->region_off + js->seq_pos;
    js->seq_pos += cfg.block_size;
    if (js->seq_pos + cfg.block_size > js->region_len) js->seq_pos = 0;
  }
  js->inflight++;
  SimTime issued_at = js->sim->now();
  js->sol->Submit(js->job_idx,
                  is_read ? StorageSolution::Op::kRead
                          : StorageSolution::Op::kWrite,
                  offset, cfg.block_size, nullptr,
                  [js, issued_at, is_read](Status st) {
                    OnComplete(js, issued_at, is_read, st);
                  });
}

void ArmRateTimer(std::shared_ptr<JobState> js, SimTime interval) {
  if (js->stopped) return;
  js->sim->ScheduleAfter(interval, [js, interval] {
    if (js->stopped) return;
    // fio rate mode: issue on schedule; bounded outstanding.
    if (js->inflight < js->cfg->queue_depth * 4) IssueOne(js);
    ArmRateTimer(js, interval);
  });
}

}  // namespace

std::vector<FioResult> Fio::RunMulti(
    sim::Simulator* sim,
    const std::vector<baselines::StorageSolution*>& solutions,
    const FioConfig& cfg) {
  std::vector<FioResult> results(solutions.size());
  std::vector<std::shared_ptr<JobState>> jobs;

  SimTime t0 = sim->now();
  SimTime window_start = t0 + cfg.warmup;
  SimTime window_end = window_start + cfg.duration;

  std::vector<u64> guest_cpu0(solutions.size()), host_cpu0(solutions.size());

  for (usize s = 0; s < solutions.size(); s++) {
    StorageSolution* sol = solutions[s];
    results[s].solution = sol->name();
    u64 cap = sol->capacity_bytes();
    for (u32 j = 0; j < cfg.num_jobs; j++) {
      auto js = std::make_shared<JobState>();
      js->sol = sol;
      js->job_idx = j;
      js->rng = Rng(cfg.seed * 1000003 + s * 1009 + j);
      js->cfg = &cfg;
      js->sim = sim;
      js->result = &results[s];
      js->window_start = window_start;
      js->window_end = window_end;
      if (FioModeIsRandom(cfg.mode)) {
        js->region_off = 0;
        js->region_len = std::min(cfg.random_region, cap);
      } else {
        u64 region = std::min(cfg.seq_region_per_job,
                              cap / std::max<u32>(1, cfg.num_jobs));
        js->region_off = j * region;
        js->region_len = region;
      }
      // Offset sequential streams so jobs do not start in lockstep.
      js->seq_pos = 0;
      jobs.push_back(js);
    }
  }

  // CPU snapshots at window start.
  sim->ScheduleAt(window_start, [&, solutions] {
    for (usize s = 0; s < solutions.size(); s++) {
      guest_cpu0[s] = solutions[s]->vm()->TotalCpuBusyNs();
      host_cpu0[s] = solutions[s]->HostAgentCpuNs();
    }
  });

  // Kick off.
  if (cfg.rate_iops > 0) {
    double per_job = cfg.rate_iops /
                     static_cast<double>(jobs.size());
    auto interval = static_cast<SimTime>(1e9 / per_job);
    for (usize i = 0; i < jobs.size(); i++) {
      // Stagger start phases deterministically.
      SimTime phase = interval * i / jobs.size();
      sim->ScheduleAfter(phase, [js = jobs[i], interval] {
        IssueOne(js);
        ArmRateTimer(js, interval);
      });
    }
  } else {
    for (auto& js : jobs) {
      for (u32 q = 0; q < cfg.queue_depth; q++) IssueOne(js);
    }
  }

  sim->RunUntil(window_end);
  for (auto& js : jobs) js->stopped = true;

  // CPU deltas and rates.
  double secs = static_cast<double>(cfg.duration) / 1e9;
  for (usize s = 0; s < solutions.size(); s++) {
    u64 ops = 0;
    for (auto& js : jobs) {
      if (js->sol == solutions[s]) ops += js->ops_in_window;
    }
    results[s].ops = ops;
    results[s].iops = static_cast<double>(ops) / secs;
    results[s].mbps = results[s].iops *
                      static_cast<double>(cfg.block_size) / 1e6;
    u64 guest = solutions[s]->vm()->TotalCpuBusyNs() - guest_cpu0[s];
    u64 host = solutions[s]->HostAgentCpuNs() - host_cpu0[s];
    results[s].guest_cpu_pct =
        static_cast<double>(guest) / static_cast<double>(cfg.duration) * 100;
    results[s].host_cpu_pct =
        static_cast<double>(host) / static_cast<double>(cfg.duration) * 100;
  }
  // Let stragglers drain so a subsequent run starts clean.
  sim->RunFor(20 * kMs);
  return results;
}

}  // namespace nvmetro::workload

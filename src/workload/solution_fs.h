// FsBackend adapter: runs a FlatFs (and MiniKv above it) on top of any
// StorageSolution — the "guest filesystem on the virtual disk" piece of
// the YCSB evaluations.
//
// The block device is sector-addressed; unaligned filesystem writes go
// through a serialized read-modify-write path (what the guest page cache
// would absorb). Each backend instance carves a byte range of the device,
// so parallel YCSB jobs can run isolated DB instances on one disk.
#pragma once

#include <deque>

#include "baselines/solution.h"
#include "fsx/flatfs.h"

namespace nvmetro::workload {

class SolutionFsBackend : public fsx::FsBackend {
 public:
  /// Operates on [base_offset, base_offset+size) of the solution's disk,
  /// issuing I/O as guest job `job`.
  SolutionFsBackend(baselines::StorageSolution* sol, u32 job,
                    u64 base_offset, u64 size);

  void Read(u64 offset, void* buf, u64 len, Callback done) override;
  void Write(u64 offset, const void* buf, u64 len, Callback done) override;
  void Flush(Callback done) override;
  u64 capacity() const override { return size_; }

  u64 rmw_writes() const { return rmw_writes_; }

 private:
  static constexpr u64 kSector = 512;

  void EnqueueWrite(u64 offset, const void* buf, u64 len, Callback done);
  void PumpWrites();
  void DoWrite(u64 offset, const void* buf, u64 len, Callback done);

  baselines::StorageSolution* sol_;
  u32 job_;
  u64 base_;
  u64 size_;
  u64 rmw_writes_ = 0;

  struct PendingWrite {
    u64 offset;
    const void* buf;
    u64 len;
    Callback done;
  };
  std::deque<PendingWrite> write_queue_;
  bool write_active_ = false;
};

}  // namespace nvmetro::workload

// io_uring-style asynchronous I/O for UIFs.
//
// The paper's UIFs write data to disk "with io_uring" (Listing 2): the
// caller queues an iovec ticket against a disk sector and gets an
// asynchronous completion. Here the ring is modeled over the host block
// layer with io_uring's cost profile (cheap submissions, batched
// completion reaping on the caller's thread).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "kblock/bio.h"
#include "sim/simulator.h"
#include "sim/vcpu.h"

namespace nvmetro::uif {

/// An asynchronous I/O ticket: iovecs plus caller context, as in the
/// paper's `iovec_ticket`.
struct IovecTicket {
  u32 tag = 0;
  std::vector<std::pair<const void*, u64>> iovecs;
  /// Completion callback (runs on the ring's thread).
  std::function<void(Status)> done;
};

struct UringParams {
  /// CPU to queue one SQE (no syscall on the hot path with SQPOLL off but
  /// batched enter; amortized).
  SimTime submit_cpu_ns = 600;
  /// CPU to reap one CQE.
  SimTime complete_cpu_ns = 350;
};

class Uring {
 public:
  /// I/O lands on `dev` (typically the host NVMe block device for the
  /// backend namespace); CPU costs are charged to `cpu` (the UIF thread).
  Uring(sim::Simulator* sim, kblock::BlockDevice* dev, sim::VCpu* cpu,
        UringParams params = {});

  /// Writes the ticket's iovecs at `sector`; takes ownership.
  void QueueWritev(std::unique_ptr<IovecTicket> ticket, u64 sector);

  /// Reads into the ticket's iovecs from `sector`.
  void QueueReadv(std::unique_ptr<IovecTicket> ticket, u64 sector);

  /// Issues a flush.
  void QueueFsync(std::function<void(Status)> done);

  u64 submitted() const { return submitted_; }
  u64 completed() const { return completed_; }

 private:
  void Queue(std::unique_ptr<IovecTicket> ticket, u64 sector, bool write);

  sim::Simulator* sim_;
  kblock::BlockDevice* dev_;
  sim::VCpu* cpu_;
  UringParams params_;
  u64 submitted_ = 0;
  u64 completed_ = 0;
};

}  // namespace nvmetro::uif

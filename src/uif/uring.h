// io_uring-style asynchronous I/O for UIFs.
//
// The paper's UIFs write data to disk "with io_uring" (Listing 2): the
// caller queues an iovec ticket against a disk sector and gets an
// asynchronous completion. Here the ring is modeled over the host block
// layer with io_uring's cost profile (cheap submissions, batched
// completion reaping on the caller's thread).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "kblock/bio.h"
#include "sim/simulator.h"
#include "sim/vcpu.h"

namespace nvmetro::uif {

/// An asynchronous I/O ticket: iovecs plus caller context, as in the
/// paper's `iovec_ticket`.
struct IovecTicket {
  u32 tag = 0;
  std::vector<std::pair<const void*, u64>> iovecs;
  /// Completion callback (runs on the ring's thread).
  std::function<void(Status)> done;
};

struct UringParams {
  /// CPU to queue one SQE (no syscall on the hot path with SQPOLL off but
  /// batched enter; amortized).
  SimTime submit_cpu_ns = 600;
  /// CPU to reap one CQE.
  SimTime complete_cpu_ns = 350;
  /// Batched submission (DESIGN.md §10): with submit_batch > 1, Queue*()
  /// stages SQEs and they are issued by one io_uring_enter per batch —
  /// either when the batch fills, at an explicit Flush(), or at the
  /// automatic end-of-event flush. 0/1 = legacy per-op submission.
  u32 submit_batch = 1;
  /// The io_uring_enter part of submit_cpu_ns, charged once per flushed
  /// batch; each staged op pays submit_cpu_ns - enter_cpu_ns of SQE prep,
  /// so a batch of one costs exactly submit_cpu_ns.
  SimTime enter_cpu_ns = 250;
};

class Uring {
 public:
  /// I/O lands on `dev` (typically the host NVMe block device for the
  /// backend namespace); CPU costs are charged to `cpu` (the UIF thread).
  Uring(sim::Simulator* sim, kblock::BlockDevice* dev, sim::VCpu* cpu,
        UringParams params = {});

  /// Writes the ticket's iovecs at `sector`; takes ownership.
  void QueueWritev(std::unique_ptr<IovecTicket> ticket, u64 sector);

  /// Reads into the ticket's iovecs from `sector`.
  void QueueReadv(std::unique_ptr<IovecTicket> ticket, u64 sector);

  /// Issues a flush.
  void QueueFsync(std::function<void(Status)> done);

  /// Issues every staged SQE with one io_uring_enter. No-op when nothing
  /// is staged or batching is off. Ops also auto-flush when the batch
  /// fills and at the end of the current simulation event, so callers
  /// never have to flush for correctness — only for latency control.
  void Flush();

  u64 submitted() const { return submitted_; }
  u64 completed() const { return completed_; }
  /// SQEs staged but not yet entered (0 when batching is off).
  usize staged() const { return staged_.size(); }
  /// io_uring_enter calls performed for batched submissions.
  u64 enters() const { return enters_; }

 private:
  void Queue(std::unique_ptr<IovecTicket> ticket, u64 sector, bool write);
  /// Stages an issue closure; schedules the end-of-event auto-flush.
  void Stage(std::function<void()> issue);

  sim::Simulator* sim_;
  kblock::BlockDevice* dev_;
  sim::VCpu* cpu_;
  UringParams params_;
  u64 submitted_ = 0;
  u64 completed_ = 0;
  u64 enters_ = 0;
  std::vector<std::function<void()>> staged_;
  bool flush_scheduled_ = false;
};

}  // namespace nvmetro::uif

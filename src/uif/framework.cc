#include "uif/framework.h"

#include "core/shard.h"
#include "obs/obs.h"

namespace nvmetro::uif {

namespace {
/// Flight record for a UIF-side edge. The UIF runs outside the router's
/// per-request state, so the ring is resolved from the routing tag's
/// shard bits and the delta carries the recompute-from-timestamps
/// sentinel.
void FlightUifEdge(obs::Observability* obs, SimTime now, u64 req_id, u32 tag,
                   u32 vm_id, obs::SpanKind kind, u16 status, u8 opcode) {
  obs::FlightRecorder* flight = obs->flight();
  if (!flight) return;
  obs::FlightRing* fr = flight->Find(vm_id, core::TagShard(tag));
  if (!fr) return;
  obs::FlightRecord r;
  r.t = now;
  r.req_id = req_id;
  r.delta_ns = obs::kFlightDeltaUnknown;
  r.status = status;
  r.tag_lo = static_cast<u16>(tag);
  r.edge = static_cast<u8>(kind);
  r.opcode = opcode;
  r.tenant = static_cast<u8>(vm_id);
  fr->Record(r);
}
}  // namespace

void UifFunction::Respond(u32 tag, u16 status) {
  responses_++;
  if (m_responses_) m_responses_->Inc();
  if (obs_) {
    auto it = inflight_.find(tag);
    if (it != inflight_.end()) {
      obs::TraceEvent ev;
      ev.req_id = it->second;
      ev.t = host_->simulator()->now();
      ev.vm_id = channel_->vm_id();
      ev.status = status;
      ev.kind = obs::SpanKind::kUifRespond;
      obs_->trace().Record(ev);
      FlightUifEdge(obs_, ev.t, it->second, tag, channel_->vm_id(),
                    obs::SpanKind::kUifRespond, status, 0);
      inflight_.erase(it);
    }
  }
  core::NotifyCompletion c;
  c.tag = tag;
  c.status = status;
  channel_->PushCompletion(c);
}

UifHost::UifHost(sim::Simulator* sim, std::string name, UifHostParams params)
    : sim_(sim), name_(std::move(name)), params_(params) {
  for (u32 i = 0; i < std::max<u32>(1, params_.threads); i++) {
    cpus_.push_back(std::make_unique<sim::VCpu>(
        sim_, name_ + ".uif" + std::to_string(i)));
  }
  sim::Poller::Options opts;
  opts.dispatch_cost = params_.dispatch_cost_ns;
  opts.adaptive = params_.adaptive;
  opts.idle_timeout = params_.idle_timeout_ns;
  opts.wakeup_latency = params_.wakeup_latency_ns;
  opts.obs = params_.obs;
  opts.metrics_name = name_ + ".poller";
  poller_ = std::make_unique<sim::Poller>(sim_, cpus_[0].get(), opts);
}

UifFunction* UifHost::AddFunction(core::NotifyChannel* channel, virt::Vm* vm,
                                  UifBase* impl) {
  auto fn = std::make_unique<UifFunction>();
  fn->channel_ = channel;
  fn->impl_ = impl;
  fn->vm_ = vm;
  fn->host_ = this;
  if (params_.obs) {
    fn->obs_ = params_.obs;
    fn->m_requests_ = params_.obs->metrics().GetCounter("uif.requests");
    fn->m_responses_ = params_.obs->metrics().GetCounter("uif.responses");
    fn->m_backlog_ = params_.obs->metrics().GetGauge("uif.nsq.backlog");
  }
  impl->function_ = fn.get();
  usize index = functions_.size();
  u32 src = poller_->AddSource([this, index] { PollChannel(index); });
  sources_.push_back(src);
  channel->SetRequestNotify([this, src] { poller_->Notify(src); });
  functions_.push_back(std::move(fn));
  return functions_.back().get();
}

sim::VCpu* UifHost::PickWorker() {
  sim::VCpu* best = cpus_[0].get();
  for (auto& c : cpus_) {
    if (c->free_at() < best->free_at()) best = c.get();
  }
  return best;
}

u64 UifHost::TotalCpuBusyNs() const {
  u64 sum = 0;
  for (const auto& c : cpus_) sum += c->busy_ns();
  return sum;
}

void UifHost::PollChannel(usize index) {
  UifFunction& fn = *functions_[index];
  // Batched harvest (DESIGN.md §10): drain up to max_batch NSQ entries
  // per dispatch. With max_batch == 1 this is exactly the classic
  // one-command-per-dispatch loop.
  u32 budget = std::max<u32>(1, params_.max_batch);
  if (fn.m_backlog_) {
    fn.m_backlog_->Set(static_cast<i64>(fn.channel_->PendingRequests()));
  }
  core::NotifyEntry entry;
  u32 handled = 0;
  while (handled < budget && fn.channel_->PopRequest(&entry)) {
    handled++;
    fn.requests_++;
    if (fn.m_requests_) fn.m_requests_->Inc();
    poll_cpu()->Charge(params_.per_req_parse_ns);
    if (fn.obs_ && entry.req_id) {
      fn.inflight_[entry.tag] = entry.req_id;
      obs::TraceEvent ev;
      ev.req_id = entry.req_id;
      ev.t = sim_->now();
      ev.aux = entry.sqe.opcode;
      ev.vm_id = entry.vm_id;
      ev.kind = obs::SpanKind::kUifWork;
      fn.obs_->trace().Record(ev);
      FlightUifEdge(fn.obs_, ev.t, entry.req_id, entry.tag, entry.vm_id,
                    obs::SpanKind::kUifWork, 0, entry.sqe.opcode);
    }
    u16 status = nvme::kStatusSuccess;
    bool async = fn.impl_->work(entry.sqe, entry.tag, status);
    if (!async) fn.Respond(entry.tag, status);
  }
  if (fn.m_backlog_) {
    fn.m_backlog_->Set(static_cast<i64>(fn.channel_->PendingRequests()));
  }
  if (handled && fn.channel_->PendingRequests() > 0) {
    poller_->Notify(sources_[index]);
  }
}

}  // namespace nvmetro::uif

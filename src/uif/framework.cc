#include "uif/framework.h"

namespace nvmetro::uif {

void UifFunction::Respond(u32 tag, u16 status) {
  responses_++;
  core::NotifyCompletion c;
  c.tag = tag;
  c.status = status;
  channel_->PushCompletion(c);
}

UifHost::UifHost(sim::Simulator* sim, std::string name, UifHostParams params)
    : sim_(sim), name_(std::move(name)), params_(params) {
  for (u32 i = 0; i < std::max<u32>(1, params_.threads); i++) {
    cpus_.push_back(std::make_unique<sim::VCpu>(
        sim_, name_ + ".uif" + std::to_string(i)));
  }
  sim::Poller::Options opts;
  opts.dispatch_cost = params_.dispatch_cost_ns;
  opts.adaptive = params_.adaptive;
  opts.idle_timeout = params_.idle_timeout_ns;
  opts.wakeup_latency = params_.wakeup_latency_ns;
  poller_ = std::make_unique<sim::Poller>(sim_, cpus_[0].get(), opts);
}

UifFunction* UifHost::AddFunction(core::NotifyChannel* channel, virt::Vm* vm,
                                  UifBase* impl) {
  auto fn = std::make_unique<UifFunction>();
  fn->channel_ = channel;
  fn->impl_ = impl;
  fn->vm_ = vm;
  fn->host_ = this;
  impl->function_ = fn.get();
  usize index = functions_.size();
  u32 src = poller_->AddSource([this, index] { PollChannel(index); });
  sources_.push_back(src);
  channel->SetRequestNotify([this, src] { poller_->Notify(src); });
  functions_.push_back(std::move(fn));
  return functions_.back().get();
}

sim::VCpu* UifHost::PickWorker() {
  sim::VCpu* best = cpus_[0].get();
  for (auto& c : cpus_) {
    if (c->free_at() < best->free_at()) best = c.get();
  }
  return best;
}

u64 UifHost::TotalCpuBusyNs() const {
  u64 sum = 0;
  for (const auto& c : cpus_) sum += c->busy_ns();
  return sum;
}

void UifHost::PollChannel(usize index) {
  UifFunction& fn = *functions_[index];
  core::NotifyEntry entry;
  if (!fn.channel_->PopRequest(&entry)) return;
  fn.requests_++;
  poll_cpu()->Charge(params_.per_req_parse_ns);
  u16 status = nvme::kStatusSuccess;
  bool async = fn.impl_->work(entry.sqe, entry.tag, status);
  if (!async) fn.Respond(entry.tag, status);
  if (fn.channel_->PendingRequests() > 0) {
    poller_->Notify(sources_[index]);
  }
}

}  // namespace nvmetro::uif

// The UIF framework (paper §III-D).
//
// "To ease the creation of UIFs, we created an UIF framework that
// provides the following services: 1) setting up notify queues and
// io_uring mappings ... 2) configuring polling threads for I/O queues;
// 3) parsing of incoming NVMe commands, as well as reading and writing of
// data pages from the VM; 4) exposure of requests from the VMs as UIF
// events."
//
// A UifHost is one userspace process: it owns the polling thread(s),
// adaptively switching between busy-polling and epoll-assisted waiting,
// and can serve several VMs by hosting multiple UifFunctions (channel +
// implementation pairs) on the same threads — lowering the CPU cost of
// busy polling (§III-D).
//
// A storage function implements UifBase::work(), matching Listing 2:
//
//   bool work(nvme_cmd cmd, u32 tag, u16& status);
//     -> false: the framework responds with `status` immediately;
//     -> true: the implementation responds later via Respond(tag, ...).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/notify.h"
#include "sim/poller.h"
#include "sim/simulator.h"
#include "sim/vcpu.h"
#include "uif/guest_data.h"
#include "virt/vm.h"

namespace nvmetro::obs {
class Counter;
class Gauge;
class Observability;
}  // namespace nvmetro::obs

namespace nvmetro::uif {

class UifFunction;

/// Base class for userspace I/O functions.
class UifBase {
 public:
  virtual ~UifBase() = default;

  /// Handles one command. See file comment for the return contract.
  virtual bool work(const nvme::Sqe& cmd, u32 tag, u16& status) = 0;

  /// The binding this UIF serves (set by the framework before any work()).
  UifFunction* function() const { return function_; }

 private:
  friend class UifHost;
  UifFunction* function_ = nullptr;
};

struct UifHostParams {
  /// Worker threads in this UIF process (paper: non-SGX encryptor uses 2).
  u32 threads = 2;
  /// Framework CPU per request (NSQ pop + command parse + dispatch).
  SimTime per_req_parse_ns = 350;
  /// Adaptive polling knobs (§III-D).
  bool adaptive = true;
  SimTime idle_timeout_ns = 40 * kUs;
  SimTime wakeup_latency_ns = 4 * kUs;
  SimTime dispatch_cost_ns = 130;
  /// NSQ entries harvested per poll dispatch (DESIGN.md §10). 1 = one
  /// command per dispatch; raising it amortizes the dispatch cost over a
  /// burst of router pushes. Per-command parse cost is unchanged.
  u32 max_batch = 1;
  /// Optional metrics + trace sink ("uif.requests"/"uif.responses"
  /// counters, kUifWork/kUifRespond spans, "<name>.poller.*" counters).
  obs::Observability* obs = nullptr;
};

/// One VM <-> UIF binding inside a UifHost.
class UifFunction {
 public:
  /// Sends the NCQ response for a tag.
  void Respond(u32 tag, u16 status);

  /// Parses a command's guest data pages.
  GuestData Parse(const nvme::Sqe& cmd) {
    return GuestData(&vm_->memory(), cmd);
  }

  virt::Vm* vm() const { return vm_; }
  core::NotifyChannel* channel() const { return channel_; }
  /// Partition info from the router (namespace-absolute -> guest LBAs).
  u64 part_first_lba() const { return channel_->part_first_lba(); }

  u64 requests() const { return requests_; }
  u64 responses() const { return responses_; }

  /// The hosting process (for Async offload / uring thread selection).
  class UifHost* host() const { return host_; }

 private:
  friend class UifHost;
  core::NotifyChannel* channel_ = nullptr;
  UifBase* impl_ = nullptr;
  virt::Vm* vm_ = nullptr;
  class UifHost* host_ = nullptr;
  u64 requests_ = 0;
  u64 responses_ = 0;
  // Observability: tag -> trace-span id of requests work()'d but not yet
  // responded, so async Respond() can stamp the right span.
  obs::Observability* obs_ = nullptr;
  obs::Counter* m_requests_ = nullptr;
  obs::Counter* m_responses_ = nullptr;
  // "uif.nsq.backlog": NSQ residency seen by the poller (watermark =
  // deepest backlog a dispatch ever found).
  obs::Gauge* m_backlog_ = nullptr;
  std::map<u32, u64> inflight_;
};

/// A UIF process: polling threads + one or more functions.
class UifHost {
 public:
  UifHost(sim::Simulator* sim, std::string name,
          UifHostParams params = UifHostParams());

  /// Binds a notify channel (from NvmetroHost::AttachUif side) to an
  /// implementation; `vm` provides guest-memory access for data pages.
  UifFunction* AddFunction(core::NotifyChannel* channel, virt::Vm* vm,
                           UifBase* impl);

  void Start() { poller_->Start(); }

  /// Thread 0 (the polling thread).
  sim::VCpu* poll_cpu() { return cpus_[0].get(); }
  /// Least-loaded worker thread, for offloading bulk work (crypto).
  sim::VCpu* PickWorker();
  /// Runs `fn` after `cost` ns of work on the least-loaded thread.
  void Async(SimTime cost, std::function<void()> fn) {
    PickWorker()->Run(cost, std::move(fn));
  }

  sim::Simulator* simulator() { return sim_; }
  u64 TotalCpuBusyNs() const;
  bool sleeping() const { return poller_->sleeping(); }
  const UifHostParams& params() const { return params_; }

 private:
  void PollChannel(usize index);

  sim::Simulator* sim_;
  std::string name_;
  UifHostParams params_;
  std::vector<std::unique_ptr<sim::VCpu>> cpus_;
  std::unique_ptr<sim::Poller> poller_;
  std::vector<std::unique_ptr<UifFunction>> functions_;
  std::vector<u32> sources_;
};

}  // namespace nvmetro::uif

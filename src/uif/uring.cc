#include "uif/uring.h"

namespace nvmetro::uif {

Uring::Uring(sim::Simulator* sim, kblock::BlockDevice* dev, sim::VCpu* cpu,
             UringParams params)
    : sim_(sim), dev_(dev), cpu_(cpu), params_(params) {}

void Uring::Stage(std::function<void()> issue) {
  staged_.push_back(std::move(issue));
  if (staged_.size() >= params_.submit_batch) {
    Flush();
    return;
  }
  if (!flush_scheduled_) {
    // End-of-event auto-flush: every op queued at the same simulated
    // instant shares one io_uring_enter, and nothing can stay staged
    // forever if the caller never flushes explicitly.
    flush_scheduled_ = true;
    sim_->ScheduleAfter(0, [this] {
      flush_scheduled_ = false;
      Flush();
    });
  }
}

void Uring::Flush() {
  if (staged_.empty()) return;
  enters_++;
  auto batch = std::move(staged_);
  staged_.clear();
  cpu_->Run(params_.enter_cpu_ns, [batch = std::move(batch)] {
    for (const auto& issue : batch) issue();
  });
}

void Uring::Queue(std::unique_ptr<IovecTicket> ticket, u64 sector,
                  bool write) {
  submitted_++;
  auto* t = ticket.release();
  auto issue = [this, t, sector, write] {
    kblock::Bio bio;
    bio.op = write ? kblock::Bio::Op::kWrite : kblock::Bio::Op::kRead;
    bio.sector = sector;
    for (const auto& [ptr, len] : t->iovecs) {
      bio.segments.push_back(
          {const_cast<u8*>(static_cast<const u8*>(ptr)), len});
    }
    bio.on_complete = [this, t](Status st) {
      cpu_->Run(params_.complete_cpu_ns, [this, t, st] {
        completed_++;
        std::unique_ptr<IovecTicket> owner(t);
        if (owner->done) owner->done(st);
      });
    };
    dev_->Submit(std::move(bio));
  };
  if (params_.submit_batch <= 1) {
    cpu_->Run(params_.submit_cpu_ns, std::move(issue));
    return;
  }
  // Batched: pay the per-SQE prep now, the enter cost once per flush —
  // calibrated so a flushed batch of one costs exactly submit_cpu_ns.
  cpu_->Charge(params_.submit_cpu_ns > params_.enter_cpu_ns
                   ? params_.submit_cpu_ns - params_.enter_cpu_ns
                   : 0);
  Stage(std::move(issue));
}

void Uring::QueueWritev(std::unique_ptr<IovecTicket> ticket, u64 sector) {
  Queue(std::move(ticket), sector, /*write=*/true);
}

void Uring::QueueReadv(std::unique_ptr<IovecTicket> ticket, u64 sector) {
  Queue(std::move(ticket), sector, /*write=*/false);
}

void Uring::QueueFsync(std::function<void(Status)> done) {
  submitted_++;
  auto issue = [this, done = std::move(done)] {
    kblock::Bio bio = kblock::Bio::Flush([this, done](Status st) {
      cpu_->Run(params_.complete_cpu_ns, [this, done, st] {
        completed_++;
        if (done) done(st);
      });
    });
    dev_->Submit(std::move(bio));
  };
  if (params_.submit_batch <= 1) {
    cpu_->Run(params_.submit_cpu_ns, std::move(issue));
    return;
  }
  cpu_->Charge(params_.submit_cpu_ns > params_.enter_cpu_ns
                   ? params_.submit_cpu_ns - params_.enter_cpu_ns
                   : 0);
  Stage(std::move(issue));
}

}  // namespace nvmetro::uif

#include "uif/uring.h"

namespace nvmetro::uif {

Uring::Uring(sim::Simulator* sim, kblock::BlockDevice* dev, sim::VCpu* cpu,
             UringParams params)
    : sim_(sim), dev_(dev), cpu_(cpu), params_(params) {}

void Uring::Queue(std::unique_ptr<IovecTicket> ticket, u64 sector,
                  bool write) {
  submitted_++;
  auto* t = ticket.release();
  cpu_->Run(params_.submit_cpu_ns, [this, t, sector, write] {
    kblock::Bio bio;
    bio.op = write ? kblock::Bio::Op::kWrite : kblock::Bio::Op::kRead;
    bio.sector = sector;
    for (const auto& [ptr, len] : t->iovecs) {
      bio.segments.push_back(
          {const_cast<u8*>(static_cast<const u8*>(ptr)), len});
    }
    bio.on_complete = [this, t](Status st) {
      cpu_->Run(params_.complete_cpu_ns, [this, t, st] {
        completed_++;
        std::unique_ptr<IovecTicket> owner(t);
        if (owner->done) owner->done(st);
      });
    };
    dev_->Submit(std::move(bio));
  });
}

void Uring::QueueWritev(std::unique_ptr<IovecTicket> ticket, u64 sector) {
  Queue(std::move(ticket), sector, /*write=*/true);
}

void Uring::QueueReadv(std::unique_ptr<IovecTicket> ticket, u64 sector) {
  Queue(std::move(ticket), sector, /*write=*/false);
}

void Uring::QueueFsync(std::function<void(Status)> done) {
  submitted_++;
  cpu_->Run(params_.submit_cpu_ns, [this, done = std::move(done)] {
    kblock::Bio bio = kblock::Bio::Flush([this, done](Status st) {
      cpu_->Run(params_.complete_cpu_ns, [this, done, st] {
        completed_++;
        if (done) done(st);
      });
    });
    dev_->Submit(std::move(bio));
  });
}

}  // namespace nvmetro::uif

// Guest data accessor for UIFs: iterates the data blocks of an NVMe
// command directly in the VM's memory (no copies), the way the paper's
// UIF framework exposes them to `work()` implementations:
//
//   for (auto data = parse(cmd); !data.at_end(); data++)
//     decrypt(*data, data.lba());
//
// Each step yields one logical block (512 B by default); since PRP
// segments are page-multiples past the first, a block never straddles a
// segment boundary when the transfer is block-aligned.
#pragma once

#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "mem/guest_memory.h"
#include "nvme/defs.h"
#include "nvme/prp.h"

namespace nvmetro::uif {

class GuestData {
 public:
  /// Walks the command's PRPs in `gm`. Check ok() before iterating.
  GuestData(mem::GuestMemory* gm, const nvme::Sqe& cmd,
            u32 lba_size = 512);

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  bool at_end() const { return block_ >= nblocks_; }
  void operator++(int) { block_++; }

  /// Host pointer to the current block's bytes in guest memory.
  u8* operator*() const;

  /// LBA of the current block (command slba + index).
  u64 lba() const { return slba_ + block_; }

  /// Byte offset of the current block within the transfer.
  u64 block_offset() const { return static_cast<u64>(block_) * lba_size_; }

  u32 lba_size() const { return lba_size_; }
  u64 nbytes() const { return static_cast<u64>(nblocks_) * lba_size_; }
  u32 nblocks() const { return nblocks_; }

  /// Starting LBA of the whole command (its on-disk address).
  u64 disk_addr() const { return slba_; }

  /// Copies the whole transfer out of / into guest memory.
  Status CopyOut(void* dst) const;
  Status CopyIn(const void* src) const;

  /// The raw (gpa, len) segments, for zero-copy forwarding.
  const std::vector<nvme::PrpSegment>& segments() const { return segs_; }
  mem::GuestMemory* guest_memory() const { return gm_; }

 private:
  mem::GuestMemory* gm_;
  u32 lba_size_;
  u64 slba_ = 0;
  u32 nblocks_ = 0;
  u32 block_ = 0;
  std::vector<nvme::PrpSegment> segs_;
  Status status_;
};

}  // namespace nvmetro::uif

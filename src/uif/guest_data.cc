#include "uif/guest_data.h"

#include <cstring>

namespace nvmetro::uif {

GuestData::GuestData(mem::GuestMemory* gm, const nvme::Sqe& cmd,
                     u32 lba_size)
    : gm_(gm), lba_size_(lba_size) {
  slba_ = cmd.slba();
  nblocks_ = cmd.block_count();
  u64 len = static_cast<u64>(nblocks_) * lba_size_;
  status_ = nvme::WalkPrps(*gm_, cmd, len, &segs_);
  if (!status_.ok()) nblocks_ = 0;
}

u8* GuestData::operator*() const {
  u64 want = block_offset();
  for (const auto& s : segs_) {
    if (want < s.len) {
      // A block never straddles segments for block-aligned transfers.
      if (want + lba_size_ > s.len) return nullptr;
      return gm_->Translate(s.gpa + want, lba_size_);
    }
    want -= s.len;
  }
  return nullptr;
}

Status GuestData::CopyOut(void* dst) const {
  auto* p = static_cast<u8*>(dst);
  for (const auto& s : segs_) {
    NVM_RETURN_IF_ERROR(gm_->Read(s.gpa, p, s.len));
    p += s.len;
  }
  return OkStatus();
}

Status GuestData::CopyIn(const void* src) const {
  const auto* p = static_cast<const u8*>(src);
  for (const auto& s : segs_) {
    NVM_RETURN_IF_ERROR(gm_->Write(s.gpa, p, s.len));
    p += s.len;
  }
  return OkStatus();
}

}  // namespace nvmetro::uif

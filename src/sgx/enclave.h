// Simulated Intel SGX enclave for the SGX encryption UIF.
//
// Substitution (see DESIGN.md): real SGX hardware is unavailable in this
// environment, so the enclave is modeled as an isolated key holder with
// the cost structure that drives the paper's SGX results:
//
//  - the XTS key is sealed inside the enclave at creation and is not
//    readable through any API (key isolation, the function's purpose);
//  - crypto is performed "inside" the enclave via ECALLs; each regular
//    ECALL pays an enclave-transition cost (EENTER/EEXIT, TLB flushes);
//  - a *switchless* call path posts requests to a queue served by a
//    dedicated worker thread inside the enclave, avoiding transitions at
//    the price of a burned CPU — the paper's SGX UIF "uses 1 worker + 1
//    SGX switchless thread" (§V-C), which is why it loses throughput at
//    high parallelism (one fewer encryption thread).
//
// Costs are charged by the caller on its simulated vCPU using the values
// returned from each call; data transformation happens for real.
#pragma once

#include <memory>

#include "common/status.h"
#include "common/types.h"
#include "crypto/xts.h"

namespace nvmetro::sgx {

struct EnclaveParams {
  /// One-way enclave transition (EENTER or EEXIT).
  SimTime transition_ns = 3'800;
  /// Per-call overhead inside the enclave (marshalling).
  SimTime call_overhead_ns = 400;
  /// Switchless request post + pickup overhead (no transition).
  SimTime switchless_overhead_ns = 700;
  /// Crypto throughput inside the enclave, ns per byte (AES-NI).
  double aes_ns_per_byte = 0.70;
  /// EPC working-set effects: bytes beyond this per call pay extra
  /// (enclave page cache pressure on large buffers).
  u64 epc_working_set = 64 * KiB;
  double epc_penalty_ns_per_byte = 0.55;
};

/// Work accounting for one enclave call: who pays what.
struct EcallCost {
  /// CPU the *caller* burns (transitions for regular ECALLs, post/wait
  /// overhead for switchless).
  SimTime caller_ns = 0;
  /// CPU the enclave-side execution burns (crypto work; on a regular
  /// ECALL this is also the caller's thread, on a switchless call it is
  /// the dedicated worker's).
  SimTime enclave_ns = 0;
};

class Enclave {
 public:
  /// Seals an XTS key (32 or 64 bytes) into a new enclave.
  static Result<std::unique_ptr<Enclave>> Create(const u8* xts_key,
                                                 usize key_len,
                                                 EnclaveParams params = {});

  // --- ECALL interface (regular, transition-paying) -------------------------

  /// Encrypts `len` bytes (`len` multiple of 512) of consecutive sectors.
  EcallCost EcallEncrypt(u64 first_sector, const u8* in, u8* out, usize len);
  /// Decrypts in the same format.
  EcallCost EcallDecrypt(u64 first_sector, const u8* in, u8* out, usize len);

  // --- Switchless interface --------------------------------------------------

  /// Same operations with switchless-call costing (requires the caller to
  /// run a dedicated worker thread; see SgxEncryptorUif).
  EcallCost SwitchlessEncrypt(u64 first_sector, const u8* in, u8* out,
                              usize len);
  EcallCost SwitchlessDecrypt(u64 first_sector, const u8* in, u8* out,
                              usize len);

  /// Cost of ONE enclave call transforming `len` bytes (the UIFs batch
  /// a whole command into a single call).
  EcallCost CallCost(bool switchless, u64 len) const;

  const EnclaveParams& params() const { return params_; }
  u64 ecall_count() const { return ecalls_; }
  u64 switchless_count() const { return switchless_; }

  /// There is deliberately no accessor for the sealed key.

 private:
  Enclave(crypto::XtsCipher cipher, EnclaveParams params)
      : cipher_(std::move(cipher)), params_(params) {}

  EcallCost Work(bool encrypt, bool switchless, u64 first_sector,
                 const u8* in, u8* out, usize len);

  crypto::XtsCipher cipher_;
  EnclaveParams params_;
  u64 ecalls_ = 0;
  u64 switchless_ = 0;
};

}  // namespace nvmetro::sgx

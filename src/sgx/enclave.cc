#include "sgx/enclave.h"

namespace nvmetro::sgx {

Result<std::unique_ptr<Enclave>> Enclave::Create(const u8* xts_key,
                                                 usize key_len,
                                                 EnclaveParams params) {
  auto cipher = crypto::XtsCipher::Create(xts_key, key_len);
  if (!cipher.ok()) return cipher.status();
  return std::unique_ptr<Enclave>(
      new Enclave(std::move(*cipher), params));
}

EcallCost Enclave::Work(bool encrypt, bool switchless, u64 first_sector,
                        const u8* in, u8* out, usize len) {
  if (encrypt) {
    cipher_.EncryptRange(first_sector, crypto::kXtsSectorSize, in, out, len);
  } else {
    cipher_.DecryptRange(first_sector, crypto::kXtsSectorSize, in, out, len);
  }
  EcallCost cost;
  cost.enclave_ns = static_cast<SimTime>(static_cast<double>(len) *
                                         params_.aes_ns_per_byte) +
                    params_.call_overhead_ns;
  if (len > params_.epc_working_set) {
    cost.enclave_ns += static_cast<SimTime>(
        static_cast<double>(len - params_.epc_working_set) *
        params_.epc_penalty_ns_per_byte);
  }
  if (switchless) {
    switchless_++;
    cost.caller_ns = params_.switchless_overhead_ns;
  } else {
    ecalls_++;
    // EENTER + EEXIT; crypto runs on the caller's thread inside the
    // enclave, so the caller also pays enclave_ns (callers add both).
    cost.caller_ns = 2 * params_.transition_ns;
  }
  return cost;
}

EcallCost Enclave::CallCost(bool switchless, u64 len) const {
  EcallCost cost;
  cost.enclave_ns = static_cast<SimTime>(static_cast<double>(len) *
                                         params_.aes_ns_per_byte) +
                    params_.call_overhead_ns;
  if (len > params_.epc_working_set) {
    cost.enclave_ns += static_cast<SimTime>(
        static_cast<double>(len - params_.epc_working_set) *
        params_.epc_penalty_ns_per_byte);
  }
  cost.caller_ns = switchless ? params_.switchless_overhead_ns
                              : 2 * params_.transition_ns;
  return cost;
}

EcallCost Enclave::EcallEncrypt(u64 first_sector, const u8* in, u8* out,
                                usize len) {
  return Work(true, false, first_sector, in, out, len);
}

EcallCost Enclave::EcallDecrypt(u64 first_sector, const u8* in, u8* out,
                                usize len) {
  return Work(false, false, first_sector, in, out, len);
}

EcallCost Enclave::SwitchlessEncrypt(u64 first_sector, const u8* in, u8* out,
                                     usize len) {
  return Work(true, true, first_sector, in, out, len);
}

EcallCost Enclave::SwitchlessDecrypt(u64 first_sector, const u8* in, u8* out,
                                     usize len) {
  return Work(false, true, first_sector, in, out, len);
}

}  // namespace nvmetro::sgx

#include "ebpf/disasm.h"

#include <map>
#include <set>

#include "common/strutil.h"
#include "ebpf/insn.h"

namespace nvmetro::ebpf {
namespace {

const char* AluName(u8 op) {
  switch (op) {
    case kAluAdd: return "add";
    case kAluSub: return "sub";
    case kAluMul: return "mul";
    case kAluDiv: return "div";
    case kAluOr: return "or";
    case kAluAnd: return "and";
    case kAluLsh: return "lsh";
    case kAluRsh: return "rsh";
    case kAluNeg: return "neg";
    case kAluMod: return "mod";
    case kAluXor: return "xor";
    case kAluMov: return "mov";
    case kAluArsh: return "arsh";
    default: return nullptr;
  }
}

const char* JmpName(u8 op) {
  switch (op) {
    case kJmpJeq: return "jeq";
    case kJmpJne: return "jne";
    case kJmpJgt: return "jgt";
    case kJmpJge: return "jge";
    case kJmpJlt: return "jlt";
    case kJmpJle: return "jle";
    case kJmpJset: return "jset";
    case kJmpJsgt: return "jsgt";
    case kJmpJsge: return "jsge";
    case kJmpJslt: return "jslt";
    case kJmpJsle: return "jsle";
    default: return nullptr;
  }
}

const char* SizeSuffix(u8 opcode) {
  switch (opcode & 0x18) {
    case kSizeW: return "w";
    case kSizeH: return "h";
    case kSizeB: return "b";
    default: return "dw";
  }
}

std::string MemOperand(u8 reg, i16 off) {
  if (off == 0) return StrFormat("[r%u]", reg);
  if (off > 0) return StrFormat("[r%u+%d]", reg, off);
  return StrFormat("[r%u%d]", reg, off);
}

}  // namespace

Result<std::string> Disassemble(const Program& prog,
                                const HelperRegistry& helpers) {
  const std::vector<Insn>& insns = prog.insns();

  // Pass 1: find jump targets so they get labels.
  std::set<usize> targets;
  for (usize pc = 0; pc < insns.size(); pc++) {
    const Insn& in = insns[pc];
    u8 cls = in.opcode & 0x07;
    if (in.opcode == kOpLdImm64) {
      pc++;  // skip the high slot
      continue;
    }
    if (cls != kClassJmp) continue;
    if (in.opcode == kOpCall || in.opcode == kOpExit) continue;
    i64 target = static_cast<i64>(pc) + 1 + in.off;
    if (target < 0 || target >= static_cast<i64>(insns.size())) {
      return InvalidArgument(
          StrFormat("insn %zu: jump target out of range", pc));
    }
    targets.insert(static_cast<usize>(target));
  }

  // Pass 2: render.
  std::string out;
  for (usize pc = 0; pc < insns.size(); pc++) {
    const Insn& in = insns[pc];
    if (targets.count(pc)) out += StrFormat("L%zu:\n", pc);
    u8 cls = in.opcode & 0x07;

    if (in.opcode == kOpLdImm64) {
      if (pc + 1 >= insns.size()) {
        return InvalidArgument("truncated lddw pair");
      }
      const Insn& hi = insns[pc + 1];
      u64 value = static_cast<u32>(in.imm) |
                  (static_cast<u64>(static_cast<u32>(hi.imm)) << 32);
      if (in.src() == kPseudoMapIdx) {
        out += StrFormat("  lddw r%u, map %u\n", in.dst(),
                         static_cast<u32>(in.imm));
      } else {
        out += StrFormat("  lddw r%u, 0x%llx\n", in.dst(),
                         static_cast<unsigned long long>(value));
      }
      pc++;
      continue;
    }

    switch (cls) {
      case kClassAlu:
      case kClassAlu64: {
        bool is64 = cls == kClassAlu64;
        u8 op = in.opcode & 0xF0;
        const char* name = AluName(op);
        if (!name) {
          return InvalidArgument(StrFormat("insn %zu: bad ALU op", pc));
        }
        std::string mnemonic = std::string(name) + (is64 ? "" : "32");
        if (op == kAluNeg) {
          out += StrFormat("  %s r%u\n", mnemonic.c_str(), in.dst());
        } else if (in.opcode & kSrcX) {
          out += StrFormat("  %s r%u, r%u\n", mnemonic.c_str(), in.dst(),
                           in.src());
        } else {
          out += StrFormat("  %s r%u, %d\n", mnemonic.c_str(), in.dst(),
                           in.imm);
        }
        break;
      }
      case kClassJmp: {
        if (in.opcode == kOpExit) {
          out += "  exit\n";
          break;
        }
        if (in.opcode == kOpCall) {
          const HelperSpec* spec =
              helpers.Find(static_cast<u32>(in.imm));
          if (spec) {
            out += StrFormat("  call %s\n", spec->name);
          } else {
            out += StrFormat("  call %d\n", in.imm);
          }
          break;
        }
        usize target = static_cast<usize>(pc + 1 + in.off);
        u8 op = in.opcode & 0xF0;
        if (op == kJmpJa) {
          out += StrFormat("  ja L%zu\n", target);
          break;
        }
        const char* name = JmpName(op);
        if (!name) {
          return InvalidArgument(StrFormat("insn %zu: bad jump op", pc));
        }
        if (in.opcode & kSrcX) {
          out += StrFormat("  %s r%u, r%u, L%zu\n", name, in.dst(),
                           in.src(), target);
        } else {
          out += StrFormat("  %s r%u, %d, L%zu\n", name, in.dst(), in.imm,
                           target);
        }
        break;
      }
      case kClassLdx:
        out += StrFormat("  ldx%s r%u, %s\n", SizeSuffix(in.opcode),
                         in.dst(), MemOperand(in.src(), in.off).c_str());
        break;
      case kClassStx:
        out += StrFormat("  stx%s %s, r%u\n", SizeSuffix(in.opcode),
                         MemOperand(in.dst(), in.off).c_str(), in.src());
        break;
      case kClassSt:
        out += StrFormat("  st%s %s, %d\n", SizeSuffix(in.opcode),
                         MemOperand(in.dst(), in.off).c_str(), in.imm);
        break;
      default:
        return InvalidArgument(
            StrFormat("insn %zu: unsupported class %u", pc, cls));
    }
  }
  return out;
}

}  // namespace nvmetro::ebpf

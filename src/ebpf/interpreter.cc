#include "ebpf/interpreter.h"

#include <cstring>

#include "common/strutil.h"

namespace nvmetro::ebpf {

Interpreter::Interpreter(const HelperRegistry& helpers, Options opts)
    : helpers_(helpers), opts_(opts) {}

namespace {

struct Region {
  u64 base;
  u64 len;
};

bool InRegion(const Region& r, u64 addr, u64 len) {
  return addr >= r.base && len <= r.len && addr - r.base <= r.len - len;
}

}  // namespace

Interpreter::RunResult Interpreter::Run(const Program& prog, void* ctx,
                                        u32 ctx_size) {
  RunResult res;
  const auto& insns = prog.insns();
  if (insns.empty()) {
    res.status = InvalidArgument("empty program");
    return res;
  }

  alignas(8) u8 stack[kStackSize];
  u64 regs[kNumRegs] = {};
  regs[kRegCtx] = reinterpret_cast<u64>(ctx);
  regs[kRegFp] = reinterpret_cast<u64>(stack) + kStackSize;

  std::vector<Region> regions;
  regions.push_back({reinterpret_cast<u64>(ctx), ctx_size});
  regions.push_back({reinterpret_cast<u64>(stack), kStackSize});

  auto access_ok = [&](u64 addr, u32 len) {
    for (const auto& r : regions) {
      if (InRegion(r, addr, len)) return true;
    }
    return false;
  };

  u32 pc = 0;
  for (;;) {
    if (res.insns++ >= opts_.max_insns) {
      res.status = ResourceExhausted("instruction budget exceeded");
      return res;
    }
    if (pc >= insns.size()) {
      res.status = Internal("pc out of range");
      return res;
    }
    const Insn& in = insns[pc];
    u8 cls = InsnClassOf(in.opcode);
    u8 dst = in.dst();
    u8 src = in.src();
    if (dst >= kNumRegs || src >= kNumRegs) {
      res.status = Internal(StrFormat("insn %u: bad register", pc));
      return res;
    }

    if (in.opcode == kOpLdImm64) {
      if (pc + 1 >= insns.size()) {
        res.status = Internal("truncated LD_IMM64");
        return res;
      }
      if (in.src() == kPseudoMapIdx) {
        if (static_cast<u32>(in.imm) >= prog.maps().size()) {
          res.status = Internal("bad map index");
          return res;
        }
        regs[dst] = reinterpret_cast<u64>(prog.maps()[in.imm].get());
      } else {
        regs[dst] =
            (static_cast<u64>(static_cast<u32>(insns[pc + 1].imm)) << 32) |
            static_cast<u32>(in.imm);
      }
      pc += 2;
      continue;
    }

    switch (cls) {
      case kClassAlu:
      case kClassAlu64: {
        bool is64 = cls == kClassAlu64;
        u8 op = in.opcode & 0xF0;
        u64 b = (in.opcode & 0x08)
                    ? regs[src]
                    : static_cast<u64>(static_cast<i64>(in.imm));
        u64 a = regs[dst];
        if (!is64) {
          a &= 0xFFFFFFFF;
          b &= 0xFFFFFFFF;
        }
        u64 r = a;
        switch (op) {
          case kAluAdd: r = a + b; break;
          case kAluSub: r = a - b; break;
          case kAluMul: r = a * b; break;
          case kAluDiv: r = b ? a / b : 0; break;
          case kAluMod: r = b ? a % b : a; break;
          case kAluOr: r = a | b; break;
          case kAluAnd: r = a & b; break;
          case kAluXor: r = a ^ b; break;
          case kAluLsh: r = a << (b & (is64 ? 63 : 31)); break;
          case kAluRsh: r = a >> (b & (is64 ? 63 : 31)); break;
          case kAluArsh:
            if (is64) {
              r = static_cast<u64>(static_cast<i64>(a) >> (b & 63));
            } else {
              r = static_cast<u64>(
                  static_cast<u32>(static_cast<i32>(a) >> (b & 31)));
            }
            break;
          case kAluMov: r = b; break;
          case kAluNeg: r = ~a + 1; break;
          default:
            res.status = Internal(StrFormat("insn %u: bad ALU op", pc));
            return res;
        }
        if (!is64) r &= 0xFFFFFFFF;
        regs[dst] = r;
        pc++;
        continue;
      }

      case kClassLdx: {
        u32 size = MemSizeBytes(in.opcode);
        u64 addr = regs[src] + static_cast<i64>(in.off);
        if (!access_ok(addr, size)) {
          res.status = PermissionDenied(
              StrFormat("insn %u: invalid load addr", pc));
          return res;
        }
        u64 v = 0;
        std::memcpy(&v, reinterpret_cast<void*>(addr), size);
        regs[dst] = v;
        pc++;
        continue;
      }

      case kClassStx:
      case kClassSt: {
        u32 size = MemSizeBytes(in.opcode);
        u64 addr = regs[dst] + static_cast<i64>(in.off);
        if (!access_ok(addr, size)) {
          res.status = PermissionDenied(
              StrFormat("insn %u: invalid store addr", pc));
          return res;
        }
        u64 v = cls == kClassStx ? regs[src]
                                 : static_cast<u64>(static_cast<i64>(in.imm));
        std::memcpy(reinterpret_cast<void*>(addr), &v, size);
        pc++;
        continue;
      }

      case kClassJmp: {
        u8 op = in.opcode & 0xF0;
        if (op == kJmpExit) {
          res.r0 = regs[kRegR0];
          res.status = OkStatus();
          return res;
        }
        if (op == kJmpCall) {
          const HelperSpec* spec = helpers_.Find(static_cast<u32>(in.imm));
          if (!spec) {
            res.status = Internal(StrFormat("insn %u: bad helper", pc));
            return res;
          }
          // Runtime argument validation mirroring the verifier's typing.
          const Map* call_map = nullptr;
          for (usize a = 0; a < spec->args.size(); a++) {
            u64 v = regs[1 + a];
            switch (spec->args[a]) {
              case ArgType::kAnything:
                break;
              case ArgType::kMapPtr: {
                bool found = false;
                for (const auto& m : prog.maps()) {
                  if (reinterpret_cast<u64>(m.get()) == v) {
                    call_map = m.get();
                    found = true;
                    break;
                  }
                }
                if (!found) {
                  res.status = PermissionDenied(
                      StrFormat("insn %u: bad map argument", pc));
                  return res;
                }
                break;
              }
              case ArgType::kStackPtrKey:
              case ArgType::kStackPtrValue: {
                u32 need = 0;
                if (call_map) {
                  need = spec->args[a] == ArgType::kStackPtrKey
                             ? call_map->key_size()
                             : call_map->value_size();
                }
                if (!call_map || !access_ok(v, need)) {
                  res.status = PermissionDenied(
                      StrFormat("insn %u: bad pointer argument", pc));
                  return res;
                }
                break;
              }
            }
          }
          u64 r0 = spec->fn(env_, regs[1], regs[2], regs[3], regs[4],
                            regs[5]);
          if (spec->ret == RetType::kMapValueOrNull && r0 != 0 && call_map) {
            regions.push_back({r0, call_map->value_size()});
          }
          regs[kRegR0] = r0;
          // r1-r5 are caller-saved.
          for (int r = 1; r <= 5; r++) regs[r] = 0;
          pc++;
          continue;
        }
        if (op == kJmpJa) {
          pc = static_cast<u32>(pc + 1 + in.off);
          continue;
        }
        u64 a = regs[dst];
        u64 b = (in.opcode & 0x08)
                    ? regs[src]
                    : static_cast<u64>(static_cast<i64>(in.imm));
        bool taken = false;
        switch (op) {
          case kJmpJeq: taken = a == b; break;
          case kJmpJne: taken = a != b; break;
          case kJmpJgt: taken = a > b; break;
          case kJmpJge: taken = a >= b; break;
          case kJmpJlt: taken = a < b; break;
          case kJmpJle: taken = a <= b; break;
          case kJmpJset: taken = (a & b) != 0; break;
          case kJmpJsgt:
            taken = static_cast<i64>(a) > static_cast<i64>(b);
            break;
          case kJmpJsge:
            taken = static_cast<i64>(a) >= static_cast<i64>(b);
            break;
          case kJmpJslt:
            taken = static_cast<i64>(a) < static_cast<i64>(b);
            break;
          case kJmpJsle:
            taken = static_cast<i64>(a) <= static_cast<i64>(b);
            break;
          default:
            res.status = Internal(StrFormat("insn %u: bad jump op", pc));
            return res;
        }
        pc = taken ? static_cast<u32>(pc + 1 + in.off) : pc + 1;
        continue;
      }

      default:
        res.status = Internal(StrFormat("insn %u: bad class", pc));
        return res;
    }
  }
}

}  // namespace nvmetro::ebpf

#include "ebpf/interpreter.h"

#include <cstring>

#include "common/strutil.h"
#include "ebpf/regions.h"

namespace nvmetro::ebpf {

Interpreter::Interpreter(const HelperRegistry& helpers, Options opts)
    : helpers_(helpers), opts_(opts) {}

Interpreter::RunResult Interpreter::Run(const Program& prog, void* ctx,
                                        u32 ctx_size) {
  RunParams p;
  p.ctx = ctx;
  p.ctx_size = ctx_size;
  return Run(prog, p);
}

Interpreter::RunResult Interpreter::Run(const Program& prog,
                                        const RunParams& params) {
  RunResult res;
  const auto& insns = prog.insns();
  if (insns.empty()) {
    res.status = InvalidArgument("empty program");
    return res;
  }

  alignas(8) u8 stack[kStackSize];
  u64 regs[kNumRegs] = {};
  regs[kRegCtx] = reinterpret_cast<u64>(params.ctx);
  regs[kRegFp] = reinterpret_cast<u64>(stack) + kStackSize;

  const u64 ctx_base = reinterpret_cast<u64>(params.ctx);
  RegionSet regions;
  regions.AddFixed(ctx_base, params.ctx_size, /*writable=*/true);
  regions.AddFixed(reinterpret_cast<u64>(stack), kStackSize,
                   /*writable=*/true);
  if (params.data && params.data_len) {
    regions.AddFixed(reinterpret_cast<u64>(params.data), params.data_len,
                     /*writable=*/false);
  }

  auto load_ok = [&](u64 addr, u32 len) {
    return regions.Find(addr, len) != nullptr;
  };

  u32 pc = 0;
  for (;;) {
    if (res.insns++ >= opts_.max_insns) {
      res.status = ResourceExhausted("instruction budget exceeded");
      res.map_regions = regions.call_site_regions();
      return res;
    }
    if (pc >= insns.size()) {
      res.status = Internal("pc out of range");
      res.map_regions = regions.call_site_regions();
      return res;
    }
    const Insn& in = insns[pc];
    u8 cls = InsnClassOf(in.opcode);
    u8 dst = in.dst();
    u8 src = in.src();
    if (dst >= kNumRegs || src >= kNumRegs) {
      res.status = Internal(StrFormat("insn %u: bad register", pc));
      res.map_regions = regions.call_site_regions();
      return res;
    }

    if (in.opcode == kOpLdImm64) {
      if (pc + 1 >= insns.size()) {
        res.status = Internal("truncated LD_IMM64");
        res.map_regions = regions.call_site_regions();
        return res;
      }
      if (in.src() == kPseudoMapIdx) {
        if (static_cast<u32>(in.imm) >= prog.maps().size()) {
          res.status = Internal("bad map index");
          res.map_regions = regions.call_site_regions();
          return res;
        }
        regs[dst] = reinterpret_cast<u64>(prog.maps()[in.imm].get());
      } else {
        regs[dst] =
            (static_cast<u64>(static_cast<u32>(insns[pc + 1].imm)) << 32) |
            static_cast<u32>(in.imm);
      }
      pc += 2;
      continue;
    }

    switch (cls) {
      case kClassAlu:
      case kClassAlu64: {
        bool is64 = cls == kClassAlu64;
        u8 op = in.opcode & 0xF0;
        u64 b = (in.opcode & 0x08)
                    ? regs[src]
                    : static_cast<u64>(static_cast<i64>(in.imm));
        u64 a = regs[dst];
        if (!is64) {
          a &= 0xFFFFFFFF;
          b &= 0xFFFFFFFF;
        }
        u64 r = a;
        switch (op) {
          case kAluAdd: r = a + b; break;
          case kAluSub: r = a - b; break;
          case kAluMul: r = a * b; break;
          case kAluDiv: r = b ? a / b : 0; break;
          case kAluMod: r = b ? a % b : a; break;
          case kAluOr: r = a | b; break;
          case kAluAnd: r = a & b; break;
          case kAluXor: r = a ^ b; break;
          case kAluLsh: r = a << (b & (is64 ? 63 : 31)); break;
          case kAluRsh: r = a >> (b & (is64 ? 63 : 31)); break;
          case kAluArsh:
            if (is64) {
              r = static_cast<u64>(static_cast<i64>(a) >> (b & 63));
            } else {
              r = static_cast<u64>(
                  static_cast<u32>(static_cast<i32>(a) >> (b & 31)));
            }
            break;
          case kAluMov: r = b; break;
          case kAluNeg: r = ~a + 1; break;
          default:
            res.status = Internal(StrFormat("insn %u: bad ALU op", pc));
            res.map_regions = regions.call_site_regions();
            return res;
        }
        if (!is64) r &= 0xFFFFFFFF;
        regs[dst] = r;
        pc++;
        continue;
      }

      case kClassLdx: {
        u32 size = MemSizeBytes(in.opcode);
        u64 addr = regs[src] + static_cast<i64>(in.off);
        if (!load_ok(addr, size)) {
          res.status = PermissionDenied(
              StrFormat("insn %u: invalid load addr", pc));
          res.map_regions = regions.call_site_regions();
          return res;
        }
        u64 v = 0;
        std::memcpy(&v, reinterpret_cast<void*>(addr), size);
        regs[dst] = v;
        pc++;
        continue;
      }

      case kClassStx:
      case kClassSt: {
        u32 size = MemSizeBytes(in.opcode);
        u64 addr = regs[dst] + static_cast<i64>(in.off);
        const Region* r = regions.Find(addr, size);
        if (!r) {
          res.status = PermissionDenied(
              StrFormat("insn %u: invalid store addr", pc));
          res.map_regions = regions.call_site_regions();
          return res;
        }
        if (!r->writable) {
          res.status = PermissionDenied(
              StrFormat("insn %u: store to read-only region", pc));
          res.map_regions = regions.call_site_regions();
          return res;
        }
        // Runtime ctx write table: even if a buggy verifier let a rogue
        // store through, only declared-writable ctx fields can change.
        if (params.ctx_desc && r->base == ctx_base &&
            r->site == Region::kNoSite) {
          u32 off = static_cast<u32>(addr - ctx_base);
          if (!params.ctx_desc->CheckAccess(off, size, /*write=*/true)) {
            res.status = PermissionDenied(
                StrFormat("insn %u: store to read-only ctx field", pc));
            res.map_regions = regions.call_site_regions();
            return res;
          }
        }
        u64 v = cls == kClassStx ? regs[src]
                                 : static_cast<u64>(static_cast<i64>(in.imm));
        std::memcpy(reinterpret_cast<void*>(addr), &v, size);
        pc++;
        continue;
      }

      case kClassJmp: {
        u8 op = in.opcode & 0xF0;
        if (op == kJmpExit) {
          res.r0 = regs[kRegR0];
          res.status = OkStatus();
          res.map_regions = regions.call_site_regions();
          return res;
        }
        if (op == kJmpCall) {
          const HelperSpec* spec = helpers_.Find(static_cast<u32>(in.imm));
          if (!spec) {
            res.status = Internal(StrFormat("insn %u: bad helper", pc));
            res.map_regions = regions.call_site_regions();
            return res;
          }
          // Runtime argument validation mirroring the verifier's typing.
          // call_map is scoped to THIS call and arguments validate in
          // order: a key/value pointer is only meaningful after the map
          // argument that sizes it, so a stack pointer arriving first is
          // an argument-order violation (mirrored in the verifier) —
          // it must never validate against a previous call's map.
          const Map* call_map = nullptr;
          for (usize a = 0; a < spec->args.size(); a++) {
            u64 v = regs[1 + a];
            switch (spec->args[a]) {
              case ArgType::kAnything:
                break;
              case ArgType::kMapPtr: {
                bool found = false;
                for (const auto& m : prog.maps()) {
                  if (reinterpret_cast<u64>(m.get()) == v) {
                    call_map = m.get();
                    found = true;
                    break;
                  }
                }
                if (!found) {
                  res.status = PermissionDenied(
                      StrFormat("insn %u: bad map argument", pc));
                  res.map_regions = regions.call_site_regions();
                  return res;
                }
                break;
              }
              case ArgType::kStackPtrKey:
              case ArgType::kStackPtrValue: {
                if (!call_map) {
                  res.status = PermissionDenied(StrFormat(
                      "insn %u: key/value argument before map argument",
                      pc));
                  res.map_regions = regions.call_site_regions();
                  return res;
                }
                u32 need = spec->args[a] == ArgType::kStackPtrKey
                               ? call_map->key_size()
                               : call_map->value_size();
                const Region* r = regions.Find(v, need);
                if (!r || !r->writable) {
                  res.status = PermissionDenied(
                      StrFormat("insn %u: bad pointer argument", pc));
                  res.map_regions = regions.call_site_regions();
                  return res;
                }
                break;
              }
            }
          }
          u64 r0 = spec->fn(env_, regs[1], regs[2], regs[3], regs[4],
                            regs[5]);
          if (spec->ret == RetType::kMapValueOrNull && r0 != 0 && call_map) {
            // Reuse this call site's region slot: a looping program
            // re-executing the lookup must not grow the region set.
            regions.SetCallSite(pc, r0, call_map->value_size());
          }
          regs[kRegR0] = r0;
          // r1-r5 are caller-saved.
          for (int r = 1; r <= 5; r++) regs[r] = 0;
          pc++;
          continue;
        }
        if (op == kJmpJa) {
          pc = static_cast<u32>(pc + 1 + in.off);
          continue;
        }
        u64 a = regs[dst];
        u64 b = (in.opcode & 0x08)
                    ? regs[src]
                    : static_cast<u64>(static_cast<i64>(in.imm));
        bool taken = false;
        switch (op) {
          case kJmpJeq: taken = a == b; break;
          case kJmpJne: taken = a != b; break;
          case kJmpJgt: taken = a > b; break;
          case kJmpJge: taken = a >= b; break;
          case kJmpJlt: taken = a < b; break;
          case kJmpJle: taken = a <= b; break;
          case kJmpJset: taken = (a & b) != 0; break;
          case kJmpJsgt:
            taken = static_cast<i64>(a) > static_cast<i64>(b);
            break;
          case kJmpJsge:
            taken = static_cast<i64>(a) >= static_cast<i64>(b);
            break;
          case kJmpJslt:
            taken = static_cast<i64>(a) < static_cast<i64>(b);
            break;
          case kJmpJsle:
            taken = static_cast<i64>(a) <= static_cast<i64>(b);
            break;
          default:
            res.status = Internal(StrFormat("insn %u: bad jump op", pc));
            res.map_regions = regions.call_site_regions();
            return res;
        }
        pc = taken ? static_cast<u32>(pc + 1 + in.off) : pc + 1;
        continue;
      }

      default:
        res.status = Internal(StrFormat("insn %u: bad class", pc));
        res.map_regions = regions.call_site_regions();
        return res;
    }
  }
}

}  // namespace nvmetro::ebpf

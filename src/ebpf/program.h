// eBPF program representation and context-access descriptors.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "ebpf/insn.h"
#include "ebpf/map.h"

namespace nvmetro::ebpf {

/// Describes which byte ranges of the context structure a program may
/// read or write — the equivalent of the kernel's per-program-type
/// `is_valid_access` callback. NVMetro's classifier context allows reads
/// of the whole structure but writes only to the mediation fields (e.g.
/// the translated LBA), enforcing "direct mediation" boundaries at verify
/// time.
struct CtxField {
  u32 offset;
  u32 size;
  bool writable;
  const char* name;
};

struct CtxDescriptor {
  u32 size = 0;
  std::vector<CtxField> fields;

  /// Offset of an 8-byte ctx field holding a host pointer to an
  /// attached read-only data region (0 when absent), or -1 when the
  /// ctx has no such field. Loading this field yields a null-or-data
  /// pointer in the verifier: the program must null-check it, after
  /// which it may read (never write) up to `data_region_size` bytes.
  /// Used by resubmission-chain classifiers to inspect a completed
  /// read's data page (DESIGN.md §15).
  i64 data_ptr_offset = -1;
  u32 data_region_size = 0;

  /// True when [off, off+len) is exactly one declared field (partial or
  /// unaligned accesses are rejected, as the kernel does for most ctx
  /// types) and, for writes, the field is writable.
  bool CheckAccess(u32 off, u32 len, bool write) const {
    for (const auto& f : fields) {
      if (f.offset == off && f.size == len) return !write || f.writable;
    }
    return false;
  }
};

/// A program: instructions plus the maps it references (LD_IMM64 with
/// src=kPseudoMapIdx loads maps[imm]).
class Program {
 public:
  Program() = default;
  Program(std::vector<Insn> insns, std::vector<std::shared_ptr<Map>> maps)
      : insns_(std::move(insns)), maps_(std::move(maps)) {}

  const std::vector<Insn>& insns() const { return insns_; }
  std::vector<Insn>& mutable_insns() { return insns_; }

  const std::vector<std::shared_ptr<Map>>& maps() const { return maps_; }
  /// Adds a map; returns its index for LD_IMM64 references.
  u32 AddMap(std::shared_ptr<Map> map) {
    maps_.push_back(std::move(map));
    return static_cast<u32>(maps_.size() - 1);
  }

  usize size() const { return insns_.size(); }

 private:
  std::vector<Insn> insns_;
  std::vector<std::shared_ptr<Map>> maps_;
};

}  // namespace nvmetro::ebpf

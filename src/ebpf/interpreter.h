// eBPF bytecode interpreter.
//
// Executes verified programs against a context structure. As a defense in
// depth (and to make the fuzz tests meaningful), every memory access is
// also bounds-checked at runtime against the regions the program may
// legitimately touch: the context, the 512-byte stack, and map values
// returned by helpers during this run. A verified program never trips
// these checks; an unverified one cannot corrupt the host.
#pragma once

#include <vector>

#include "common/status.h"
#include "ebpf/helpers.h"
#include "ebpf/program.h"

namespace nvmetro::ebpf {

class Interpreter {
 public:
  struct Options {
    /// Hard budget on executed instructions (runaway guard; verified
    /// programs are loop-free so they terminate well below this).
    u64 max_insns = 1'000'000;
  };

  struct RunResult {
    Status status;      // ok unless a runtime guard fired
    u64 r0 = 0;         // program return value
    u64 insns = 0;      // instructions executed (used for cost modeling)
  };

  explicit Interpreter(const HelperRegistry& helpers =
                           HelperRegistry::Default())
      : Interpreter(helpers, Options{}) {}
  Interpreter(const HelperRegistry& helpers, Options opts);

  /// Ambient services (simulated clock, RNG, trace sink) for helpers.
  HelperEnv& env() { return env_; }

  /// Runs the program with r1 = ctx. `ctx_size` bounds runtime ctx access.
  RunResult Run(const Program& prog, void* ctx, u32 ctx_size);

 private:
  const HelperRegistry& helpers_;
  Options opts_;
  HelperEnv env_;
};

}  // namespace nvmetro::ebpf

// eBPF bytecode interpreter.
//
// Executes verified programs against a context structure. As a defense in
// depth (and to make the fuzz tests meaningful), every memory access is
// also bounds-checked at runtime against the regions the program may
// legitimately touch: the context, the 512-byte stack, the optional
// read-only data region, and map values returned by helpers during this
// run (one reusable region slot per helper call site — see
// ebpf/regions.h). When a CtxDescriptor is supplied, stores into the
// context additionally re-check the field table's write permissions at
// run time, so even a verifier gap cannot corrupt a read-only ctx field.
// A verified program never trips these checks; an unverified one cannot
// corrupt the host.
//
// This is the legacy decode-per-step engine, kept as the ablation
// baseline for the pre-decoded VM in ebpf/vm.h (bench/pushdown_lookup
// --micro compares the two; their verdict streams are bit-identical).
#pragma once

#include <vector>

#include "common/status.h"
#include "ebpf/helpers.h"
#include "ebpf/program.h"

namespace nvmetro::ebpf {

/// Per-run inputs shared by both execution engines.
struct RunParams {
  void* ctx = nullptr;
  u32 ctx_size = 0;
  /// Optional runtime enforcement of the ctx field table for stores
  /// (writes must hit a writable declared field). Null = any store
  /// inside the ctx region is allowed (legacy behavior for raw tests).
  const CtxDescriptor* ctx_desc = nullptr;
  /// Optional read-only data region (e.g. a completed read's data page).
  const void* data = nullptr;
  u32 data_len = 0;
};

class Interpreter {
 public:
  struct Options {
    /// Hard budget on executed instructions (runaway guard; verified
    /// programs are loop-free so they terminate well below this).
    u64 max_insns = 1'000'000;
  };

  struct RunResult {
    Status status;      // ok unless a runtime guard fired
    u64 r0 = 0;         // program return value
    u64 insns = 0;      // instructions executed (used for cost modeling)
    /// Live map-value regions at exit (bounded by distinct helper call
    /// sites; the region-growth regression test pins this).
    u64 map_regions = 0;
  };

  explicit Interpreter(const HelperRegistry& helpers =
                           HelperRegistry::Default())
      : Interpreter(helpers, Options{}) {}
  Interpreter(const HelperRegistry& helpers, Options opts);

  /// Ambient services (simulated clock, RNG, trace sink) for helpers.
  HelperEnv& env() { return env_; }

  /// Runs the program with r1 = ctx. `ctx_size` bounds runtime ctx access.
  RunResult Run(const Program& prog, void* ctx, u32 ctx_size);
  /// Full-parameter form: ctx write table + read-only data region.
  RunResult Run(const Program& prog, const RunParams& params);

 private:
  const HelperRegistry& helpers_;
  Options opts_;
  HelperEnv env_;
};

}  // namespace nvmetro::ebpf

// Pre-decoded eBPF execution engine.
//
// The legacy interpreter (ebpf/interpreter.h) re-decodes every
// instruction on every step: opcode field splits, register validation,
// LD_IMM64 folding, map-index resolution and helper lookup all happen
// per executed instruction. That is fine for a classifier that runs
// once per request, but resubmission chains (DESIGN.md §15) run the
// classifier once per *hop*, so decode cost multiplies.
//
// DecodedProgram::Decode lowers the insn stream ONCE into an array of
// dispatch-ready DInsn slots — one per original instruction slot, so
// decoded pc == original pc and jump targets need no remapping. Each
// slot carries a dense op key, pre-validated register numbers, the
// folded 64-bit immediate (sign-extended / masked / shift-clamped as
// its op requires), the absolute jump target, the resolved Map* or
// HelperSpec*, and the memory access size. Invalid slots decode to an
// error op that fires only if reached, with the exact message the
// legacy interpreter would produce at that pc — so the two engines are
// bit-identical in r0, status, and executed-instruction count
// (tests/ebpf_vm_test.cc pins this; bench/pushdown_lookup --micro
// measures the per-invocation win, gated at ≥ 30%).
//
// DecodedVm::Run dispatches with computed goto where the compiler
// supports it (direct-threaded) and a dense switch otherwise. The
// RegionSet runtime guard is a persistent member, so a warmed-up VM
// executes verified programs with zero heap allocations per run.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "ebpf/helpers.h"
#include "ebpf/interpreter.h"
#include "ebpf/program.h"
#include "ebpf/regions.h"

namespace nvmetro::ebpf {

// Dense decoded op keys. The X-macro keeps the enum and the computed-
// goto label table in vm.cc in lockstep; order within each ALU/JMP
// block is load-bearing (Decode maps opcode nibbles onto it), as is
// the B/H/W/Dw order of each memory block (Decode adds log2(size)).
// Memory ops are size-specialized so every load/store compiles to a
// fixed-width move instead of a variable-length memcpy — the decode-
// time half of the fast-load path (the other half is the fixed-region
// bounds kept in locals by DecodedVm::Run).
#define NVMETRO_EBPF_VM_OPS(X)                                          \
  X(kErr)                                                               \
  X(kAdd64Reg) X(kSub64Reg) X(kMul64Reg) X(kDiv64Reg) X(kMod64Reg)      \
  X(kOr64Reg) X(kAnd64Reg) X(kXor64Reg) X(kLsh64Reg) X(kRsh64Reg)       \
  X(kArsh64Reg) X(kMov64Reg)                                            \
  X(kAdd64Imm) X(kSub64Imm) X(kMul64Imm) X(kDiv64Imm) X(kMod64Imm)      \
  X(kOr64Imm) X(kAnd64Imm) X(kXor64Imm) X(kLsh64Imm) X(kRsh64Imm)       \
  X(kArsh64Imm) X(kMov64Imm) X(kNeg64)                                  \
  X(kAdd32Reg) X(kSub32Reg) X(kMul32Reg) X(kDiv32Reg) X(kMod32Reg)      \
  X(kOr32Reg) X(kAnd32Reg) X(kXor32Reg) X(kLsh32Reg) X(kRsh32Reg)       \
  X(kArsh32Reg) X(kMov32Reg)                                            \
  X(kAdd32Imm) X(kSub32Imm) X(kMul32Imm) X(kDiv32Imm) X(kMod32Imm)      \
  X(kOr32Imm) X(kAnd32Imm) X(kXor32Imm) X(kLsh32Imm) X(kRsh32Imm)       \
  X(kArsh32Imm) X(kMov32Imm) X(kNeg32)                                  \
  X(kLdxB) X(kLdxH) X(kLdxW) X(kLdxDw)                                  \
  X(kStxB) X(kStxH) X(kStxW) X(kStxDw)                                  \
  X(kStB) X(kStH) X(kStW) X(kStDw)                                      \
  X(kLdImm) X(kLdMapPtr)                                                \
  X(kJa) X(kCall) X(kExit)                                              \
  X(kJeqReg) X(kJneReg) X(kJgtReg) X(kJgeReg) X(kJltReg) X(kJleReg)     \
  X(kJsetReg) X(kJsgtReg) X(kJsgeReg) X(kJsltReg) X(kJsleReg)           \
  X(kJeqImm) X(kJneImm) X(kJgtImm) X(kJgeImm) X(kJltImm) X(kJleImm)     \
  X(kJsetImm) X(kJsgtImm) X(kJsgeImm) X(kJsltImm) X(kJsleImm)

enum class DOp : u8 {
#define NVMETRO_EBPF_VM_ENUM(n) n,
  NVMETRO_EBPF_VM_OPS(NVMETRO_EBPF_VM_ENUM)
#undef NVMETRO_EBPF_VM_ENUM
      kNumOps,
};

/// One decoded instruction slot. 32 bytes, dispatch-ready.
struct DInsn {
  DOp key = DOp::kErr;
  u8 dst = 0;
  u8 src = 0;
  u8 size = 0;      // memory access bytes (LDX/ST/STX)
  u32 target = 0;   // absolute jump target, or error-message index
  i32 off = 0;      // sign-extended memory offset
  u32 pad_ = 0;
  u64 imm = 0;      // folded operand (sign-extended / masked / clamped)
  const void* ptr = nullptr;  // resolved Map* (kLdMapPtr) / HelperSpec* (kCall)
};
static_assert(sizeof(DInsn) == 32);

class DecodedProgram {
 public:
  /// Lowers `prog` for dispatch. Never fails: invalid instructions
  /// decode to error ops that reproduce the legacy interpreter's
  /// runtime diagnostics if (and only if) execution reaches them.
  static DecodedProgram Decode(const Program& prog,
                               const HelperRegistry& helpers =
                                   HelperRegistry::Default());

  const std::vector<DInsn>& code() const { return code_; }
  const std::vector<const Map*>& map_ptrs() const { return map_ptrs_; }
  const std::string& error_msg(u32 idx) const { return errors_[idx]; }

 private:
  u32 AddError(std::string msg) {
    errors_.push_back(std::move(msg));
    return static_cast<u32>(errors_.size() - 1);
  }

  std::vector<DInsn> code_;
  std::vector<std::string> errors_;  // messages for kErr slots
  // Keeps the maps referenced by resolved pointers alive.
  std::vector<std::shared_ptr<Map>> maps_;
  std::vector<const Map*> map_ptrs_;
};

class DecodedVm {
 public:
  struct Options {
    u64 max_insns = 1'000'000;
  };

  DecodedVm() : DecodedVm(Options{}) {}
  explicit DecodedVm(Options opts) : opts_(opts) {}

  HelperEnv& env() { return env_; }

  /// Bit-identical to Interpreter::Run on the same program + params
  /// (r0, status, insns, map_regions).
  Interpreter::RunResult Run(const DecodedProgram& prog,
                             const RunParams& params);

 private:
  Options opts_;
  HelperEnv env_;
  // Persistent so steady-state runs never allocate (Reset keeps
  // capacity); verified programs stay within the inline slots anyway.
  RegionSet regions_;
};

}  // namespace nvmetro::ebpf

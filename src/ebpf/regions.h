// Runtime memory-region guard shared by the two eBPF execution engines
// (the legacy switch interpreter and the pre-decoded VM).
//
// Every load/store a program performs is bounds-checked against the
// regions it may legitimately touch: the context structure, the 512-byte
// stack, the optional read-only data region (a completed read's data
// page, DESIGN.md §15) and map values returned by helpers during the
// run. Map-value regions are keyed by the call site that produced them
// and *reused* on re-execution, so a looping (unverified) program cannot
// grow the region list without bound — the set is bounded by the number
// of distinct helper call sites in the program. Verified programs are
// loop-free, so each call site executes at most once per run and the
// reuse is unobservable.
#pragma once

#include <vector>

#include "common/types.h"

namespace nvmetro::ebpf {

struct Region {
  u64 base = 0;
  u64 len = 0;
  bool writable = false;
  u32 site = kNoSite;  // helper call-site pc, or kNoSite for fixed regions

  static constexpr u32 kNoSite = 0xFFFFFFFFu;
};

class RegionSet {
 public:
  /// Clears the set, keeping any heap capacity (a warmed-up engine
  /// re-running programs does not allocate here).
  void Reset() {
    count_ = 0;
    overflow_.clear();
  }

  /// Registers a fixed region (ctx / stack / data).
  void AddFixed(u64 base, u64 len, bool writable) {
    Push(Region{base, len, writable, Region::kNoSite});
  }

  /// Registers (or refreshes) the map-value region produced by the
  /// helper call at instruction `site`. Re-executing the same call site
  /// overwrites its slot instead of growing the set.
  void SetCallSite(u32 site, u64 base, u64 len) {
    for (usize i = 0; i < count_; i++) {
      Region& r = At(i);
      if (r.site == site) {
        r.base = base;
        r.len = len;
        return;
      }
    }
    Push(Region{base, len, /*writable=*/true, site});
  }

  /// Region containing [addr, addr+len), or null.
  const Region* Find(u64 addr, u64 len) const {
    for (usize i = 0; i < count_; i++) {
      const Region& r = At(i);
      if (addr >= r.base && len <= r.len && addr - r.base <= r.len - len) {
        return &r;
      }
    }
    return nullptr;
  }

  /// Number of live map-value (call-site) regions — pinned by the
  /// region-growth regression test.
  usize call_site_regions() const {
    usize n = 0;
    for (usize i = 0; i < count_; i++) {
      if (At(i).site != Region::kNoSite) n++;
    }
    return n;
  }

  usize size() const { return count_; }

 private:
  static constexpr usize kInline = 8;

  Region& At(usize i) {
    return i < kInline ? inline_[i] : overflow_[i - kInline];
  }
  const Region& At(usize i) const {
    return i < kInline ? inline_[i] : overflow_[i - kInline];
  }
  void Push(const Region& r) {
    if (count_ < kInline) {
      inline_[count_] = r;
    } else {
      overflow_.push_back(r);
    }
    count_++;
  }

  Region inline_[kInline];
  std::vector<Region> overflow_;
  usize count_ = 0;
};

}  // namespace nvmetro::ebpf

// Static verifier for eBPF programs.
//
// Before a classifier is attached, the host verifies it the way the Linux
// kernel does (paper §II-B: "the Linux kernel verifies its safety through
// a large range of properties, including constraints on memory accesses,
// loops and program size"):
//
//   - every path is explored through the (acyclic) CFG; back-edges, i.e.
//     loops, are rejected;
//   - registers are typed (scalar / ctx pointer / stack pointer / map
//     value / map reference); reads of uninitialized registers or stack
//     slots are rejected;
//   - all memory accesses are bounds-checked against their region, and
//     context accesses must match the declared field table (writes only
//     to mediation-writable fields);
//   - map-value pointers returned by map_lookup_elem must be null-checked
//     before dereference;
//   - helper calls are checked against typed signatures;
//   - r10 is read-only; programs must end in exit with r0 set.
//
// Pointer arithmetic is restricted to compile-time-constant offsets,
// which is sufficient for classifier-style programs and keeps the
// analysis exact (documented deviation from the kernel's range tracking).
#pragma once

#include <string>

#include "common/status.h"
#include "ebpf/helpers.h"
#include "ebpf/program.h"

namespace nvmetro::ebpf {

class Verifier {
 public:
  struct Options {
    /// Max (pc, state) expansions before giving up ("program too
    /// complex", like the kernel's 1M-insn cap, scaled down).
    u32 max_visited = 200'000;
  };

  Verifier(const CtxDescriptor& ctx, const HelperRegistry& helpers)
      : Verifier(ctx, helpers, Options{}) {}
  Verifier(const CtxDescriptor& ctx, const HelperRegistry& helpers,
           Options opts);

  /// Returns Ok when the program is safe to run against the declared
  /// context; otherwise an error describing the first violation found
  /// (message includes the instruction index).
  Status Verify(const Program& prog) const;

 private:
  const CtxDescriptor& ctx_;
  const HelperRegistry& helpers_;
  Options opts_;
};

}  // namespace nvmetro::ebpf

#include "ebpf/vm.h"

#include <cstring>

#include "common/strutil.h"

// Direct-threaded dispatch via computed goto on GCC/Clang; dense switch
// elsewhere. Both share the same handler bodies below.
#if (defined(__GNUC__) || defined(__clang__)) && \
    !defined(NVMETRO_EBPF_NO_COMPUTED_GOTO)
#define NVMETRO_VM_THREADED 1
#else
#define NVMETRO_VM_THREADED 0
#endif

namespace nvmetro::ebpf {

namespace {

// log2 of a memory access size (1/2/4/8) — indexes the sized op blocks.
constexpr u8 SizeLog2(u32 size) {
  return size == 1 ? 0 : size == 2 ? 1 : size == 4 ? 2 : 3;
}

// Decodes the slot at `pc` as if it could be executed. Slots that are
// the high half of an LD_IMM64 get decoded standalone too: normal flow
// skips them (the lo slot advances pc by 2), but a jump into the middle
// must behave exactly like the legacy interpreter fetching that slot
// (usually "insn %u: bad class", since the hi half's opcode is 0).
DInsn DecodeSlot(const Program& prog, u32 pc, const HelperRegistry& helpers,
                 std::vector<std::string>& errors) {
  const auto& insns = prog.insns();
  const Insn& in = insns[pc];

  DInsn d;
  auto err = [&](std::string msg) {
    d.key = DOp::kErr;
    errors.push_back(std::move(msg));
    d.target = static_cast<u32>(errors.size() - 1);
    return d;
  };

  u8 dst = in.dst();
  u8 src = in.src();
  if (dst >= kNumRegs || src >= kNumRegs) {
    return err(StrFormat("insn %u: bad register", pc));
  }
  d.dst = dst;
  d.src = src;

  if (in.opcode == kOpLdImm64) {
    if (pc + 1 >= insns.size()) return err("truncated LD_IMM64");
    if (in.src() == kPseudoMapIdx) {
      if (static_cast<u32>(in.imm) >= prog.maps().size()) {
        return err("bad map index");
      }
      d.key = DOp::kLdMapPtr;
      d.ptr = prog.maps()[in.imm].get();
    } else {
      d.key = DOp::kLdImm;
      d.imm =
          (static_cast<u64>(static_cast<u32>(insns[pc + 1].imm)) << 32) |
          static_cast<u32>(in.imm);
    }
    return d;
  }

  u8 cls = InsnClassOf(in.opcode);
  u8 op = in.opcode & 0xF0;
  bool use_reg = (in.opcode & 0x08) != 0;

  switch (cls) {
    case kClassAlu:
    case kClassAlu64: {
      bool is64 = cls == kClassAlu64;
      // Fold the immediate operand exactly as the legacy interpreter
      // materializes it: sign-extend, then 32-bit mask for ALU32, then
      // clamp shift counts.
      u64 imm = static_cast<u64>(static_cast<i64>(in.imm));
      if (!is64) imm &= 0xFFFFFFFF;
      d.imm = imm;
      switch (op) {
#define NVMETRO_ALU_CASE(OPN, N)                                        \
  case kAlu##OPN:                                                       \
    d.key = is64 ? (use_reg ? DOp::k##N##64Reg : DOp::k##N##64Imm)      \
                 : (use_reg ? DOp::k##N##32Reg : DOp::k##N##32Imm);     \
    break;
        NVMETRO_ALU_CASE(Add, Add)
        NVMETRO_ALU_CASE(Sub, Sub)
        NVMETRO_ALU_CASE(Mul, Mul)
        NVMETRO_ALU_CASE(Div, Div)
        NVMETRO_ALU_CASE(Mod, Mod)
        NVMETRO_ALU_CASE(Or, Or)
        NVMETRO_ALU_CASE(And, And)
        NVMETRO_ALU_CASE(Xor, Xor)
        NVMETRO_ALU_CASE(Lsh, Lsh)
        NVMETRO_ALU_CASE(Rsh, Rsh)
        NVMETRO_ALU_CASE(Arsh, Arsh)
        NVMETRO_ALU_CASE(Mov, Mov)
#undef NVMETRO_ALU_CASE
        case kAluNeg:
          d.key = is64 ? DOp::kNeg64 : DOp::kNeg32;
          break;
        default:
          return err(StrFormat("insn %u: bad ALU op", pc));
      }
      if (op == kAluLsh || op == kAluRsh || op == kAluArsh) {
        d.imm &= is64 ? 63 : 31;
      }
      return d;
    }

    case kClassLdx: {
      u32 sz = MemSizeBytes(in.opcode);
      d.size = static_cast<u8>(sz);
      // The B/H/W/Dw block order matches log2(size).
      d.key = static_cast<DOp>(static_cast<u8>(DOp::kLdxB) + SizeLog2(sz));
      d.off = in.off;
      return d;
    }

    case kClassStx:
    case kClassSt: {
      u32 sz = MemSizeBytes(in.opcode);
      d.size = static_cast<u8>(sz);
      u8 base = static_cast<u8>(cls == kClassStx ? DOp::kStxB : DOp::kStB);
      d.key = static_cast<DOp>(base + SizeLog2(sz));
      d.off = in.off;
      d.imm = static_cast<u64>(static_cast<i64>(in.imm));
      return d;
    }

    case kClassJmp: {
      if (op == kJmpExit) {
        d.key = DOp::kExit;
        return d;
      }
      if (op == kJmpCall) {
        const HelperSpec* spec = helpers.Find(static_cast<u32>(in.imm));
        if (!spec) return err(StrFormat("insn %u: bad helper", pc));
        d.key = DOp::kCall;
        d.ptr = spec;
        return d;
      }
      d.target = static_cast<u32>(pc + 1 + in.off);
      if (op == kJmpJa) {
        d.key = DOp::kJa;
        return d;
      }
      d.imm = static_cast<u64>(static_cast<i64>(in.imm));
      u8 base;
      switch (op) {
        case kJmpJeq: base = static_cast<u8>(DOp::kJeqReg); break;
        case kJmpJne: base = static_cast<u8>(DOp::kJneReg); break;
        case kJmpJgt: base = static_cast<u8>(DOp::kJgtReg); break;
        case kJmpJge: base = static_cast<u8>(DOp::kJgeReg); break;
        case kJmpJlt: base = static_cast<u8>(DOp::kJltReg); break;
        case kJmpJle: base = static_cast<u8>(DOp::kJleReg); break;
        case kJmpJset: base = static_cast<u8>(DOp::kJsetReg); break;
        case kJmpJsgt: base = static_cast<u8>(DOp::kJsgtReg); break;
        case kJmpJsge: base = static_cast<u8>(DOp::kJsgeReg); break;
        case kJmpJslt: base = static_cast<u8>(DOp::kJsltReg); break;
        case kJmpJsle: base = static_cast<u8>(DOp::kJsleReg); break;
        default:
          return err(StrFormat("insn %u: bad jump op", pc));
      }
      // The Imm block mirrors the Reg block 11 ops later.
      d.key = static_cast<DOp>(base + (use_reg ? 0 : 11));
      return d;
    }

    default:
      return err(StrFormat("insn %u: bad class", pc));
  }
}

}  // namespace

DecodedProgram DecodedProgram::Decode(const Program& prog,
                                      const HelperRegistry& helpers) {
  DecodedProgram dp;
  dp.maps_ = prog.maps();
  dp.map_ptrs_.reserve(dp.maps_.size());
  for (const auto& m : dp.maps_) dp.map_ptrs_.push_back(m.get());
  const u32 n = static_cast<u32>(prog.insns().size());
  dp.code_.reserve(n);
  for (u32 pc = 0; pc < n; pc++) {
    dp.code_.push_back(DecodeSlot(prog, pc, helpers, dp.errors_));
  }
  return dp;
}

Interpreter::RunResult DecodedVm::Run(const DecodedProgram& prog,
                                      const RunParams& params) {
  Interpreter::RunResult res;
  const DInsn* code = prog.code().data();
  const u32 n = static_cast<u32>(prog.code().size());
  if (n == 0) {
    res.status = InvalidArgument("empty program");
    return res;
  }

  alignas(8) u8 stack[kStackSize];
  u64 regs[kNumRegs] = {};
  regs[kRegCtx] = reinterpret_cast<u64>(params.ctx);
  regs[kRegFp] = reinterpret_cast<u64>(stack) + kStackSize;

  const u64 ctx_base = reinterpret_cast<u64>(params.ctx);
  regions_.Reset();
  regions_.AddFixed(ctx_base, params.ctx_size, /*writable=*/true);
  regions_.AddFixed(reinterpret_cast<u64>(stack), kStackSize,
                    /*writable=*/true);
  if (params.data && params.data_len) {
    regions_.AddFixed(reinterpret_cast<u64>(params.data), params.data_len,
                      /*writable=*/false);
  }

  // Fixed-region bounds mirrored into locals for the memory-op fast
  // path (see the sized load/store handlers below). `data_size == 0`
  // when there is no data region, which makes its range check
  // unsatisfiable for every access size.
  const u64 stack_base = reinterpret_cast<u64>(stack);
  const u64 ctx_size = params.ctx_size;
  const u64 data_base = reinterpret_cast<u64>(params.data);
  const u64 data_size = params.data ? params.data_len : 0;

  const auto& maps = prog.map_ptrs();
  u32 pc = 0;
  const DInsn* d = nullptr;

#if NVMETRO_VM_THREADED
#define NVMETRO_VM_OP(name) L_##name:
#define NVMETRO_VM_NEXT(npc)                                 \
  do {                                                       \
    pc = (npc);                                              \
    if (res.insns++ >= opts_.max_insns) goto budget;         \
    if (pc >= n) goto pc_oor;                                \
    d = &code[pc];                                           \
    goto* kLabels[static_cast<usize>(d->key)];               \
  } while (0)
  static const void* const kLabels[] = {
#define NVMETRO_EBPF_VM_LABEL(name) &&L_##name,
      NVMETRO_EBPF_VM_OPS(NVMETRO_EBPF_VM_LABEL)
#undef NVMETRO_EBPF_VM_LABEL
  };
  NVMETRO_VM_NEXT(0);
#else
#define NVMETRO_VM_OP(name) case DOp::name:
#define NVMETRO_VM_NEXT(npc) \
  do {                       \
    pc = (npc);              \
    goto dispatch;           \
  } while (0)
dispatch:
  if (res.insns++ >= opts_.max_insns) goto budget;
  if (pc >= n) goto pc_oor;
  d = &code[pc];
  switch (d->key) {
#endif

  NVMETRO_VM_OP(kErr) {
    res.status = Internal(prog.error_msg(d->target));
    goto done;
  }

  // --- ALU64, register operand ---------------------------------------
  NVMETRO_VM_OP(kAdd64Reg) { regs[d->dst] += regs[d->src]; }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kSub64Reg) { regs[d->dst] -= regs[d->src]; }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kMul64Reg) { regs[d->dst] *= regs[d->src]; }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kDiv64Reg) {
    u64 b = regs[d->src];
    regs[d->dst] = b ? regs[d->dst] / b : 0;
  }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kMod64Reg) {
    u64 b = regs[d->src];
    if (b) regs[d->dst] %= b;
  }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kOr64Reg) { regs[d->dst] |= regs[d->src]; }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kAnd64Reg) { regs[d->dst] &= regs[d->src]; }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kXor64Reg) { regs[d->dst] ^= regs[d->src]; }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kLsh64Reg) { regs[d->dst] <<= regs[d->src] & 63; }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kRsh64Reg) { regs[d->dst] >>= regs[d->src] & 63; }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kArsh64Reg) {
    regs[d->dst] = static_cast<u64>(static_cast<i64>(regs[d->dst]) >>
                                    (regs[d->src] & 63));
  }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kMov64Reg) { regs[d->dst] = regs[d->src]; }
  NVMETRO_VM_NEXT(pc + 1);

  // --- ALU64, immediate operand (pre-extended, shifts pre-clamped) ---
  NVMETRO_VM_OP(kAdd64Imm) { regs[d->dst] += d->imm; }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kSub64Imm) { regs[d->dst] -= d->imm; }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kMul64Imm) { regs[d->dst] *= d->imm; }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kDiv64Imm) { regs[d->dst] = d->imm ? regs[d->dst] / d->imm : 0; }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kMod64Imm) {
    if (d->imm) regs[d->dst] %= d->imm;
  }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kOr64Imm) { regs[d->dst] |= d->imm; }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kAnd64Imm) { regs[d->dst] &= d->imm; }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kXor64Imm) { regs[d->dst] ^= d->imm; }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kLsh64Imm) { regs[d->dst] <<= d->imm; }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kRsh64Imm) { regs[d->dst] >>= d->imm; }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kArsh64Imm) {
    regs[d->dst] = static_cast<u64>(static_cast<i64>(regs[d->dst]) >> d->imm);
  }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kMov64Imm) { regs[d->dst] = d->imm; }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kNeg64) { regs[d->dst] = ~regs[d->dst] + 1; }
  NVMETRO_VM_NEXT(pc + 1);

  // --- ALU32, register operand ---------------------------------------
  NVMETRO_VM_OP(kAdd32Reg) {
    regs[d->dst] = static_cast<u32>(regs[d->dst] + regs[d->src]);
  }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kSub32Reg) {
    regs[d->dst] = static_cast<u32>(regs[d->dst] - regs[d->src]);
  }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kMul32Reg) {
    regs[d->dst] = static_cast<u32>(static_cast<u32>(regs[d->dst]) *
                                    static_cast<u32>(regs[d->src]));
  }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kDiv32Reg) {
    u32 b = static_cast<u32>(regs[d->src]);
    regs[d->dst] = b ? static_cast<u32>(regs[d->dst]) / b : 0;
  }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kMod32Reg) {
    u32 a = static_cast<u32>(regs[d->dst]);
    u32 b = static_cast<u32>(regs[d->src]);
    regs[d->dst] = b ? a % b : a;
  }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kOr32Reg) {
    regs[d->dst] = static_cast<u32>(regs[d->dst] | regs[d->src]);
  }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kAnd32Reg) {
    regs[d->dst] = static_cast<u32>(regs[d->dst] & regs[d->src]);
  }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kXor32Reg) {
    regs[d->dst] = static_cast<u32>(regs[d->dst] ^ regs[d->src]);
  }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kLsh32Reg) {
    regs[d->dst] = static_cast<u32>(static_cast<u32>(regs[d->dst])
                                    << (regs[d->src] & 31));
  }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kRsh32Reg) {
    regs[d->dst] = static_cast<u32>(regs[d->dst]) >>
                   (static_cast<u32>(regs[d->src]) & 31);
  }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kArsh32Reg) {
    regs[d->dst] = static_cast<u32>(
        static_cast<i32>(static_cast<u32>(regs[d->dst])) >>
        (static_cast<u32>(regs[d->src]) & 31));
  }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kMov32Reg) { regs[d->dst] = static_cast<u32>(regs[d->src]); }
  NVMETRO_VM_NEXT(pc + 1);

  // --- ALU32, immediate operand (pre-masked to 32 bits) --------------
  NVMETRO_VM_OP(kAdd32Imm) {
    regs[d->dst] = static_cast<u32>(regs[d->dst] + d->imm);
  }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kSub32Imm) {
    regs[d->dst] = static_cast<u32>(regs[d->dst] - d->imm);
  }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kMul32Imm) {
    regs[d->dst] = static_cast<u32>(static_cast<u32>(regs[d->dst]) *
                                    static_cast<u32>(d->imm));
  }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kDiv32Imm) {
    regs[d->dst] =
        d->imm ? static_cast<u32>(regs[d->dst]) / static_cast<u32>(d->imm) : 0;
  }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kMod32Imm) {
    u32 a = static_cast<u32>(regs[d->dst]);
    regs[d->dst] = d->imm ? a % static_cast<u32>(d->imm) : a;
  }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kOr32Imm) {
    regs[d->dst] = static_cast<u32>(regs[d->dst] | d->imm);
  }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kAnd32Imm) {
    regs[d->dst] = static_cast<u32>(regs[d->dst] & d->imm);
  }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kXor32Imm) {
    regs[d->dst] = static_cast<u32>(regs[d->dst] ^ d->imm);
  }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kLsh32Imm) {
    regs[d->dst] = static_cast<u32>(static_cast<u32>(regs[d->dst]) << d->imm);
  }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kRsh32Imm) {
    regs[d->dst] = static_cast<u32>(regs[d->dst]) >> d->imm;
  }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kArsh32Imm) {
    regs[d->dst] = static_cast<u32>(
        static_cast<i32>(static_cast<u32>(regs[d->dst])) >> d->imm);
  }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kMov32Imm) { regs[d->dst] = static_cast<u32>(d->imm); }
  NVMETRO_VM_NEXT(pc + 1);
  NVMETRO_VM_OP(kNeg32) {
    regs[d->dst] = static_cast<u32>(~static_cast<u32>(regs[d->dst]) + 1);
  }
  NVMETRO_VM_NEXT(pc + 1);

  // --- memory ---------------------------------------------------------
  // Size-specialized: each op moves a fixed width (single load/store
  // after inlining, no variable-length memcpy) and bounds-checks against
  // the three fixed regions via the run-local `ctx_size` / `stack_base` /
  // `data_base` / `data_size` first. Those locals are provably unaliased
  // by program stores, so the compiler keeps them in registers across
  // the dispatch loop; the regions_ member — which every store through
  // an arbitrary program pointer forces back to memory — is only
  // consulted for map-value regions and for diagnostics. The range
  // predicates are exactly RegionSet::Find's, so accept/reject behavior
  // and error strings stay bit-identical to the legacy interpreter.
#define NVMETRO_VM_LDX(name, T)                                            \
  NVMETRO_VM_OP(name) {                                                    \
    const u64 addr = regs[d->src] + static_cast<i64>(d->off);              \
    constexpr u64 kLen = sizeof(T);                                        \
    if (!(addr >= ctx_base && kLen <= ctx_size &&                          \
          addr - ctx_base <= ctx_size - kLen) &&                           \
        !(addr >= stack_base && addr - stack_base <= kStackSize - kLen) && \
        !(addr >= data_base && kLen <= data_size &&                        \
          addr - data_base <= data_size - kLen) &&                         \
        !regions_.Find(addr, kLen)) {                                      \
      res.status =                                                         \
          PermissionDenied(StrFormat("insn %u: invalid load addr", pc));   \
      goto done;                                                           \
    }                                                                      \
    T v;                                                                   \
    std::memcpy(&v, reinterpret_cast<const void*>(addr), sizeof(T));       \
    regs[d->dst] = v;                                                      \
  }                                                                        \
  NVMETRO_VM_NEXT(pc + 1)

  NVMETRO_VM_LDX(kLdxB, u8);
  NVMETRO_VM_LDX(kLdxH, u16);
  NVMETRO_VM_LDX(kLdxW, u32);
  NVMETRO_VM_LDX(kLdxDw, u64);
#undef NVMETRO_VM_LDX

  // Stores fast-path the two writable fixed regions (stack, then ctx
  // with its read-only-field table); everything else — map values,
  // the read-only data region, bad addresses — takes the authoritative
  // RegionSet walk, which produces the same verdicts and messages as
  // the legacy interpreter.
#define NVMETRO_VM_ST(name, T, VALUE)                                      \
  NVMETRO_VM_OP(name) {                                                    \
    const u64 addr = regs[d->dst] + static_cast<i64>(d->off);              \
    constexpr u64 kLen = sizeof(T);                                        \
    const T v = static_cast<T>(VALUE);                                     \
    if (addr >= stack_base && addr - stack_base <= kStackSize - kLen) {    \
      std::memcpy(reinterpret_cast<void*>(addr), &v, sizeof(T));           \
    } else if (addr >= ctx_base && kLen <= ctx_size &&                     \
               addr - ctx_base <= ctx_size - kLen) {                       \
      if (params.ctx_desc &&                                               \
          !params.ctx_desc->CheckAccess(static_cast<u32>(addr - ctx_base), \
                                        kLen, /*write=*/true)) {           \
        res.status = PermissionDenied(                                     \
            StrFormat("insn %u: store to read-only ctx field", pc));       \
        goto done;                                                         \
      }                                                                    \
      std::memcpy(reinterpret_cast<void*>(addr), &v, sizeof(T));           \
    } else {                                                               \
      const Region* r = regions_.Find(addr, kLen);                         \
      if (!r) {                                                            \
        res.status =                                                       \
            PermissionDenied(StrFormat("insn %u: invalid store addr", pc));\
        goto done;                                                         \
      }                                                                    \
      if (!r->writable) {                                                  \
        res.status = PermissionDenied(                                     \
            StrFormat("insn %u: store to read-only region", pc));          \
        goto done;                                                         \
      }                                                                    \
      std::memcpy(reinterpret_cast<void*>(addr), &v, sizeof(T));           \
    }                                                                      \
  }                                                                        \
  NVMETRO_VM_NEXT(pc + 1)

  NVMETRO_VM_ST(kStxB, u8, regs[d->src]);
  NVMETRO_VM_ST(kStxH, u16, regs[d->src]);
  NVMETRO_VM_ST(kStxW, u32, regs[d->src]);
  NVMETRO_VM_ST(kStxDw, u64, regs[d->src]);
  NVMETRO_VM_ST(kStB, u8, d->imm);
  NVMETRO_VM_ST(kStH, u16, d->imm);
  NVMETRO_VM_ST(kStW, u32, d->imm);
  NVMETRO_VM_ST(kStDw, u64, d->imm);
#undef NVMETRO_VM_ST

  // --- LD_IMM64 (two slots; hi slot only reached by a rogue jump) ----
  NVMETRO_VM_OP(kLdImm) { regs[d->dst] = d->imm; }
  NVMETRO_VM_NEXT(pc + 2);
  NVMETRO_VM_OP(kLdMapPtr) { regs[d->dst] = reinterpret_cast<u64>(d->ptr); }
  NVMETRO_VM_NEXT(pc + 2);

  // --- control --------------------------------------------------------
  NVMETRO_VM_OP(kJa)
  NVMETRO_VM_NEXT(d->target);
  NVMETRO_VM_OP(kExit) {
    res.r0 = regs[kRegR0];
    res.status = OkStatus();
    goto done;
  }
  NVMETRO_VM_OP(kCall) {
    const HelperSpec* spec = static_cast<const HelperSpec*>(d->ptr);
    // Same per-call argument typing as the legacy interpreter: the map
    // is scoped to this call, and key/value pointers must follow the
    // map argument that sizes them.
    const Map* call_map = nullptr;
    for (usize a = 0; a < spec->args.size(); a++) {
      u64 v = regs[1 + a];
      switch (spec->args[a]) {
        case ArgType::kAnything:
          break;
        case ArgType::kMapPtr: {
          bool found = false;
          for (const Map* m : maps) {
            if (reinterpret_cast<u64>(m) == v) {
              call_map = m;
              found = true;
              break;
            }
          }
          if (!found) {
            res.status =
                PermissionDenied(StrFormat("insn %u: bad map argument", pc));
            goto done;
          }
          break;
        }
        case ArgType::kStackPtrKey:
        case ArgType::kStackPtrValue: {
          if (!call_map) {
            res.status = PermissionDenied(StrFormat(
                "insn %u: key/value argument before map argument", pc));
            goto done;
          }
          u32 need = spec->args[a] == ArgType::kStackPtrKey
                         ? call_map->key_size()
                         : call_map->value_size();
          const Region* r = regions_.Find(v, need);
          if (!r || !r->writable) {
            res.status = PermissionDenied(
                StrFormat("insn %u: bad pointer argument", pc));
            goto done;
          }
          break;
        }
      }
    }
    u64 r0 = spec->fn(env_, regs[1], regs[2], regs[3], regs[4], regs[5]);
    if (spec->ret == RetType::kMapValueOrNull && r0 != 0 && call_map) {
      regions_.SetCallSite(pc, r0, call_map->value_size());
    }
    regs[kRegR0] = r0;
    for (int r = 1; r <= 5; r++) regs[r] = 0;
  }
  NVMETRO_VM_NEXT(pc + 1);

  // --- conditional jumps, register operand ---------------------------
#define NVMETRO_VM_JMP(name, expr)                     \
  NVMETRO_VM_OP(name) {                                \
    u64 a = regs[d->dst];                              \
    (void)a;                                           \
    if (expr) NVMETRO_VM_NEXT(d->target);              \
  }                                                    \
  NVMETRO_VM_NEXT(pc + 1);

#define NVMETRO_VM_B regs[d->src]
  NVMETRO_VM_JMP(kJeqReg, a == NVMETRO_VM_B)
  NVMETRO_VM_JMP(kJneReg, a != NVMETRO_VM_B)
  NVMETRO_VM_JMP(kJgtReg, a > NVMETRO_VM_B)
  NVMETRO_VM_JMP(kJgeReg, a >= NVMETRO_VM_B)
  NVMETRO_VM_JMP(kJltReg, a < NVMETRO_VM_B)
  NVMETRO_VM_JMP(kJleReg, a <= NVMETRO_VM_B)
  NVMETRO_VM_JMP(kJsetReg, (a & NVMETRO_VM_B) != 0)
  NVMETRO_VM_JMP(kJsgtReg,
                 static_cast<i64>(a) > static_cast<i64>(NVMETRO_VM_B))
  NVMETRO_VM_JMP(kJsgeReg,
                 static_cast<i64>(a) >= static_cast<i64>(NVMETRO_VM_B))
  NVMETRO_VM_JMP(kJsltReg,
                 static_cast<i64>(a) < static_cast<i64>(NVMETRO_VM_B))
  NVMETRO_VM_JMP(kJsleReg,
                 static_cast<i64>(a) <= static_cast<i64>(NVMETRO_VM_B))
#undef NVMETRO_VM_B

  // --- conditional jumps, immediate operand (pre-extended) -----------
#define NVMETRO_VM_B d->imm
  NVMETRO_VM_JMP(kJeqImm, a == NVMETRO_VM_B)
  NVMETRO_VM_JMP(kJneImm, a != NVMETRO_VM_B)
  NVMETRO_VM_JMP(kJgtImm, a > NVMETRO_VM_B)
  NVMETRO_VM_JMP(kJgeImm, a >= NVMETRO_VM_B)
  NVMETRO_VM_JMP(kJltImm, a < NVMETRO_VM_B)
  NVMETRO_VM_JMP(kJleImm, a <= NVMETRO_VM_B)
  NVMETRO_VM_JMP(kJsetImm, (a & NVMETRO_VM_B) != 0)
  NVMETRO_VM_JMP(kJsgtImm,
                 static_cast<i64>(a) > static_cast<i64>(NVMETRO_VM_B))
  NVMETRO_VM_JMP(kJsgeImm,
                 static_cast<i64>(a) >= static_cast<i64>(NVMETRO_VM_B))
  NVMETRO_VM_JMP(kJsltImm,
                 static_cast<i64>(a) < static_cast<i64>(NVMETRO_VM_B))
  NVMETRO_VM_JMP(kJsleImm,
                 static_cast<i64>(a) <= static_cast<i64>(NVMETRO_VM_B))
#undef NVMETRO_VM_B
#undef NVMETRO_VM_JMP

#if !NVMETRO_VM_THREADED
  }
  // Unreachable: every DOp has a case above.
  res.status = Internal("pc out of range");
  goto done;
#endif

budget:
  res.status = ResourceExhausted("instruction budget exceeded");
  goto done;
pc_oor:
  res.status = Internal("pc out of range");
  goto done;
done:
  res.map_regions = regions_.call_site_regions();
  return res;

#undef NVMETRO_VM_OP
#undef NVMETRO_VM_NEXT
}

}  // namespace nvmetro::ebpf

// eBPF maps: array and hash, keyed/valued by raw bytes, as in the kernel.
//
// NVMetro uses maps for classifier state that must persist across
// invocations (the routing policies and per-request metadata beyond what
// the per-request context carries), and for host-to-classifier
// configuration (e.g. the partition table for LBA translation).
#pragma once

#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace nvmetro::ebpf {

enum class MapType { kArray, kHash };

/// Base interface shared by map kinds. Lookup returns a stable pointer to
/// the value storage (valid until the entry is deleted / map destroyed),
/// matching eBPF's map_lookup_elem contract.
class Map {
 public:
  Map(MapType type, u32 key_size, u32 value_size, u32 max_entries)
      : type_(type),
        key_size_(key_size),
        value_size_(value_size),
        max_entries_(max_entries) {}
  virtual ~Map() = default;

  MapType type() const { return type_; }
  u32 key_size() const { return key_size_; }
  u32 value_size() const { return value_size_; }
  u32 max_entries() const { return max_entries_; }

  /// Returns the value for `key` or nullptr.
  virtual u8* Lookup(const void* key) = 0;
  /// Inserts or updates. Fails when the map is full.
  virtual Status Update(const void* key, const void* value) = 0;
  /// Removes an entry (array maps zero the slot instead).
  virtual Status Delete(const void* key) = 0;
  virtual usize entry_count() const = 0;

 private:
  MapType type_;
  u32 key_size_;
  u32 value_size_;
  u32 max_entries_;
};

/// Array map: keys are u32 indices < max_entries; storage preallocated.
class ArrayMap : public Map {
 public:
  ArrayMap(u32 value_size, u32 max_entries);

  u8* Lookup(const void* key) override;
  Status Update(const void* key, const void* value) override;
  Status Delete(const void* key) override;
  usize entry_count() const override { return max_entries(); }

  /// Typed convenience for host-side configuration.
  template <typename V>
  void Set(u32 index, const V& v) {
    static_assert(std::is_trivially_copyable_v<V>);
    Update(&index, &v);
  }
  template <typename V>
  V Get(u32 index) {
    V v{};
    if (u8* p = Lookup(&index)) std::memcpy(&v, p, sizeof(V));
    return v;
  }

 private:
  std::vector<u8> data_;
};

/// Hash map over byte-string keys.
class HashMap : public Map {
 public:
  HashMap(u32 key_size, u32 value_size, u32 max_entries);

  u8* Lookup(const void* key) override;
  Status Update(const void* key, const void* value) override;
  Status Delete(const void* key) override;
  usize entry_count() const override { return table_.size(); }

 private:
  std::string KeyOf(const void* key) const {
    return std::string(static_cast<const char*>(key), key_size());
  }
  // unique_ptr keeps value storage stable across rehashes.
  std::unordered_map<std::string, std::unique_ptr<u8[]>> table_;
};

}  // namespace nvmetro::ebpf

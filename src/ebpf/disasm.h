// eBPF disassembler: renders a Program back into the text form the
// Assembler accepts (bpftool-style debugging for classifiers). The
// output round-trips: Assemble(Disassemble(p)) yields p's exact
// instruction bytes — tested as a property over random programs.
#pragma once

#include <string>

#include "common/status.h"
#include "ebpf/helpers.h"
#include "ebpf/program.h"

namespace nvmetro::ebpf {

/// Renders `prog` as assembler-compatible text. Jump targets get
/// synthetic labels ("L<pc>"); helper calls are resolved to names
/// through `helpers` when possible. Fails on malformed encodings
/// (e.g. a truncated lddw pair).
Result<std::string> Disassemble(
    const Program& prog,
    const HelperRegistry& helpers = HelperRegistry::Default());

}  // namespace nvmetro::ebpf

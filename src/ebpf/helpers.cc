#include "ebpf/helpers.h"

namespace nvmetro::ebpf {

void HelperRegistry::Register(HelperSpec spec) {
  specs_[spec.id] = std::move(spec);
}

const HelperSpec* HelperRegistry::Find(u32 id) const {
  auto it = specs_.find(id);
  return it == specs_.end() ? nullptr : &it->second;
}

const HelperRegistry& HelperRegistry::Default() {
  static const HelperRegistry* kRegistry = [] {
    auto* r = new HelperRegistry();
    r->Register(HelperSpec{
        kHelperMapLookup,
        "map_lookup_elem",
        RetType::kMapValueOrNull,
        {ArgType::kMapPtr, ArgType::kStackPtrKey},
        [](HelperEnv&, u64 map, u64 key, u64, u64, u64) -> u64 {
          auto* m = reinterpret_cast<Map*>(map);
          return reinterpret_cast<u64>(
              m->Lookup(reinterpret_cast<const void*>(key)));
        }});
    r->Register(HelperSpec{
        kHelperMapUpdate,
        "map_update_elem",
        RetType::kInteger,
        {ArgType::kMapPtr, ArgType::kStackPtrKey, ArgType::kStackPtrValue,
         ArgType::kAnything},
        [](HelperEnv&, u64 map, u64 key, u64 value, u64, u64) -> u64 {
          auto* m = reinterpret_cast<Map*>(map);
          Status st = m->Update(reinterpret_cast<const void*>(key),
                                reinterpret_cast<const void*>(value));
          return st.ok() ? 0 : static_cast<u64>(-1);
        }});
    r->Register(HelperSpec{
        kHelperMapDelete,
        "map_delete_elem",
        RetType::kInteger,
        {ArgType::kMapPtr, ArgType::kStackPtrKey},
        [](HelperEnv&, u64 map, u64 key, u64, u64, u64) -> u64 {
          auto* m = reinterpret_cast<Map*>(map);
          Status st = m->Delete(reinterpret_cast<const void*>(key));
          return st.ok() ? 0 : static_cast<u64>(-1);
        }});
    r->Register(HelperSpec{
        kHelperKtimeGetNs,
        "ktime_get_ns",
        RetType::kInteger,
        {},
        [](HelperEnv& env, u64, u64, u64, u64, u64) -> u64 {
          return env.ktime_ns ? env.ktime_ns() : 0;
        }});
    r->Register(HelperSpec{
        kHelperTrace,
        "trace",
        RetType::kInteger,
        {ArgType::kAnything},
        [](HelperEnv& env, u64 v, u64, u64, u64, u64) -> u64 {
          if (env.trace) env.trace->push_back(v);
          return 0;
        }});
    r->Register(HelperSpec{
        kHelperGetPrandomU32,
        "get_prandom_u32",
        RetType::kInteger,
        {},
        [](HelperEnv& env, u64, u64, u64, u64, u64) -> u64 {
          return env.rng ? (env.rng->Next() & 0xFFFFFFFFu) : 4;
        }});
    return r;
  }();
  return *kRegistry;
}

}  // namespace nvmetro::ebpf

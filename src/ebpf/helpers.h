// Helper-function registry.
//
// eBPF programs can call a fixed list of authorized helper functions
// (paper §II-B). Each helper declares a typed signature that the verifier
// checks statically (map pointers, stack pointers sized by the map's
// key/value, arbitrary scalars) and an implementation invoked by the
// interpreter with resolved host pointers.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "ebpf/map.h"

namespace nvmetro::ebpf {

enum class ArgType {
  kAnything,       // any initialized scalar
  kMapPtr,         // register holding a map reference (LD_IMM64 map)
  kStackPtrKey,    // stack pointer with map key_size readable bytes
  kStackPtrValue,  // stack pointer with map value_size readable bytes
};

enum class RetType {
  kInteger,         // scalar
  kMapValueOrNull,  // pointer to map value, must be null-checked
};

/// Ambient services helpers may use; bound per-interpreter.
struct HelperEnv {
  std::function<u64()> ktime_ns;  // simulated clock
  Rng* rng = nullptr;
  std::vector<u64>* trace = nullptr;  // trace() destination
};

struct HelperSpec {
  u32 id;
  const char* name;
  RetType ret;
  std::vector<ArgType> args;
  /// Arguments arrive as raw u64s; pointer args are host addresses the
  /// interpreter has validated against the declared ArgType.
  std::function<u64(HelperEnv&, u64, u64, u64, u64, u64)> fn;
};

/// Well-known helper ids (aligned with Linux where an equivalent exists).
enum HelperId : u32 {
  kHelperMapLookup = 1,
  kHelperMapUpdate = 2,
  kHelperMapDelete = 3,
  kHelperKtimeGetNs = 5,
  kHelperTrace = 6,        // custom: record a u64 for debugging/tests
  kHelperGetPrandomU32 = 7,
};

class HelperRegistry {
 public:
  void Register(HelperSpec spec);
  const HelperSpec* Find(u32 id) const;

  /// Registry with the standard helpers above.
  static const HelperRegistry& Default();

 private:
  std::map<u32, HelperSpec> specs_;
};

}  // namespace nvmetro::ebpf

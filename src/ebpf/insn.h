// eBPF instruction set definitions.
//
// This is a from-scratch C++ re-hosting of the Linux eBPF ISA (the paper's
// classifiers are eBPF programs loaded into the kernel; here they run in
// an embeddable VM with the same instruction encoding): 8-byte
// instructions with an opcode byte (3-bit class + source bit + 4-bit
// operation), dst/src register nibbles, 16-bit signed jump/mem offset and
// 32-bit immediate. LD_IMM64 occupies two instruction slots.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace nvmetro::ebpf {

/// One 8-byte eBPF instruction.
struct Insn {
  u8 opcode = 0;
  u8 regs = 0;  // dst in low nibble, src in high nibble
  i16 off = 0;
  i32 imm = 0;

  u8 dst() const { return regs & 0xF; }
  u8 src() const { return regs >> 4; }
  static u8 PackRegs(u8 dst, u8 src) {
    return static_cast<u8>((dst & 0xF) | (src << 4));
  }
};
static_assert(sizeof(Insn) == 8);

// Instruction classes (opcode bits 0-2).
enum InsnClass : u8 {
  kClassLd = 0x00,
  kClassLdx = 0x01,
  kClassSt = 0x02,
  kClassStx = 0x03,
  kClassAlu = 0x04,   // 32-bit ALU
  kClassJmp = 0x05,
  kClassJmp32 = 0x06,
  kClassAlu64 = 0x07,
};
constexpr u8 InsnClassOf(u8 opcode) { return opcode & 0x07; }

// Source modifier (bit 3) for ALU/JMP.
enum SrcMod : u8 {
  kSrcK = 0x00,  // use 32-bit immediate
  kSrcX = 0x08,  // use source register
};

// ALU operations (bits 4-7).
enum AluOp : u8 {
  kAluAdd = 0x00,
  kAluSub = 0x10,
  kAluMul = 0x20,
  kAluDiv = 0x30,
  kAluOr = 0x40,
  kAluAnd = 0x50,
  kAluLsh = 0x60,
  kAluRsh = 0x70,
  kAluNeg = 0x80,
  kAluMod = 0x90,
  kAluXor = 0xA0,
  kAluMov = 0xB0,
  kAluArsh = 0xC0,
  kAluEnd = 0xD0,  // byteswap (unsupported: verifier rejects)
};

// Jump operations (bits 4-7).
enum JmpOp : u8 {
  kJmpJa = 0x00,
  kJmpJeq = 0x10,
  kJmpJgt = 0x20,
  kJmpJge = 0x30,
  kJmpJset = 0x40,
  kJmpJne = 0x50,
  kJmpJsgt = 0x60,
  kJmpJsge = 0x70,
  kJmpCall = 0x80,
  kJmpExit = 0x90,
  kJmpJlt = 0xA0,
  kJmpJle = 0xB0,
  kJmpJslt = 0xC0,
  kJmpJsle = 0xD0,
};

// Memory access size (bits 3-4 for LD/LDX/ST/STX).
enum MemSize : u8 {
  kSizeW = 0x00,   // 4 bytes
  kSizeH = 0x08,   // 2 bytes
  kSizeB = 0x10,   // 1 byte
  kSizeDw = 0x18,  // 8 bytes
};
constexpr u32 MemSizeBytes(u8 opcode) {
  switch (opcode & 0x18) {
    case kSizeW: return 4;
    case kSizeH: return 2;
    case kSizeB: return 1;
    default: return 8;
  }
}

// Memory access mode (bits 5-7).
enum MemMode : u8 {
  kModeImm = 0x00,
  kModeMem = 0x60,
};

// Full opcodes for common instructions.
constexpr u8 kOpLdImm64 =
    static_cast<u8>(kClassLd) | static_cast<u8>(kSizeDw) |
    static_cast<u8>(kModeImm);  // 0x18
constexpr u8 kOpExit =
    static_cast<u8>(kClassJmp) | static_cast<u8>(kJmpExit);  // 0x95
constexpr u8 kOpCall =
    static_cast<u8>(kClassJmp) | static_cast<u8>(kJmpCall);  // 0x85

/// Pseudo source-register values for LD_IMM64.
enum LdImm64Src : u8 {
  kPseudoNone = 0,    // plain 64-bit immediate (2nd slot holds high word)
  kPseudoMapIdx = 1,  // imm = index into the program's map table
};

/// Registers: r0 return value / scratch, r1-r5 arguments (clobbered by
/// helper calls), r6-r9 callee-saved, r10 read-only frame pointer.
constexpr u8 kRegR0 = 0;
constexpr u8 kRegCtx = 1;
constexpr u8 kRegFp = 10;
constexpr u32 kNumRegs = 11;

/// Stack bytes available below r10.
constexpr u32 kStackSize = 512;

/// Maximum instructions per program (matches classic kernel limit).
constexpr u32 kMaxInsns = 4096;

// --- Instruction constructors ---------------------------------------------

inline Insn AluReg(u8 op, u8 dst, u8 src, bool is64 = true) {
  return Insn{static_cast<u8>(static_cast<u8>(is64 ? kClassAlu64 : kClassAlu) |
                              static_cast<u8>(kSrcX) | op),
              Insn::PackRegs(dst, src), 0, 0};
}
inline Insn AluImm(u8 op, u8 dst, i32 imm, bool is64 = true) {
  return Insn{static_cast<u8>(static_cast<u8>(is64 ? kClassAlu64 : kClassAlu) |
                              static_cast<u8>(kSrcK) | op),
              Insn::PackRegs(dst, 0), 0, imm};
}
inline Insn MovReg(u8 dst, u8 src) { return AluReg(kAluMov, dst, src); }
inline Insn MovImm(u8 dst, i32 imm) { return AluImm(kAluMov, dst, imm); }

inline Insn JmpReg(u8 op, u8 dst, u8 src, i16 off) {
  return Insn{static_cast<u8>(static_cast<u8>(kClassJmp) | static_cast<u8>(kSrcX) | op),
              Insn::PackRegs(dst, src), off, 0};
}
inline Insn JmpImm(u8 op, u8 dst, i32 imm, i16 off) {
  return Insn{static_cast<u8>(static_cast<u8>(kClassJmp) | static_cast<u8>(kSrcK) | op),
              Insn::PackRegs(dst, 0), off, imm};
}
inline Insn Ja(i16 off) {
  return Insn{static_cast<u8>(kClassJmp | static_cast<u8>(kJmpJa)), 0, off, 0};
}
inline Insn Call(i32 helper_id) {
  return Insn{kOpCall, 0, 0, helper_id};
}
inline Insn Exit() { return Insn{kOpExit, 0, 0, 0}; }

inline Insn Ldx(u8 size, u8 dst, u8 src, i16 off) {
  return Insn{static_cast<u8>(static_cast<u8>(kClassLdx) | size |
              static_cast<u8>(kModeMem)),
              Insn::PackRegs(dst, src), off, 0};
}
inline Insn Stx(u8 size, u8 dst, u8 src, i16 off) {
  return Insn{static_cast<u8>(static_cast<u8>(kClassStx) | size |
              static_cast<u8>(kModeMem)),
              Insn::PackRegs(dst, src), off, 0};
}
inline Insn StImm(u8 size, u8 dst, i16 off, i32 imm) {
  return Insn{static_cast<u8>(static_cast<u8>(kClassSt) | size |
              static_cast<u8>(kModeMem)),
              Insn::PackRegs(dst, 0), off, imm};
}
/// First slot of a 64-bit immediate load; follow with LdImm64Hi.
inline Insn LdImm64Lo(u8 dst, u8 pseudo_src, u64 value) {
  return Insn{kOpLdImm64, Insn::PackRegs(dst, pseudo_src), 0,
              static_cast<i32>(value & 0xFFFFFFFF)};
}
inline Insn LdImm64Hi(u64 value) {
  return Insn{0, 0, 0, static_cast<i32>(value >> 32)};
}

}  // namespace nvmetro::ebpf

// Text assembler for eBPF programs.
//
// The paper's classifiers (Listing 1) are C compiled to eBPF by clang.
// Offline we ship an assembler instead: classifiers are authored in eBPF
// assembly embedded in C++ sources, assembled at startup, then verified
// and interpreted like any other program. A C++ ProgramBuilder is also
// provided for programmatic construction.
//
// Syntax (one instruction per line, ';' or '#' comments, 'name:' labels):
//   mov   r1, 42        mov r1, r2         mov32 r1, 7
//   add / sub / mul / div / or / and / lsh / rsh / mod / xor / arsh
//       (same forms; '32' suffix for 32-bit)   neg r1 / neg32 r1
//   ldxb/ldxh/ldxw/ldxdw  rD, [rS+off]
//   stxb/stxh/stxw/stxdw  [rD+off], rS
//   stb/sth/stw/stdw      [rD+off], imm
//   lddw  rD, 0x1122334455667788      lddw rD, map 0
//   ja lbl       jeq/jne/jgt/jge/jlt/jle/jset/jsgt/jsge/jslt/jsle
//       rD, imm|rS, lbl
//   call 1       call map_lookup_elem
//   exit
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "ebpf/program.h"

namespace nvmetro::ebpf {

/// Assembles `text` into a Program referencing `maps`. Errors include the
/// line number.
Result<Program> Assemble(const std::string& text,
                         std::vector<std::shared_ptr<Map>> maps = {});


/// Programmatic construction with label-based control flow.
class ProgramBuilder {
 public:
  ProgramBuilder& Raw(Insn insn);
  ProgramBuilder& Label(const std::string& name);

  ProgramBuilder& Mov(u8 dst, i32 imm) { return Raw(MovImm(dst, imm)); }
  ProgramBuilder& MovR(u8 dst, u8 src) { return Raw(MovReg(dst, src)); }
  ProgramBuilder& Alu(u8 op, u8 dst, i32 imm) {
    return Raw(AluImm(op, dst, imm));
  }
  ProgramBuilder& AluR(u8 op, u8 dst, u8 src) {
    return Raw(AluReg(op, dst, src));
  }
  ProgramBuilder& LoadCtx(u8 size, u8 dst, i16 off) {
    return Raw(Ldx(size, dst, kRegCtx, off));
  }
  ProgramBuilder& Load(u8 size, u8 dst, u8 base, i16 off) {
    return Raw(Ldx(size, dst, base, off));
  }
  ProgramBuilder& Store(u8 size, u8 base, i16 off, u8 src) {
    return Raw(Stx(size, base, src, off));
  }
  ProgramBuilder& StoreImm(u8 size, u8 base, i16 off, i32 imm) {
    return Raw(StImm(size, base, off, imm));
  }
  ProgramBuilder& LoadImm64(u8 dst, u64 value);
  ProgramBuilder& LoadMap(u8 dst, u32 map_idx);
  ProgramBuilder& Jump(const std::string& label);
  ProgramBuilder& JumpIf(u8 op, u8 dst, i32 imm, const std::string& label);
  ProgramBuilder& JumpIfR(u8 op, u8 dst, u8 src, const std::string& label);
  ProgramBuilder& CallHelper(u32 id) { return Raw(Call(static_cast<i32>(id))); }
  ProgramBuilder& Ret() { return Raw(Exit()); }

  u32 AddMap(std::shared_ptr<Map> map);

  /// Resolves labels and returns the program; fails on unknown labels.
  Result<Program> Build();

 private:
  struct Fixup {
    usize insn_index;
    std::string label;
  };
  std::vector<Insn> insns_;
  std::vector<std::shared_ptr<Map>> maps_;
  std::vector<std::pair<std::string, usize>> labels_;
  std::vector<Fixup> fixups_;
};

}  // namespace nvmetro::ebpf

#include "ebpf/assembler.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <map>

#include "common/strutil.h"
#include "ebpf/helpers.h"

namespace nvmetro::ebpf {

namespace {

struct Token {
  std::string text;
};

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> toks;
  std::string cur;
  auto flush = [&] {
    if (!cur.empty()) {
      toks.push_back(cur);
      cur.clear();
    }
  };
  for (char c : line) {
    if (c == ';' || c == '#') break;
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
      flush();
    } else if (c == '[' || c == ']') {
      flush();
      toks.push_back(std::string(1, c));
    } else {
      cur.push_back(c);
    }
  }
  flush();
  return toks;
}

bool ParseReg(const std::string& t, u8* reg) {
  if (t.size() < 2 || (t[0] != 'r' && t[0] != 'R')) return false;
  char* end = nullptr;
  long v = std::strtol(t.c_str() + 1, &end, 10);
  if (*end != '\0' || v < 0 || v > 10) return false;
  *reg = static_cast<u8>(v);
  return true;
}

bool ParseImm(const std::string& t, i64* out) {
  if (t.empty()) return false;
  errno = 0;
  char* end = nullptr;
  if (t[0] == '-') {
    long long v = std::strtoll(t.c_str(), &end, 0);
    if (end == t.c_str() || *end != '\0' || errno == ERANGE) return false;
    *out = v;
  } else {
    // Unsigned parse so 64-bit patterns like 0xFF00FF00FF00FF00 survive.
    unsigned long long v = std::strtoull(t.c_str(), &end, 0);
    if (end == t.c_str() || *end != '\0' || errno == ERANGE) return false;
    *out = static_cast<i64>(v);
  }
  return true;
}

/// Parses "rS+off", "rS-off" or "rS" (memory operand body).
bool ParseMemOperand(const std::string& t, u8* reg, i16* off) {
  usize i = 0;
  while (i < t.size() && t[i] != '+' && t[i] != '-') i++;
  if (!ParseReg(t.substr(0, i), reg)) return false;
  if (i == t.size()) {
    *off = 0;
    return true;
  }
  i64 v;
  if (!ParseImm(t.substr(i), &v)) return false;
  if (v < -32768 || v > 32767) return false;
  *off = static_cast<i16>(v);
  return true;
}

const std::map<std::string, u8>& AluOps() {
  static const std::map<std::string, u8> kOps = {
      {"add", kAluAdd}, {"sub", kAluSub},   {"mul", kAluMul},
      {"div", kAluDiv}, {"or", kAluOr},     {"and", kAluAnd},
      {"lsh", kAluLsh}, {"rsh", kAluRsh},   {"mod", kAluMod},
      {"xor", kAluXor}, {"mov", kAluMov},   {"arsh", kAluArsh},
  };
  return kOps;
}

const std::map<std::string, u8>& JmpOps() {
  static const std::map<std::string, u8> kOps = {
      {"jeq", kJmpJeq},   {"jne", kJmpJne},   {"jgt", kJmpJgt},
      {"jge", kJmpJge},   {"jlt", kJmpJlt},   {"jle", kJmpJle},
      {"jset", kJmpJset}, {"jsgt", kJmpJsgt}, {"jsge", kJmpJsge},
      {"jslt", kJmpJslt}, {"jsle", kJmpJsle},
  };
  return kOps;
}

const std::map<std::string, u8>& MemSizes() {
  static const std::map<std::string, u8> kSizes = {
      {"b", kSizeB}, {"h", kSizeH}, {"w", kSizeW}, {"dw", kSizeDw}};
  return kSizes;
}

}  // namespace

Result<Program> Assemble(const std::string& text,
                         std::vector<std::shared_ptr<Map>> maps) {
  struct Pending {
    Insn insn;
    std::string jump_label;  // empty when resolved
    int line;
  };
  std::vector<Pending> out;
  std::map<std::string, usize> labels;

  int lineno = 0;
  for (const std::string& raw : StrSplit(text, '\n')) {
    lineno++;
    auto err = [&](const std::string& m) {
      return InvalidArgument(StrFormat("line %d: %s", lineno, m.c_str()));
    };
    std::string line = StrTrim(raw);
    std::vector<std::string> t = Tokenize(line);
    if (t.empty()) continue;

    // Label?
    if (t[0].back() == ':') {
      std::string name = t[0].substr(0, t[0].size() - 1);
      if (name.empty()) return err("empty label");
      if (labels.count(name)) return err("duplicate label " + name);
      labels[name] = out.size();
      t.erase(t.begin());
      if (t.empty()) continue;
    }

    std::string op = t[0];
    for (auto& c : op) c = static_cast<char>(std::tolower(c));

    auto need = [&](usize n) { return t.size() == n; };

    if (op == "exit") {
      if (!need(1)) return err("exit takes no operands");
      out.push_back({Exit(), "", lineno});
      continue;
    }
    if (op == "call") {
      if (!need(2)) return err("call takes one operand");
      i64 id;
      if (!ParseImm(t[1], &id)) {
        // Resolve helper by name against the default registry.
        bool found = false;
        for (u32 hid = 1; hid <= 64 && !found; hid++) {
          const HelperSpec* s = HelperRegistry::Default().Find(hid);
          if (s && t[1] == s->name) {
            id = hid;
            found = true;
          }
        }
        if (!found) return err("unknown helper " + t[1]);
      }
      out.push_back({Call(static_cast<i32>(id)), "", lineno});
      continue;
    }
    if (op == "ja") {
      if (!need(2)) return err("ja takes a label");
      out.push_back({Ja(0), t[1], lineno});
      continue;
    }
    if (op == "lddw") {
      if (t.size() == 4 && t[2] == "map") {
        u8 dst;
        i64 idx;
        if (!ParseReg(t[1], &dst) || !ParseImm(t[3], &idx))
          return err("lddw rD, map N");
        if (idx < 0 || static_cast<usize>(idx) >= maps.size())
          return err("map index out of range");
        out.push_back({LdImm64Lo(dst, kPseudoMapIdx,
                                 static_cast<u64>(idx)),
                       "", lineno});
        out.push_back({LdImm64Hi(0), "", lineno});
        continue;
      }
      if (!need(3)) return err("lddw rD, imm64");
      u8 dst;
      i64 v;
      if (!ParseReg(t[1], &dst)) return err("bad register");
      if (!ParseImm(t[2], &v)) return err("bad imm64");
      out.push_back(
          {LdImm64Lo(dst, kPseudoNone, static_cast<u64>(v)), "", lineno});
      out.push_back({LdImm64Hi(static_cast<u64>(v)), "", lineno});
      continue;
    }

    // Loads: ldx<sz> rD, [rS+off]
    if (op.rfind("ldx", 0) == 0) {
      auto sz = MemSizes().find(op.substr(3));
      if (sz == MemSizes().end()) return err("bad load size");
      if (!(t.size() == 5 && t[2] == "[" && t[4] == "]"))
        return err("ldx syntax: ldxw rD, [rS+off]");
      u8 dst, base;
      i16 off;
      if (!ParseReg(t[1], &dst) || !ParseMemOperand(t[3], &base, &off))
        return err("bad ldx operands");
      out.push_back({Ldx(sz->second, dst, base, off), "", lineno});
      continue;
    }
    // Register stores: stx<sz> [rD+off], rS
    if (op.rfind("stx", 0) == 0) {
      auto sz = MemSizes().find(op.substr(3));
      if (sz == MemSizes().end()) return err("bad store size");
      if (!(t.size() == 5 && t[1] == "[" && t[3] == "]"))
        return err("stx syntax: stxw [rD+off], rS");
      u8 base, src;
      i16 off;
      if (!ParseMemOperand(t[2], &base, &off) || !ParseReg(t[4], &src))
        return err("bad stx operands");
      out.push_back({Stx(sz->second, base, src, off), "", lineno});
      continue;
    }
    // Immediate stores: st<sz> [rD+off], imm
    if (op.rfind("st", 0) == 0 && MemSizes().count(op.substr(2))) {
      u8 size = MemSizes().at(op.substr(2));
      if (!(t.size() == 5 && t[1] == "[" && t[3] == "]"))
        return err("st syntax: stw [rD+off], imm");
      u8 base;
      i16 off;
      i64 imm;
      if (!ParseMemOperand(t[2], &base, &off) || !ParseImm(t[4], &imm))
        return err("bad st operands");
      out.push_back(
          {StImm(size, base, off, static_cast<i32>(imm)), "", lineno});
      continue;
    }

    // neg / neg32
    if (op == "neg" || op == "neg32") {
      if (!need(2)) return err("neg takes one register");
      u8 dst;
      if (!ParseReg(t[1], &dst)) return err("bad register");
      bool is64 = op == "neg";
      out.push_back(
          {Insn{static_cast<u8>(
                    static_cast<u8>(is64 ? kClassAlu64 : kClassAlu) |
                    static_cast<u8>(kAluNeg)),
                Insn::PackRegs(dst, 0), 0, 0},
           "", lineno});
      continue;
    }

    // ALU ops (with optional 32 suffix).
    {
      std::string base_op = op;
      bool is64 = true;
      if (base_op.size() > 2 && base_op.substr(base_op.size() - 2) == "32") {
        base_op = base_op.substr(0, base_op.size() - 2);
        is64 = false;
      }
      auto it = AluOps().find(base_op);
      if (it != AluOps().end()) {
        if (!need(3)) return err(base_op + " takes two operands");
        u8 dst;
        if (!ParseReg(t[1], &dst)) return err("bad dst register");
        u8 src;
        i64 imm;
        if (ParseReg(t[2], &src)) {
          out.push_back({AluReg(it->second, dst, src, is64), "", lineno});
        } else if (ParseImm(t[2], &imm)) {
          out.push_back(
              {AluImm(it->second, dst, static_cast<i32>(imm), is64), "",
               lineno});
        } else {
          return err("bad src operand");
        }
        continue;
      }
    }

    // Conditional jumps.
    {
      auto it = JmpOps().find(op);
      if (it != JmpOps().end()) {
        if (!need(4)) return err(op + " rD, imm|rS, label");
        u8 dst;
        if (!ParseReg(t[1], &dst)) return err("bad dst register");
        u8 src;
        i64 imm;
        Pending p{{}, t[3], lineno};
        if (ParseReg(t[2], &src)) {
          p.insn = JmpReg(it->second, dst, src, 0);
        } else if (ParseImm(t[2], &imm)) {
          p.insn = JmpImm(it->second, dst, static_cast<i32>(imm), 0);
        } else {
          return err("bad comparison operand");
        }
        out.push_back(std::move(p));
        continue;
      }
    }

    return err("unknown mnemonic '" + op + "'");
  }

  // Resolve labels.
  std::vector<Insn> insns;
  insns.reserve(out.size());
  for (usize i = 0; i < out.size(); i++) {
    Insn insn = out[i].insn;
    if (!out[i].jump_label.empty()) {
      auto it = labels.find(out[i].jump_label);
      if (it == labels.end())
        return InvalidArgument(StrFormat("line %d: unknown label %s",
                                         out[i].line,
                                         out[i].jump_label.c_str()));
      i64 off = static_cast<i64>(it->second) - static_cast<i64>(i) - 1;
      if (off < -32768 || off > 32767)
        return InvalidArgument("jump offset too large");
      insn.off = static_cast<i16>(off);
    }
    insns.push_back(insn);
  }
  return Program(std::move(insns), std::move(maps));
}

// --- ProgramBuilder --------------------------------------------------------

ProgramBuilder& ProgramBuilder::Raw(Insn insn) {
  insns_.push_back(insn);
  return *this;
}

ProgramBuilder& ProgramBuilder::Label(const std::string& name) {
  labels_.emplace_back(name, insns_.size());
  return *this;
}

ProgramBuilder& ProgramBuilder::LoadImm64(u8 dst, u64 value) {
  insns_.push_back(LdImm64Lo(dst, kPseudoNone, value));
  insns_.push_back(LdImm64Hi(value));
  return *this;
}

ProgramBuilder& ProgramBuilder::LoadMap(u8 dst, u32 map_idx) {
  insns_.push_back(LdImm64Lo(dst, kPseudoMapIdx, map_idx));
  insns_.push_back(LdImm64Hi(0));
  return *this;
}

ProgramBuilder& ProgramBuilder::Jump(const std::string& label) {
  fixups_.push_back({insns_.size(), label});
  insns_.push_back(Ja(0));
  return *this;
}

ProgramBuilder& ProgramBuilder::JumpIf(u8 op, u8 dst, i32 imm,
                                       const std::string& label) {
  fixups_.push_back({insns_.size(), label});
  insns_.push_back(JmpImm(op, dst, imm, 0));
  return *this;
}

ProgramBuilder& ProgramBuilder::JumpIfR(u8 op, u8 dst, u8 src,
                                        const std::string& label) {
  fixups_.push_back({insns_.size(), label});
  insns_.push_back(JmpReg(op, dst, src, 0));
  return *this;
}

u32 ProgramBuilder::AddMap(std::shared_ptr<Map> map) {
  maps_.push_back(std::move(map));
  return static_cast<u32>(maps_.size() - 1);
}

Result<Program> ProgramBuilder::Build() {
  std::map<std::string, usize> resolved(labels_.begin(), labels_.end());
  if (resolved.size() != labels_.size())
    return InvalidArgument("duplicate label");
  std::vector<Insn> insns = insns_;
  for (const Fixup& f : fixups_) {
    auto it = resolved.find(f.label);
    if (it == resolved.end())
      return InvalidArgument("unknown label " + f.label);
    i64 off = static_cast<i64>(it->second) -
              static_cast<i64>(f.insn_index) - 1;
    if (off < -32768 || off > 32767)
      return InvalidArgument("jump offset too large");
    insns[f.insn_index].off = static_cast<i16>(off);
  }
  return Program(std::move(insns), maps_);
}

}  // namespace nvmetro::ebpf

#include "ebpf/map.h"

namespace nvmetro::ebpf {

ArrayMap::ArrayMap(u32 value_size, u32 max_entries)
    : Map(MapType::kArray, sizeof(u32), value_size, max_entries),
      data_(static_cast<usize>(value_size) * max_entries, 0) {}

u8* ArrayMap::Lookup(const void* key) {
  u32 idx;
  std::memcpy(&idx, key, sizeof(idx));
  if (idx >= max_entries()) return nullptr;
  return data_.data() + static_cast<usize>(idx) * value_size();
}

Status ArrayMap::Update(const void* key, const void* value) {
  u8* slot = Lookup(key);
  if (!slot) return OutOfRange("array map index out of range");
  std::memcpy(slot, value, value_size());
  return OkStatus();
}

Status ArrayMap::Delete(const void* key) {
  u8* slot = Lookup(key);
  if (!slot) return OutOfRange("array map index out of range");
  std::memset(slot, 0, value_size());
  return OkStatus();
}

HashMap::HashMap(u32 key_size, u32 value_size, u32 max_entries)
    : Map(MapType::kHash, key_size, value_size, max_entries) {}

u8* HashMap::Lookup(const void* key) {
  auto it = table_.find(KeyOf(key));
  if (it == table_.end()) return nullptr;
  return it->second.get();
}

Status HashMap::Update(const void* key, const void* value) {
  std::string k = KeyOf(key);
  auto it = table_.find(k);
  if (it == table_.end()) {
    if (table_.size() >= max_entries())
      return ResourceExhausted("hash map full");
    auto buf = std::make_unique<u8[]>(value_size());
    std::memcpy(buf.get(), value, value_size());
    table_.emplace(std::move(k), std::move(buf));
    return OkStatus();
  }
  std::memcpy(it->second.get(), value, value_size());
  return OkStatus();
}

Status HashMap::Delete(const void* key) {
  if (table_.erase(KeyOf(key)) == 0) return NotFound("no such key");
  return OkStatus();
}

}  // namespace nvmetro::ebpf

#include "ebpf/verifier.h"

#include <array>
#include <deque>
#include <map>

#include "common/strutil.h"

namespace nvmetro::ebpf {

namespace {

enum class RegType : u8 {
  kNotInit,
  kScalar,
  kPtrCtx,
  kPtrStack,       // offset relative to r10 (0 = frame top)
  kPtrMapValue,
  kNullOrMapValue,  // result of map_lookup before the null check
  kMapRef,          // loaded via LD_IMM64 map pseudo
  kPtrData,         // read-only data region (completed read's page)
  kNullOrData,      // ctx data field before the null check
};

struct RegState {
  RegType type = RegType::kNotInit;
  bool known = false;  // scalar with exact value
  u64 value = 0;
  u64 umin = 0, umax = ~0ull;  // scalar bounds when !known
  i64 ptr_off = 0;             // constant offset for pointers
  const Map* map = nullptr;

  static RegState Scalar() {
    RegState r;
    r.type = RegType::kScalar;
    return r;
  }
  static RegState Const(u64 v) {
    RegState r;
    r.type = RegType::kScalar;
    r.known = true;
    r.value = v;
    r.umin = r.umax = v;
    return r;
  }
  static RegState Bounded(u64 lo, u64 hi) {
    RegState r;
    r.type = RegType::kScalar;
    r.umin = lo;
    r.umax = hi;
    if (lo == hi) {
      r.known = true;
      r.value = lo;
    }
    return r;
  }
};

enum StackByte : u8 { kStackUninit = 0, kStackMisc = 1, kStackSpill = 2 };

struct StackState {
  std::array<u8, kStackSize> bytes{};
  // 8-byte-aligned spilled registers: slot index (0..63) -> state.
  std::map<u32, RegState> spills;
};

struct VState {
  u32 pc = 0;
  std::array<RegState, kNumRegs> regs;
  StackState stack;
};

struct Err {
  Status status;
  bool failed() const { return !status.ok(); }
};

Status At(u32 pc, const std::string& msg) {
  return InvalidArgument(StrFormat("insn %u: %s", pc, msg.c_str()));
}

bool IsPointer(RegType t) {
  return t == RegType::kPtrCtx || t == RegType::kPtrStack ||
         t == RegType::kPtrMapValue || t == RegType::kNullOrMapValue ||
         t == RegType::kMapRef || t == RegType::kPtrData ||
         t == RegType::kNullOrData;
}

}  // namespace

Verifier::Verifier(const CtxDescriptor& ctx, const HelperRegistry& helpers,
                   Options opts)
    : ctx_(ctx), helpers_(helpers), opts_(opts) {}

Status Verifier::Verify(const Program& prog) const {
  const auto& insns = prog.insns();
  if (insns.empty()) return InvalidArgument("empty program");
  if (insns.size() > kMaxInsns)
    return InvalidArgument("program exceeds instruction limit");

  // Pass 1: structural checks — LD_IMM64 pairing, jump targets forward
  // and in range, map references valid.
  std::vector<bool> is_imm64_hi(insns.size(), false);
  for (u32 pc = 0; pc < insns.size(); pc++) {
    if (is_imm64_hi[pc]) continue;
    const Insn& in = insns[pc];
    if (in.opcode == kOpLdImm64) {
      if (pc + 1 >= insns.size()) return At(pc, "LD_IMM64 missing 2nd slot");
      const Insn& hi = insns[pc + 1];
      if (hi.opcode != 0 || hi.regs != 0 || hi.off != 0)
        return At(pc, "malformed LD_IMM64 2nd slot");
      if (in.src() == kPseudoMapIdx &&
          static_cast<u32>(in.imm) >= prog.maps().size())
        return At(pc, "LD_IMM64 references unknown map");
      if (in.src() > kPseudoMapIdx)
        return At(pc, "unknown LD_IMM64 pseudo source");
      is_imm64_hi[pc + 1] = true;
      continue;
    }
    u8 cls = InsnClassOf(in.opcode);
    if (cls == kClassJmp) {
      u8 op = in.opcode & 0xF0;
      if (op == kJmpExit || op == kJmpCall) continue;
      i64 target = static_cast<i64>(pc) + 1 + in.off;
      if (target <= static_cast<i64>(pc))
        return At(pc, "backward jump (loops are not allowed)");
      if (target >= static_cast<i64>(insns.size()))
        return At(pc, "jump out of range");
      if (is_imm64_hi[static_cast<u32>(target)] ||
          (static_cast<u32>(target) > 0 &&
           insns[static_cast<u32>(target) - 1].opcode == kOpLdImm64))
        return At(pc, "jump into the middle of LD_IMM64");
    }
  }

  // Pass 2: path-sensitive state exploration (DFS over the DAG).
  VState init;
  init.regs[kRegCtx].type = RegType::kPtrCtx;
  init.regs[kRegCtx].ptr_off = 0;
  init.regs[kRegFp].type = RegType::kPtrStack;
  init.regs[kRegFp].ptr_off = 0;

  std::deque<VState> work;
  work.push_back(init);
  u32 visited = 0;

  // Helpers for memory access verification.
  auto check_stack = [&](VState& st, i64 start, u32 size, bool write,
                         u32 pc) -> Status {
    i64 end = start + size;
    if (start < -static_cast<i64>(kStackSize) || end > 0)
      return At(pc, StrFormat("stack access [%lld,+%u) out of bounds",
                              (long long)start, size));
    u32 lo = static_cast<u32>(start + kStackSize);
    if (write) {
      // Writing over a spill slot invalidates it unless fully overwritten
      // by another spill (handled by the caller for DW stores).
      for (u32 i = lo; i < lo + size; i++) {
        st.stack.bytes[i] = kStackMisc;
      }
      st.stack.spills.erase(lo / 8);
      if ((lo + size - 1) / 8 != lo / 8)
        st.stack.spills.erase((lo + size - 1) / 8);
    } else {
      for (u32 i = lo; i < lo + size; i++) {
        if (st.stack.bytes[i] == kStackUninit)
          return At(pc, "read of uninitialized stack");
      }
    }
    return OkStatus();
  };

  while (!work.empty()) {
    VState st = std::move(work.back());
    work.pop_back();

    for (;;) {
      if (++visited > opts_.max_visited)
        return InvalidArgument("program too complex");
      if (st.pc >= insns.size())
        return At(st.pc, "fell off the end of the program (missing exit)");
      const Insn& in = insns[st.pc];
      u8 cls = InsnClassOf(in.opcode);
      u8 dst = in.dst();
      u8 src = in.src();
      if (dst >= kNumRegs || src >= kNumRegs)
        return At(st.pc, "invalid register");

      // --- LD_IMM64 ---------------------------------------------------
      if (in.opcode == kOpLdImm64) {
        if (dst == kRegFp) return At(st.pc, "write to frame pointer");
        if (in.src() == kPseudoMapIdx) {
          st.regs[dst] = RegState{};
          st.regs[dst].type = RegType::kMapRef;
          st.regs[dst].map = prog.maps()[in.imm].get();
        } else {
          u64 v = (static_cast<u64>(static_cast<u32>(insns[st.pc + 1].imm))
                   << 32) |
                  static_cast<u32>(in.imm);
          st.regs[dst] = RegState::Const(v);
        }
        st.pc += 2;
        continue;
      }

      switch (cls) {
        case kClassAlu:
        case kClassAlu64: {
          bool is64 = cls == kClassAlu64;
          u8 op = in.opcode & 0xF0;
          if (op == kAluEnd) return At(st.pc, "byteswap not supported");
          if (op > kAluEnd) return At(st.pc, "unknown ALU op");
          if (dst == kRegFp) return At(st.pc, "write to frame pointer");
          bool use_reg = (in.opcode & 0x08) != 0;
          if (op == kAluNeg) {
            if (st.regs[dst].type != RegType::kScalar)
              return At(st.pc, "NEG on non-scalar");
            RegState& d = st.regs[dst];
            if (d.known) {
              u64 v = ~d.value + 1;
              if (!is64) v &= 0xFFFFFFFF;
              d = RegState::Const(v);
            } else {
              d = RegState::Scalar();
            }
            st.pc++;
            continue;
          }
          RegState rhs;
          if (use_reg) {
            rhs = st.regs[src];
            if (rhs.type == RegType::kNotInit)
              return At(st.pc, "read of uninitialized register");
          } else {
            rhs = RegState::Const(
                static_cast<u64>(static_cast<i64>(in.imm)));
          }

          RegState& d = st.regs[dst];
          if (op == kAluMov) {
            if (use_reg) {
              if (!is64 && IsPointer(rhs.type))
                return At(st.pc, "32-bit mov of pointer");
              d = rhs;
              if (!is64 && d.type == RegType::kScalar) {
                if (d.known) {
                  d = RegState::Const(d.value & 0xFFFFFFFF);
                } else {
                  d = RegState::Bounded(0, 0xFFFFFFFF);
                }
              }
            } else {
              u64 v = static_cast<u64>(static_cast<i64>(in.imm));
              if (!is64) v &= 0xFFFFFFFF;
              d = RegState::Const(v);
            }
            st.pc++;
            continue;
          }

          if (d.type == RegType::kNotInit)
            return At(st.pc, "read of uninitialized register");

          // Pointer arithmetic: 64-bit ADD/SUB of a known constant only.
          if (IsPointer(d.type)) {
            if (d.type == RegType::kMapRef ||
                d.type == RegType::kNullOrMapValue ||
                d.type == RegType::kNullOrData)
              return At(st.pc, "arithmetic on map reference/unchecked ptr");
            if (!is64) return At(st.pc, "32-bit arithmetic on pointer");
            if (op != kAluAdd && op != kAluSub)
              return At(st.pc, "only +/- allowed on pointers");
            if (rhs.type != RegType::kScalar || !rhs.known)
              return At(st.pc,
                        "pointer arithmetic requires constant offset");
            i64 delta = static_cast<i64>(rhs.value);
            d.ptr_off += (op == kAluAdd) ? delta : -delta;
            st.pc++;
            continue;
          }
          if (IsPointer(rhs.type))
            return At(st.pc, "pointer as right-hand side of ALU");

          // Scalar ALU.
          if (d.known && rhs.known) {
            u64 a = d.value, b = rhs.value, r = 0;
            if (!is64) {
              a &= 0xFFFFFFFF;
              b &= 0xFFFFFFFF;
            }
            switch (op) {
              case kAluAdd: r = a + b; break;
              case kAluSub: r = a - b; break;
              case kAluMul: r = a * b; break;
              case kAluDiv: r = b ? a / b : 0; break;
              case kAluMod: r = b ? a % b : a; break;
              case kAluOr: r = a | b; break;
              case kAluAnd: r = a & b; break;
              case kAluXor: r = a ^ b; break;
              case kAluLsh: r = a << (b & (is64 ? 63 : 31)); break;
              case kAluRsh: r = a >> (b & (is64 ? 63 : 31)); break;
              case kAluArsh:
                if (is64) {
                  r = static_cast<u64>(static_cast<i64>(a) >> (b & 63));
                } else {
                  r = static_cast<u64>(
                      static_cast<u32>(static_cast<i32>(a) >> (b & 31)));
                }
                break;
              default: return At(st.pc, "unknown ALU op");
            }
            if (!is64) r &= 0xFFFFFFFF;
            d = RegState::Const(r);
          } else {
            // Conservative bounds for a few common patterns.
            switch (op) {
              case kAluAnd:
                if (rhs.known) {
                  d = RegState::Bounded(0, rhs.value);
                } else {
                  d = RegState::Scalar();
                }
                break;
              case kAluRsh:
                if (rhs.known) {
                  u64 sh = rhs.value & (is64 ? 63 : 31);
                  d = RegState::Bounded(0, d.umax >> sh);
                } else {
                  d = RegState::Scalar();
                }
                break;
              case kAluMod:
                if (rhs.known && rhs.value > 0) {
                  d = RegState::Bounded(0, rhs.value - 1);
                } else {
                  d = RegState::Scalar();
                }
                break;
              case kAluAdd:
                if (rhs.known && d.umax + rhs.value >= d.umax) {
                  d = RegState::Bounded(d.umin + rhs.value,
                                        d.umax + rhs.value);
                } else {
                  d = RegState::Scalar();
                }
                break;
              default:
                d = RegState::Scalar();
            }
            if (!is64 && !d.known) {
              d.umin = 0;
              d.umax = d.umax > 0xFFFFFFFF ? 0xFFFFFFFF : d.umax;
            }
          }
          st.pc++;
          continue;
        }

        case kClassLdx: {
          if ((in.opcode & 0xE0) != kModeMem)
            return At(st.pc, "unsupported LDX mode");
          if (dst == kRegFp) return At(st.pc, "write to frame pointer");
          const RegState& base = st.regs[src];
          u32 size = MemSizeBytes(in.opcode);
          switch (base.type) {
            case RegType::kPtrStack: {
              i64 start = base.ptr_off + in.off;
              // Full-register reload of a spilled register.
              if (size == 8 && start >= -static_cast<i64>(kStackSize) &&
                  start + 8 <= 0 && (start + kStackSize) % 8 == 0) {
                u32 slot = static_cast<u32>(start + kStackSize) / 8;
                auto it = st.stack.spills.find(slot);
                if (it != st.stack.spills.end()) {
                  st.regs[dst] = it->second;
                  st.pc++;
                  continue;
                }
              }
              NVM_RETURN_IF_ERROR(
                  check_stack(st, start, size, /*write=*/false, st.pc));
              st.regs[dst] = RegState::Scalar();
              break;
            }
            case RegType::kPtrCtx: {
              i64 off = base.ptr_off + in.off;
              if (off < 0 ||
                  !ctx_.CheckAccess(static_cast<u32>(off), size, false))
                return At(st.pc,
                          StrFormat("invalid ctx read at offset %lld size %u",
                                    (long long)off, size));
              if (off == ctx_.data_ptr_offset && size == 8) {
                // The data field is a host pointer (0 when no data page
                // is attached): typed, null-checked, read-only.
                st.regs[dst] = RegState{};
                st.regs[dst].type = RegType::kNullOrData;
              } else {
                st.regs[dst] = RegState::Scalar();
              }
              break;
            }
            case RegType::kPtrMapValue: {
              i64 off = base.ptr_off + in.off;
              if (off < 0 || off + size > base.map->value_size())
                return At(st.pc, "map value access out of bounds");
              st.regs[dst] = RegState::Scalar();
              break;
            }
            case RegType::kPtrData: {
              i64 off = base.ptr_off + in.off;
              if (off < 0 ||
                  off + size > static_cast<i64>(ctx_.data_region_size))
                return At(st.pc, "data region access out of bounds");
              st.regs[dst] = RegState::Scalar();
              break;
            }
            case RegType::kNullOrMapValue:
              return At(st.pc, "dereference of possibly-null map value");
            case RegType::kNullOrData:
              return At(st.pc, "dereference of possibly-null data pointer");
            default:
              return At(st.pc, "load from non-pointer");
          }
          st.pc++;
          continue;
        }

        case kClassStx:
        case kClassSt: {
          if ((in.opcode & 0xE0) != kModeMem)
            return At(st.pc, "unsupported store mode");
          const RegState& base = st.regs[dst];
          u32 size = MemSizeBytes(in.opcode);
          RegState val;
          if (cls == kClassStx) {
            val = st.regs[src];
            if (val.type == RegType::kNotInit)
              return At(st.pc, "store of uninitialized register");
          } else {
            val = RegState::Const(static_cast<u64>(static_cast<i64>(in.imm)));
          }
          switch (base.type) {
            case RegType::kPtrStack: {
              i64 start = base.ptr_off + in.off;
              // Pointer spill: full 8-byte aligned register store.
              if (cls == kClassStx && size == 8 &&
                  (start + kStackSize) % 8 == 0 &&
                  start >= -static_cast<i64>(kStackSize) && start + 8 <= 0) {
                u32 lo = static_cast<u32>(start + kStackSize);
                for (u32 i = lo; i < lo + 8; i++)
                  st.stack.bytes[i] = kStackMisc;
                st.stack.spills[lo / 8] = val;
                break;
              }
              if (IsPointer(val.type))
                return At(st.pc, "partial/unaligned pointer spill");
              NVM_RETURN_IF_ERROR(
                  check_stack(st, start, size, /*write=*/true, st.pc));
              break;
            }
            case RegType::kPtrCtx: {
              if (IsPointer(val.type))
                return At(st.pc, "pointer store into ctx");
              i64 off = base.ptr_off + in.off;
              if (off < 0 ||
                  !ctx_.CheckAccess(static_cast<u32>(off), size, true))
                return At(st.pc,
                          StrFormat("invalid ctx write at offset %lld size %u",
                                    (long long)off, size));
              break;
            }
            case RegType::kPtrMapValue: {
              if (IsPointer(val.type))
                return At(st.pc, "pointer store into map value");
              i64 off = base.ptr_off + in.off;
              if (off < 0 || off + size > base.map->value_size())
                return At(st.pc, "map value access out of bounds");
              break;
            }
            case RegType::kPtrData:
              return At(st.pc, "store to read-only data region");
            case RegType::kNullOrMapValue:
              return At(st.pc, "dereference of possibly-null map value");
            case RegType::kNullOrData:
              return At(st.pc, "dereference of possibly-null data pointer");
            default:
              return At(st.pc, "store to non-pointer");
          }
          st.pc++;
          continue;
        }

        case kClassJmp: {
          u8 op = in.opcode & 0xF0;
          if (op == kJmpExit) {
            if (st.regs[kRegR0].type != RegType::kScalar)
              return At(st.pc, "exit without scalar r0");
            goto path_done;
          }
          if (op == kJmpCall) {
            const HelperSpec* spec = helpers_.Find(static_cast<u32>(in.imm));
            if (!spec) return At(st.pc, "unknown helper");
            const Map* call_map = nullptr;
            for (usize a = 0; a < spec->args.size(); a++) {
              const RegState& arg = st.regs[1 + a];
              switch (spec->args[a]) {
                case ArgType::kAnything:
                  if (arg.type == RegType::kNotInit)
                    return At(st.pc, "uninitialized helper argument");
                  break;
                case ArgType::kMapPtr:
                  if (arg.type != RegType::kMapRef)
                    return At(st.pc, "helper expects map reference");
                  call_map = arg.map;
                  break;
                case ArgType::kStackPtrKey:
                case ArgType::kStackPtrValue: {
                  if (arg.type != RegType::kPtrStack)
                    return At(st.pc, "helper expects stack pointer");
                  if (!call_map)
                    return At(st.pc, "key/value arg without map arg");
                  u32 need = spec->args[a] == ArgType::kStackPtrKey
                                 ? call_map->key_size()
                                 : call_map->value_size();
                  NVM_RETURN_IF_ERROR(check_stack(st, arg.ptr_off, need,
                                                  /*write=*/false, st.pc));
                  break;
                }
              }
            }
            // Clobber caller-saved registers.
            for (u8 r = 0; r <= 5; r++) st.regs[r] = RegState{};
            if (spec->ret == RetType::kInteger) {
              st.regs[kRegR0] = RegState::Scalar();
            } else {
              st.regs[kRegR0].type = RegType::kNullOrMapValue;
              st.regs[kRegR0].map = call_map;
              st.regs[kRegR0].ptr_off = 0;
            }
            st.pc++;
            continue;
          }
          if (op == kJmpJa) {
            st.pc = static_cast<u32>(st.pc + 1 + in.off);
            continue;
          }
          // Conditional branch.
          switch (op) {
            case kJmpJeq: case kJmpJne: case kJmpJgt: case kJmpJge:
            case kJmpJlt: case kJmpJle: case kJmpJset: case kJmpJsgt:
            case kJmpJsge: case kJmpJslt: case kJmpJsle:
              break;
            default:
              return At(st.pc, "unknown jump op");
          }
          bool use_reg = (in.opcode & 0x08) != 0;
          const RegState& lhs = st.regs[dst];
          if (lhs.type == RegType::kNotInit)
            return At(st.pc, "branch on uninitialized register");
          RegState rhs = use_reg
                             ? st.regs[src]
                             : RegState::Const(static_cast<u64>(
                                   static_cast<i64>(in.imm)));
          if (use_reg && rhs.type == RegType::kNotInit)
            return At(st.pc, "branch on uninitialized register");
          // Pointers may only be compared for (in)equality with 0
          // (the null check) or with other pointers of the same type.
          bool null_check = (lhs.type == RegType::kNullOrMapValue ||
                             lhs.type == RegType::kNullOrData) &&
                            !use_reg && in.imm == 0 &&
                            (op == kJmpJeq || op == kJmpJne);
          if (IsPointer(lhs.type) && !null_check) {
            if (!(use_reg && rhs.type == lhs.type &&
                  (op == kJmpJeq || op == kJmpJne)))
              return At(st.pc, "invalid pointer comparison");
          }
          if (!IsPointer(lhs.type) && IsPointer(rhs.type))
            return At(st.pc, "invalid pointer comparison");

          u32 taken_pc = static_cast<u32>(st.pc + 1 + in.off);
          VState taken = st;
          taken.pc = taken_pc;
          st.pc++;

          if (null_check) {
            // JEQ 0: taken => null; JNE 0: taken => non-null.
            RegState null_reg = RegState::Const(0);
            RegState good = lhs;
            good.type = lhs.type == RegType::kNullOrData
                            ? RegType::kPtrData
                            : RegType::kPtrMapValue;
            if (op == kJmpJeq) {
              taken.regs[dst] = null_reg;
              st.regs[dst] = good;
            } else {
              taken.regs[dst] = good;
              st.regs[dst] = null_reg;
            }
          } else if (!use_reg && lhs.type == RegType::kScalar) {
            // Refine scalar bounds on immediate comparisons.
            u64 k = static_cast<u64>(static_cast<i64>(in.imm));
            RegState& t = taken.regs[dst];
            RegState& f = st.regs[dst];
            switch (op) {
              case kJmpJeq: t = RegState::Const(k); break;
              case kJmpJne: f = RegState::Const(k); break;
              case kJmpJgt:  // taken: > k ; fall: <= k
                if (t.umin <= k && k != ~0ull) t.umin = k + 1;
                if (f.umax > k) f.umax = k;
                break;
              case kJmpJge:
                if (t.umin < k) t.umin = k;
                if (k != 0 && f.umax >= k) f.umax = k - 1;
                break;
              case kJmpJlt:
                if (k != 0 && t.umax >= k) t.umax = k - 1;
                if (f.umin < k) f.umin = k;
                break;
              case kJmpJle:
                if (t.umax > k) t.umax = k;
                if (k != ~0ull && f.umin <= k) f.umin = k + 1;
                break;
              default: break;
            }
            auto norm = [](RegState& r) {
              if (r.type == RegType::kScalar && !r.known &&
                  r.umin == r.umax) {
                r = RegState::Const(r.umin);
              }
            };
            norm(t);
            norm(f);
          }
          work.push_back(std::move(taken));
          continue;
        }

        case kClassJmp32:
          return At(st.pc, "JMP32 class not supported");
        case kClassLd:
          return At(st.pc, "legacy LD mode not supported");
        default:
          return At(st.pc, "unknown instruction class");
      }
    }
  path_done:;
  }
  return OkStatus();
}

}  // namespace nvmetro::ebpf

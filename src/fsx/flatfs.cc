#include "fsx/flatfs.h"

#include <algorithm>
#include <cstring>

namespace nvmetro::fsx {

namespace {

constexpr u64 kMagic = 0x464C415446533031ull;  // "FLATFS01"
constexpr u32 kVersion = 1;
constexpr u64 kMinExtent = 256 * KiB;

#pragma pack(push, 1)
struct Superblock {
  u64 magic = kMagic;
  u32 version = kVersion;
  u32 rsvd = 0;
  u64 meta_offset = 0;
  u64 meta_len = 0;
  u64 alloc_watermark = 0;
};
#pragma pack(pop)

/// Shared-state fan-in for N async sub-operations.
struct FanIn {
  int remaining;
  Status status;
  FlatFs::Callback done;
  FanIn(int n, FlatFs::Callback cb)
      : remaining(n), status(OkStatus()), done(std::move(cb)) {}
  void Arrive(Status st) {
    if (!st.ok() && status.ok()) status = st;
    if (--remaining == 0) done(status);
  }
};

void PutU64(std::vector<u8>* out, u64 v) {
  for (int i = 0; i < 8; i++) out->push_back(static_cast<u8>(v >> (8 * i)));
}
void PutU32(std::vector<u8>* out, u32 v) {
  for (int i = 0; i < 4; i++) out->push_back(static_cast<u8>(v >> (8 * i)));
}
bool GetU64(const std::vector<u8>& in, usize* pos, u64* v) {
  if (*pos + 8 > in.size()) return false;
  *v = 0;
  for (int i = 0; i < 8; i++) *v |= static_cast<u64>(in[(*pos)++]) << (8 * i);
  return true;
}
bool GetU32(const std::vector<u8>& in, usize* pos, u32* v) {
  if (*pos + 4 > in.size()) return false;
  *v = 0;
  for (int i = 0; i < 4; i++) *v |= static_cast<u32>(in[(*pos)++]) << (8 * i);
  return true;
}

}  // namespace

void FlatFs::Format(FsBackend* backend, Callback done) {
  FlatFs fs(backend);
  // An empty filesystem: write its metadata then the superblock.
  auto meta = std::make_shared<std::vector<u8>>(fs.SerializeMeta());
  u64 meta_off = fs.alloc_watermark_;
  u64 meta_len = meta->size();
  auto sb = std::make_shared<Superblock>();
  sb->meta_offset = meta_off;
  sb->meta_len = meta_len;
  sb->alloc_watermark =
      meta_off + (meta_len + kBlockSize - 1) / kBlockSize * kBlockSize;
  backend->Write(meta_off, meta->data(), meta->size(),
                 [backend, sb, meta, done](Status st) {
                   if (!st.ok()) {
                     done(st);
                     return;
                   }
                   backend->Write(0, sb.get(), sizeof(Superblock),
                                  [backend, sb, done](Status st2) {
                                    if (!st2.ok()) {
                                      done(st2);
                                      return;
                                    }
                                    backend->Flush(done);
                                  });
                 });
}

void FlatFs::Mount(FsBackend* backend, MountCallback done) {
  auto sb = std::make_shared<Superblock>();
  backend->Read(0, sb.get(), sizeof(Superblock), [backend, sb,
                                                  done](Status st) {
    if (!st.ok()) {
      done(st);
      return;
    }
    if (sb->magic != kMagic || sb->version != kVersion) {
      done(DataLoss("FlatFs: bad superblock (not formatted?)"));
      return;
    }
    auto blob = std::make_shared<std::vector<u8>>(sb->meta_len);
    backend->Read(sb->meta_offset, blob->data(), blob->size(),
                  [backend, sb, blob, done](Status st2) {
                    if (!st2.ok()) {
                      done(st2);
                      return;
                    }
                    auto fs = std::unique_ptr<FlatFs>(new FlatFs(backend));
                    Status ps = ParseMeta(*blob, fs.get());
                    if (!ps.ok()) {
                      done(ps);
                      return;
                    }
                    // The on-disk watermark governs; the meta blob's own
                    // extent is below it and simply becomes garbage until
                    // the next Sync reclaims nothing (bump allocator).
                    fs->alloc_watermark_ =
                        std::max(fs->alloc_watermark_, sb->alloc_watermark);
                    done(std::move(fs));
                  });
  });
}

std::vector<u8> FlatFs::SerializeMeta() const {
  std::vector<u8> out;
  PutU64(&out, alloc_watermark_);
  PutU32(&out, static_cast<u32>(files_.size()));
  for (const auto& [name, inode] : files_) {
    PutU32(&out, static_cast<u32>(name.size()));
    out.insert(out.end(), name.begin(), name.end());
    PutU64(&out, inode.size);
    PutU32(&out, static_cast<u32>(inode.extents.size()));
    for (const Extent& e : inode.extents) {
      PutU64(&out, e.offset);
      PutU64(&out, e.len);
    }
  }
  // Pending frees are part of the state being committed (their files are
  // gone from `files_` above), so the serialized image lists them free;
  // the in-memory allocator adopts them only after the commit point.
  PutU32(&out, static_cast<u32>(free_list_.size() + pending_free_.size()));
  for (const Extent& e : free_list_) {
    PutU64(&out, e.offset);
    PutU64(&out, e.len);
  }
  for (const Extent& e : pending_free_) {
    PutU64(&out, e.offset);
    PutU64(&out, e.len);
  }
  return out;
}

Status FlatFs::ParseMeta(const std::vector<u8>& blob, FlatFs* fs) {
  usize pos = 0;
  u64 watermark;
  u32 nfiles;
  if (!GetU64(blob, &pos, &watermark) || !GetU32(blob, &pos, &nfiles)) {
    return DataLoss("FlatFs: truncated metadata");
  }
  fs->alloc_watermark_ = watermark;
  for (u32 i = 0; i < nfiles; i++) {
    u32 namelen;
    if (!GetU32(blob, &pos, &namelen) || pos + namelen > blob.size()) {
      return DataLoss("FlatFs: truncated file entry");
    }
    std::string name(blob.begin() + pos, blob.begin() + pos + namelen);
    pos += namelen;
    Inode inode;
    u32 nextents;
    if (!GetU64(blob, &pos, &inode.size) || !GetU32(blob, &pos, &nextents)) {
      return DataLoss("FlatFs: truncated inode");
    }
    for (u32 e = 0; e < nextents; e++) {
      Extent ext;
      if (!GetU64(blob, &pos, &ext.offset) || !GetU64(blob, &pos, &ext.len)) {
        return DataLoss("FlatFs: truncated extent");
      }
      inode.extents.push_back(ext);
    }
    fs->files_.emplace(std::move(name), std::move(inode));
  }
  u32 nfree;
  if (!GetU32(blob, &pos, &nfree)) return DataLoss("FlatFs: truncated");
  for (u32 i = 0; i < nfree; i++) {
    Extent ext;
    if (!GetU64(blob, &pos, &ext.offset) || !GetU64(blob, &pos, &ext.len)) {
      return DataLoss("FlatFs: truncated free list");
    }
    fs->free_list_.push_back(ext);
  }
  return OkStatus();
}

Status FlatFs::Create(const std::string& name) {
  if (name.empty()) return InvalidArgument("empty file name");
  if (files_.count(name)) return AlreadyExists("file exists: " + name);
  files_.emplace(name, Inode{});
  return OkStatus();
}

bool FlatFs::Exists(const std::string& name) const {
  return files_.count(name) > 0;
}

Status FlatFs::Remove(const std::string& name) {
  auto it = files_.find(name);
  if (it == files_.end()) return NotFound("no such file: " + name);
  // Deferred free: the extents must not be reallocated until a Sync has
  // committed metadata without this file. Reusing them immediately would
  // let new data overwrite blocks the *durable* metadata still maps to —
  // a crash would then resurrect the file pointing at foreign bytes.
  for (const Extent& e : it->second.extents) pending_free_.push_back(e);
  files_.erase(it);
  return OkStatus();
}

u64 FlatFs::FileSize(const std::string& name) const {
  auto it = files_.find(name);
  return it == files_.end() ? 0 : it->second.size;
}

std::vector<std::string> FlatFs::List() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : files_) out.push_back(name);
  return out;
}

Result<Extent> FlatFs::Allocate(u64 len) {
  len = std::max(len, kMinExtent);
  len = (len + kBlockSize - 1) / kBlockSize * kBlockSize;
  for (usize i = 0; i < free_list_.size(); i++) {
    if (free_list_[i].len >= len) {
      Extent out{free_list_[i].offset, len};
      free_list_[i].offset += len;
      free_list_[i].len -= len;
      if (free_list_[i].len == 0) {
        free_list_.erase(free_list_.begin() + i);
      }
      return out;
    }
  }
  if (alloc_watermark_ + len > backend_->capacity()) {
    return ResourceExhausted("FlatFs: out of space");
  }
  Extent out{alloc_watermark_, len};
  alloc_watermark_ += len;
  return out;
}

u64 FlatFs::bytes_free() const {
  u64 free_bytes = backend_->capacity() - alloc_watermark_;
  for (const Extent& e : free_list_) free_bytes += e.len;
  return free_bytes;
}

Status FlatFs::MapRange(const Inode& inode, u64 off, u64 len,
                        std::vector<Extent>* out) const {
  u64 pos = 0;
  for (const Extent& e : inode.extents) {
    if (len == 0) break;
    u64 ext_end = pos + e.len;
    if (off < ext_end) {
      u64 within = off - pos;
      u64 n = std::min(len, e.len - within);
      out->push_back({e.offset + within, n});
      off += n;
      len -= n;
    }
    pos = ext_end;
  }
  if (len != 0) return OutOfRange("FlatFs: range beyond file extents");
  return OkStatus();
}

void FlatFs::Append(const std::string& name, const void* data, u64 len,
                    Callback done) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    done(NotFound("no such file: " + name));
    return;
  }
  Inode& inode = it->second;
  // Ensure extent capacity.
  u64 cap = 0;
  for (const Extent& e : inode.extents) cap += e.len;
  if (inode.size + len > cap) {
    auto ext = Allocate(inode.size + len - cap);
    if (!ext.ok()) {
      done(ext.status());
      return;
    }
    inode.extents.push_back(*ext);
  }
  std::vector<Extent> ranges;
  Status st = MapRange(inode, inode.size, len, &ranges);
  if (!st.ok()) {
    done(st);
    return;
  }
  inode.size += len;
  auto fan = std::make_shared<FanIn>(static_cast<int>(ranges.size()),
                                     std::move(done));
  const auto* p = static_cast<const u8*>(data);
  for (const Extent& r : ranges) {
    backend_->Write(r.offset, p, r.len,
                    [fan](Status s) { fan->Arrive(s); });
    p += r.len;
  }
}

Status FlatFs::Preallocate(const std::string& name, u64 bytes) {
  auto it = files_.find(name);
  if (it == files_.end()) return NotFound("no such file: " + name);
  Inode& inode = it->second;
  u64 cap = 0;
  for (const Extent& e : inode.extents) cap += e.len;
  if (bytes > cap) {
    auto ext = Allocate(bytes - cap);
    if (!ext.ok()) return ext.status();
    inode.extents.push_back(*ext);
  }
  inode.size = std::max(inode.size, bytes);
  return OkStatus();
}

void FlatFs::WriteAt(const std::string& name, u64 off, const void* data,
                     u64 len, Callback done) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    done(NotFound("no such file: " + name));
    return;
  }
  const Inode& inode = it->second;
  if (off + len > inode.size) {
    done(OutOfRange("FlatFs: WriteAt past EOF"));
    return;
  }
  std::vector<Extent> ranges;
  Status st = MapRange(inode, off, len, &ranges);
  if (!st.ok()) {
    done(st);
    return;
  }
  auto fan = std::make_shared<FanIn>(static_cast<int>(ranges.size()),
                                     std::move(done));
  const auto* p = static_cast<const u8*>(data);
  for (const Extent& r : ranges) {
    backend_->Write(r.offset, p, r.len,
                    [fan](Status s) { fan->Arrive(s); });
    p += r.len;
  }
}

void FlatFs::ReadAt(const std::string& name, u64 off, void* buf, u64 len,
                    Callback done) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    done(NotFound("no such file: " + name));
    return;
  }
  const Inode& inode = it->second;
  if (off + len > inode.size) {
    done(OutOfRange("FlatFs: read past EOF"));
    return;
  }
  std::vector<Extent> ranges;
  Status st = MapRange(inode, off, len, &ranges);
  if (!st.ok()) {
    done(st);
    return;
  }
  auto fan = std::make_shared<FanIn>(static_cast<int>(ranges.size()),
                                     std::move(done));
  auto* p = static_cast<u8*>(buf);
  for (const Extent& r : ranges) {
    backend_->Read(r.offset, p, r.len, [fan](Status s) { fan->Arrive(s); });
    p += r.len;
  }
}

void FlatFs::Sync(Callback done) {
  auto meta = std::make_shared<std::vector<u8>>(SerializeMeta());
  auto ext = Allocate(meta->size());
  if (!ext.ok()) {
    done(ext.status());
    return;
  }
  // Re-serialize with the watermark moved by the allocation itself so the
  // persisted watermark covers the meta extent.
  *meta = SerializeMeta();
  // Frees that this image commits (see Remove); adopted on commit below.
  usize npending = pending_free_.size();
  auto sb = std::make_shared<Superblock>();
  sb->meta_offset = ext->offset;
  sb->meta_len = meta->size();
  sb->alloc_watermark = alloc_watermark_;
  FsBackend* backend = backend_;
  backend->Write(
      ext->offset, meta->data(), meta->size(),
      [this, backend, sb, meta, new_ext = *ext, npending,
       done = std::move(done)](Status st) {
        if (!st.ok()) {
          done(st);
          return;
        }
        backend->Flush([this, backend, sb, new_ext, npending,
                        done](Status st2) {
          if (!st2.ok()) {
            done(st2);
            return;
          }
          backend->Write(
              0, sb.get(), sizeof(Superblock),
              [this, backend, sb, new_ext, npending, done](Status st3) {
                if (!st3.ok()) {
                  done(st3);
                  return;
                }
                // Commit point passed: the previous metadata copy and
                // the extents of files removed before this sync can now
                // be recycled.
                if (prev_meta_extent_.len > 0) {
                  free_list_.push_back(prev_meta_extent_);
                }
                prev_meta_extent_ = new_ext;
                free_list_.insert(
                    free_list_.end(), pending_free_.begin(),
                    pending_free_.begin() +
                        static_cast<std::ptrdiff_t>(npending));
                pending_free_.erase(
                    pending_free_.begin(),
                    pending_free_.begin() +
                        static_cast<std::ptrdiff_t>(npending));
                backend->Flush(done);
              });
        });
      });
}

}  // namespace nvmetro::fsx

// FlatFs: a minimal extent-based filesystem.
//
// Stands in for the ext4 filesystem the paper runs RocksDB on (§V-A, with
// journal/discard/atime disabled to minimize overhead — FlatFs likewise
// journals nothing). Files are append-oriented (what an LSM store needs):
// named files own extent lists carved from a bump allocator; metadata
// (superblock + inode table) is persisted on Sync() with the superblock
// written last as the commit point, so a "crash" (dropping the in-memory
// state and re-Mounting) recovers the last synced state.
//
// All I/O is asynchronous over an FsBackend so the filesystem can sit on
// any of the simulated storage stacks.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace nvmetro::fsx {

/// Byte-addressed asynchronous storage under the filesystem.
class FsBackend {
 public:
  using Callback = std::function<void(Status)>;

  virtual ~FsBackend() = default;
  virtual void Read(u64 offset, void* buf, u64 len, Callback done) = 0;
  virtual void Write(u64 offset, const void* buf, u64 len,
                     Callback done) = 0;
  virtual void Flush(Callback done) = 0;
  virtual u64 capacity() const = 0;
};

struct Extent {
  u64 offset = 0;  // bytes
  u64 len = 0;
};

class FlatFs {
 public:
  using Callback = std::function<void(Status)>;
  using MountCallback =
      std::function<void(Result<std::unique_ptr<FlatFs>>)>;

  static constexpr u64 kBlockSize = 4096;

  /// Writes a fresh, empty filesystem.
  static void Format(FsBackend* backend, Callback done);

  /// Loads the filesystem from the backend (after Format or a previous
  /// Sync).
  static void Mount(FsBackend* backend, MountCallback done);

  // --- Namespace -------------------------------------------------------------

  /// Creates an empty file; fails on duplicates.
  Status Create(const std::string& name);
  bool Exists(const std::string& name) const;
  Status Remove(const std::string& name);
  u64 FileSize(const std::string& name) const;
  std::vector<std::string> List() const;

  // --- Data I/O ---------------------------------------------------------------

  /// Appends `len` bytes; allocates extents as needed. The caller's
  /// buffer must stay valid until `done`.
  void Append(const std::string& name, const void* data, u64 len,
              Callback done);

  /// Grows a file to `bytes` (zero-filled semantics), allocating extents
  /// now. Write-ahead logs preallocate so their data survives crashes
  /// without a metadata sync per append; recovery then scans records
  /// in-band (see MiniKv's WAL framing).
  Status Preallocate(const std::string& name, u64 bytes);

  /// Overwrites [off, off+len) within the current file size.
  void WriteAt(const std::string& name, u64 off, const void* data, u64 len,
               Callback done);

  /// Reads [off, off+len) of a file.
  void ReadAt(const std::string& name, u64 off, void* buf, u64 len,
              Callback done);

  /// Persists metadata (inode table + superblock) and flushes the device.
  void Sync(Callback done);

  u64 bytes_free() const;

 private:
  struct Inode {
    u64 size = 0;
    std::vector<Extent> extents;
  };

  explicit FlatFs(FsBackend* backend) : backend_(backend) {}

  Result<Extent> Allocate(u64 len);
  /// Maps [off, off+len) of a file onto device ranges.
  Status MapRange(const Inode& inode, u64 off, u64 len,
                  std::vector<Extent>* out) const;

  std::vector<u8> SerializeMeta() const;
  static Status ParseMeta(const std::vector<u8>& blob, FlatFs* fs);

  FsBackend* backend_;
  std::map<std::string, Inode> files_;
  u64 alloc_watermark_ = 2 * kBlockSize;  // block 0: superblock
  std::vector<Extent> free_list_;
  /// Extents of removed files, reusable only after the next Sync commit
  /// (see Remove for the crash-consistency argument).
  std::vector<Extent> pending_free_;
  // Previous metadata extent: freed only after the NEXT sync commits, so
  // a crash mid-sync always leaves one intact copy.
  Extent prev_meta_extent_{};

  friend struct FlatFsTestPeer;
};

}  // namespace nvmetro::fsx

// Virtual CPU: serialized execution resource with busy-time accounting.
//
// Every thread in the modeled system — guest vCPUs, NVMetro router worker
// threads, UIF threads, kernel workers (vhost, dm-crypt kcryptd), QEMU
// iothreads, SPDK pollers, SGX switchless workers — is a VCpu. Work is
// submitted as (cost, callback) pairs and executes FIFO, one item at a
// time, so queueing delay under load emerges naturally.
//
// CPU-consumption figures (paper Figures 11-13) are computed from busy_ns:
// explicit work cost plus, for busy-polling threads, the wall-clock time
// spent in polling mode (a spinning poller burns 100% CPU whether or not
// requests arrive — this is exactly the polling-cost effect the paper
// discusses for MDev/NVMetro/SPDK).
#pragma once

#include <functional>
#include <string>

#include "common/types.h"
#include "sim/simulator.h"

namespace nvmetro::sim {

class VCpu {
 public:
  using Callback = std::function<void()>;

  VCpu(Simulator* sim, std::string name);
  VCpu(const VCpu&) = delete;
  VCpu& operator=(const VCpu&) = delete;

  /// Enqueues a work item costing `cost` ns of CPU time; `fn` runs when
  /// the work completes. Items run FIFO; if the CPU is busy the item waits.
  void Run(SimTime cost, Callback fn);

  /// Like Run but with no completion callback (pure cost accounting).
  void Charge(SimTime cost) {
    Run(cost, [] {});
  }

  /// Marks this CPU as busy-polling (or not). While polling, wall time
  /// accrues as busy time even when no work executes.
  void SetPolling(bool on);
  bool polling() const { return polling_; }

  /// Time at which currently queued work will have drained.
  SimTime free_at() const { return free_at_; }
  bool idle() const { return free_at_ <= sim_->now(); }

  /// Total accounted busy nanoseconds (work outside polling windows plus
  /// polling wall time, including any currently open polling window).
  u64 busy_ns() const;

  /// busy_ns() - busy_ns() at the given earlier snapshot; used to measure
  /// CPU over a benchmark window.
  u64 BusySince(u64 snapshot) const { return busy_ns() - snapshot; }

  const std::string& name() const { return name_; }
  Simulator* simulator() const { return sim_; }

 private:
  Simulator* sim_;
  std::string name_;
  SimTime free_at_ = 0;
  u64 work_ns_ = 0;       // work accounted outside polling windows
  bool polling_ = false;
  SimTime poll_started_ = 0;
  u64 poll_accum_ns_ = 0;  // closed polling windows
};

/// Cold-wake penalty model: a thread (or halted guest vCPU / idle IRQ
/// core) that has been idle longer than `threshold` pays `cold_ns` of
/// extra latency to start running again (scheduler wakeup, C-state exit,
/// VM entry); a recently-active one pays only `warm_ns`. This is the
/// mechanism behind the interrupt-driven baselines' tail behaviour: fast
/// completions (writes) find the path warm, slow ones (reads) find it
/// cold.
inline SimTime WakePenalty(const VCpu& cpu, SimTime warm_ns, SimTime cold_ns,
                           SimTime threshold = 40 * kUs) {
  SimTime now = cpu.simulator()->now();
  SimTime idle_since = cpu.free_at();
  if (now <= idle_since) return 0;  // still running: no wake needed
  return (now - idle_since) > threshold ? cold_ns : warm_ns;
}

}  // namespace nvmetro::sim

#include "sim/simulator.h"

#include <cassert>

#include "sim/vcpu.h"

namespace nvmetro::sim {

EventId Simulator::ScheduleAt(SimTime at, Callback cb) {
  assert(at >= now_ && "cannot schedule in the past");
  if (at < now_) at = now_;
  u64 seq = next_seq_++;
  queue_.push(Event{at, seq, std::move(cb)});
  live_.insert(seq);
  return EventId{seq};
}

void Simulator::Cancel(EventId id) {
  // Only a live (scheduled, not yet fired, not yet cancelled) event can be
  // cancelled; anything else is a stale id and must not touch cancelled_.
  if (id.valid() && live_.erase(id.seq)) cancelled_.insert(id.seq);
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    auto it = cancelled_.find(ev.seq);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    live_.erase(ev.seq);
    now_ = ev.time;
    executed_++;
    ev.cb();
    return true;
  }
  return false;
}

SimTime Simulator::Run() {
  while (Step()) {
  }
  return now_;
}

void Simulator::RunUntil(SimTime t) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (cancelled_.count(top.seq)) {
      cancelled_.erase(top.seq);
      queue_.pop();
      continue;
    }
    if (top.time > t) break;
    Event ev = queue_.top();
    queue_.pop();
    live_.erase(ev.seq);
    now_ = ev.time;
    executed_++;
    ev.cb();
  }
  if (t > now_) now_ = t;
}

u64 Simulator::TotalCpuBusyNs() const {
  u64 sum = 0;
  for (const VCpu* c : cpus_) sum += c->busy_ns();
  return sum;
}

}  // namespace nvmetro::sim

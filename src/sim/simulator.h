// Deterministic discrete-event simulation core.
//
// Why a simulator: the paper's evaluation measures polling-thread CPU
// consumption, multi-job scaling and tail latency on a 12-core server with
// real NVMe hardware. This reproduction runs on a 1-core container, so all
// timing is virtual: components schedule events on a simulated clock, and
// per-CPU busy time is accounted explicitly (see VCpu). All protocol and
// data-path code (rings, PRP walks, eBPF interpretation, XTS-AES) runs for
// real inside the simulation; only the clock is virtual, which makes every
// experiment deterministic and reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/types.h"

namespace nvmetro::sim {

class VCpu;

/// Identifies a scheduled event so that it can be cancelled.
struct EventId {
  u64 seq = 0;
  bool valid() const { return seq != 0; }
};

/// The event queue and virtual clock. Events at the same timestamp run in
/// scheduling order (FIFO), which keeps simulations deterministic.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time in nanoseconds.
  SimTime now() const { return now_; }

  /// Schedules `cb` to run at absolute time `at` (>= now).
  EventId ScheduleAt(SimTime at, Callback cb);

  /// Schedules `cb` to run `delay` ns from now.
  EventId ScheduleAfter(SimTime delay, Callback cb) {
    return ScheduleAt(now_ + delay, std::move(cb));
  }

  /// Cancels a pending event. Cancelling an already-fired, already-
  /// cancelled or invalid event is a no-op (stale EventIds are safe).
  void Cancel(EventId id);

  /// Runs events until the queue is empty. Returns the final time.
  SimTime Run();

  /// Runs events with time <= t, then sets now() = t.
  void RunUntil(SimTime t);

  /// RunUntil(now() + d).
  void RunFor(SimTime d) { RunUntil(now_ + d); }

  /// Executes the single next event, if any. Returns false when idle.
  bool Step();

  /// Number of pending (non-cancelled) events.
  usize pending() const { return live_.size(); }

  /// Total events executed since construction.
  u64 events_executed() const { return executed_; }

  /// Registers a VCpu for aggregate CPU reporting (called by VCpu ctor).
  void RegisterCpu(VCpu* cpu) { cpus_.push_back(cpu); }

  /// All registered vCPUs (guest cores, router threads, UIF threads...).
  const std::vector<VCpu*>& cpus() const { return cpus_; }

  /// Sum of busy nanoseconds across all registered vCPUs.
  u64 TotalCpuBusyNs() const;

 private:
  struct Event {
    SimTime time;
    u64 seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  u64 next_seq_ = 1;
  u64 executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  // Seqs scheduled but neither executed nor cancelled. Keeping this set
  // (rather than computing queue_.size() - cancelled_.size()) makes
  // Cancel() of a stale EventId a true no-op: the old subtraction
  // underflowed usize when a seq that already fired was "cancelled".
  std::unordered_set<u64> live_;
  std::unordered_set<u64> cancelled_;
  std::vector<VCpu*> cpus_;
};

}  // namespace nvmetro::sim

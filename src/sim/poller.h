// Event-source poller with busy-poll and adaptive (epoll-assisted) modes.
//
// In the real system a poller thread spins over a set of queues (VSQs,
// HCQs, NSQs/NCQs) checking for new entries. In the simulation producers
// call Notify() instead, and the poller dispatches handlers on its VCpu:
//
//  - busy-poll mode: dispatch happens as soon as the CPU is free plus a
//    small per-dispatch cost; the VCpu accrues 100% busy time while the
//    poller is active (VCpu::SetPolling).
//  - sleeping (adaptive) mode: after `idle_timeout` with no events the
//    poller blocks (epoll_wait in the paper's UIF framework); the next
//    Notify pays `wakeup_latency` before dispatch resumes and the CPU is
//    idle in between.
//
// This reproduces the paper's §III-D "adaptive polling approach, where
// [UIFs] switch between active polling and OS-assisted waiting depending
// on the activity level", and the router worker behaviour of §III-C
// ("individually track each VM to stop polling them during inactivity").
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/simulator.h"
#include "sim/vcpu.h"

namespace nvmetro::obs {
class Counter;
class Observability;
}  // namespace nvmetro::obs

namespace nvmetro::sim {

class Poller {
 public:
  struct Options {
    /// CPU cost charged per dispatched event (ring check + branch).
    SimTime dispatch_cost = 120 * kNs;
    /// If true, the poller sleeps after `idle_timeout` without events.
    bool adaptive = false;
    SimTime idle_timeout = 50 * kUs;
    /// Latency from Notify() to first dispatch when sleeping (wakeup from
    /// epoll_wait + context switch).
    SimTime wakeup_latency = 4 * kUs;
    /// CPU burned by the wakeup path itself.
    SimTime wakeup_cpu_cost = 500 * kNs;
    /// Optional metrics sink: publishes "<name>.dispatches", ".sleeps"
    /// and ".wakeups" counters. Never charges simulated time.
    obs::Observability* obs = nullptr;
    std::string metrics_name = "poller";
  };

  using Handler = std::function<void()>;

  Poller(Simulator* sim, VCpu* cpu, Options opts);
  ~Poller();
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  /// Registers an event source. The handler runs on the poller's VCpu once
  /// per Notify() of that source.
  u32 AddSource(Handler handler);

  /// Signals that `source` has one new event to handle.
  void Notify(u32 source);

  /// Starts the poller in busy-poll state.
  void Start();

  /// Stops the poller entirely (pending notifications stay queued).
  void Stop();

  /// True when the poller is in the blocked/adaptive-sleep state; a
  /// notifier may need to pay an extra kick cost in that case (modeled by
  /// callers, e.g. guest doorbell traps when the router parked the VM).
  bool sleeping() const { return state_ == State::kSleeping; }
  bool started() const { return state_ != State::kStopped; }

  VCpu* cpu() const { return cpu_; }

  /// Number of handled events (for tests).
  u64 dispatched() const { return dispatched_; }

 private:
  enum class State { kStopped, kPolling, kSleeping };

  void DispatchNext();
  void ArmIdleTimer();
  void Wake();

  Simulator* sim_;
  VCpu* cpu_;
  Options opts_;
  State state_ = State::kStopped;
  bool draining_ = false;
  bool waking_ = false;
  std::vector<Handler> handlers_;
  std::deque<u32> pending_;
  obs::Counter* m_dispatches_ = nullptr;
  obs::Counter* m_sleeps_ = nullptr;
  obs::Counter* m_wakeups_ = nullptr;
  u64 dispatched_ = 0;
  u64 activity_stamp_ = 0;  // bumped on every Notify
  EventId idle_timer_{};
};

}  // namespace nvmetro::sim

#include "sim/poller.h"

#include <cassert>

#include "obs/obs.h"

namespace nvmetro::sim {

Poller::Poller(Simulator* sim, VCpu* cpu, Options opts)
    : sim_(sim), cpu_(cpu), opts_(opts) {
  if (opts_.obs) {
    obs::MetricsRegistry& m = opts_.obs->metrics();
    m_dispatches_ = m.GetCounter(opts_.metrics_name + ".dispatches");
    m_sleeps_ = m.GetCounter(opts_.metrics_name + ".sleeps");
    m_wakeups_ = m.GetCounter(opts_.metrics_name + ".wakeups");
  }
}

Poller::~Poller() {
  if (state_ == State::kPolling) cpu_->SetPolling(false);
}

u32 Poller::AddSource(Handler handler) {
  handlers_.push_back(std::move(handler));
  return static_cast<u32>(handlers_.size() - 1);
}

void Poller::Start() {
  if (state_ != State::kStopped) return;
  state_ = State::kPolling;
  cpu_->SetPolling(true);
  if (!pending_.empty()) {
    DispatchNext();
  } else {
    ArmIdleTimer();
  }
}

void Poller::Stop() {
  if (state_ == State::kPolling) cpu_->SetPolling(false);
  state_ = State::kStopped;
  sim_->Cancel(idle_timer_);
  idle_timer_ = EventId{};
}

void Poller::Notify(u32 source) {
  assert(source < handlers_.size());
  pending_.push_back(source);
  activity_stamp_++;
  switch (state_) {
    case State::kStopped:
      return;  // queued until Start()
    case State::kSleeping:
      Wake();
      return;
    case State::kPolling:
      if (!draining_) DispatchNext();
      return;
  }
}

void Poller::Wake() {
  if (waking_) return;
  waking_ = true;
  if (m_wakeups_) m_wakeups_->Inc();
  sim_->ScheduleAfter(opts_.wakeup_latency, [this] {
    waking_ = false;
    if (state_ != State::kSleeping) return;
    state_ = State::kPolling;
    cpu_->SetPolling(true);
    cpu_->Run(opts_.wakeup_cpu_cost, [this] {
      if (!draining_) DispatchNext();
    });
  });
}

void Poller::DispatchNext() {
  if (state_ != State::kPolling) return;
  if (pending_.empty()) {
    draining_ = false;
    ArmIdleTimer();
    return;
  }
  draining_ = true;
  u32 src = pending_.front();
  pending_.pop_front();
  cpu_->Run(opts_.dispatch_cost, [this, src] {
    dispatched_++;
    if (m_dispatches_) m_dispatches_->Inc();
    handlers_[src]();
    DispatchNext();
  });
}

void Poller::ArmIdleTimer() {
  if (!opts_.adaptive || state_ != State::kPolling) return;
  sim_->Cancel(idle_timer_);
  u64 stamp = activity_stamp_;
  idle_timer_ = sim_->ScheduleAfter(opts_.idle_timeout, [this, stamp] {
    idle_timer_ = EventId{};
    if (state_ != State::kPolling) return;
    if (activity_stamp_ != stamp || !pending_.empty()) return;
    state_ = State::kSleeping;
    if (m_sleeps_) m_sleeps_->Inc();
    cpu_->SetPolling(false);
  });
}

}  // namespace nvmetro::sim

#include "sim/vcpu.h"

#include <algorithm>

namespace nvmetro::sim {

VCpu::VCpu(Simulator* sim, std::string name)
    : sim_(sim), name_(std::move(name)) {
  sim_->RegisterCpu(this);
}

void VCpu::Run(SimTime cost, Callback fn) {
  SimTime start = std::max(sim_->now(), free_at_);
  free_at_ = start + cost;
  if (!polling_) {
    work_ns_ += cost;
  }
  // If the work starts inside a polling window its cost is already covered
  // by the window's wall time; if the window closes before the work runs
  // the small overlap is accepted (polling windows close only when idle).
  sim_->ScheduleAt(free_at_, std::move(fn));
}

void VCpu::SetPolling(bool on) {
  if (on == polling_) return;
  if (on) {
    poll_started_ = sim_->now();
  } else {
    poll_accum_ns_ += sim_->now() - poll_started_;
  }
  polling_ = on;
}

u64 VCpu::busy_ns() const {
  u64 open = polling_ ? (sim_->now() - poll_started_) : 0;
  return work_ns_ + poll_accum_ns_ + open;
}

}  // namespace nvmetro::sim

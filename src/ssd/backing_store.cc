#include "ssd/backing_store.h"

#include <algorithm>
#include <cstring>

namespace nvmetro::ssd {

BackingStore::BackingStore(u64 capacity) : capacity_(capacity) {}

Status BackingStore::Read(u64 off, void* dst, u64 len) const {
  if (len > capacity_ || off > capacity_ - len)
    return OutOfRange("backing store read out of range");
  auto* out = static_cast<u8*>(dst);
  while (len > 0) {
    u64 chunk = off / kChunkSize;
    u64 in_chunk = off % kChunkSize;
    u64 n = std::min(len, kChunkSize - in_chunk);
    auto it = chunks_.find(chunk);
    if (it == chunks_.end()) {
      std::memset(out, 0, n);
    } else {
      std::memcpy(out, it->second.get() + in_chunk, n);
    }
    out += n;
    off += n;
    len -= n;
  }
  return OkStatus();
}

Status BackingStore::Write(u64 off, const void* src, u64 len) {
  if (len > capacity_ || off > capacity_ - len)
    return OutOfRange("backing store write out of range");
  const auto* in = static_cast<const u8*>(src);
  while (len > 0) {
    u64 chunk = off / kChunkSize;
    u64 in_chunk = off % kChunkSize;
    u64 n = std::min(len, kChunkSize - in_chunk);
    auto it = chunks_.find(chunk);
    if (it == chunks_.end()) {
      auto buf = std::make_unique<u8[]>(kChunkSize);
      std::memset(buf.get(), 0, kChunkSize);
      it = chunks_.emplace(chunk, std::move(buf)).first;
    }
    std::memcpy(it->second.get() + in_chunk, in, n);
    in += n;
    off += n;
    len -= n;
  }
  return OkStatus();
}

Status BackingStore::Trim(u64 off, u64 len) {
  if (len > capacity_ || off > capacity_ - len)
    return OutOfRange("backing store trim out of range");
  while (len > 0) {
    u64 chunk = off / kChunkSize;
    u64 in_chunk = off % kChunkSize;
    u64 n = std::min(len, kChunkSize - in_chunk);
    auto it = chunks_.find(chunk);
    if (it != chunks_.end()) {
      if (n == kChunkSize) {
        chunks_.erase(it);
      } else {
        std::memset(it->second.get() + in_chunk, 0, n);
      }
    }
    off += n;
    len -= n;
  }
  return OkStatus();
}

bool BackingStore::Matches(u64 off, const void* expected, u64 len) const {
  std::unique_ptr<u8[]> buf(new u8[len]);
  if (!Read(off, buf.get(), len).ok()) return false;
  return std::memcmp(buf.get(), expected, len) == 0;
}

}  // namespace nvmetro::ssd

// Sparse in-memory backing store for simulated drives.
//
// Data written through the NVMe stack is physically stored here, so
// end-to-end properties (encryption format compatibility, mirror
// consistency, filesystem recovery) are verifiable by reading the media
// back. Storage is chunked and allocated lazily; unwritten regions read
// as zeros, matching a freshly-deallocated SSD.
#pragma once

#include <memory>
#include <unordered_map>

#include "common/status.h"
#include "common/types.h"

namespace nvmetro::ssd {

class BackingStore {
 public:
  /// Creates a store of `capacity` bytes.
  explicit BackingStore(u64 capacity);

  u64 capacity() const { return capacity_; }

  /// Copies [off, off+len) into dst. Out-of-range access is an error.
  Status Read(u64 off, void* dst, u64 len) const;

  /// Writes [off, off+len) from src.
  Status Write(u64 off, const void* src, u64 len);

  /// Deallocates a range (reads return zeros afterwards). Byte-exact.
  Status Trim(u64 off, u64 len);

  /// Compares [off, off+len) with the expected bytes; true when equal.
  bool Matches(u64 off, const void* expected, u64 len) const;

  /// Number of chunks currently materialized (for tests / memory checks).
  usize chunk_count() const { return chunks_.size(); }

 private:
  static constexpr u64 kChunkSize = 4 * KiB;

  u64 capacity_;
  std::unordered_map<u64, std::unique_ptr<u8[]>> chunks_;
};

}  // namespace nvmetro::ssd

// SSD timing model, calibrated against the Samsung 970 EVO Plus 1TB used
// in the paper's testbed.
//
// Structure (all parameters in one place so EXPERIMENTS.md can reference
// them):
//   - a single firmware pipeline: every command pays `cmd_overhead_ns`
//     serially, capping small-block IOPS (~450K for the 970 EVO Plus
//     class);
//   - `media_units` parallel NAND planes: a read occupies one unit for
//     `read_media_ns`, a write for `write_media_ns` (SLC-cache absorbed);
//   - a shared data bus modeling the ~3.5/3.3 GB/s sequential read/write
//     bandwidth;
//   - occasional slow ops (read retries / GC pauses) produce a realistic
//     p99 tail (paper Figure 4 whiskers).
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace nvmetro::ssd {

struct LatencyParams {
  /// Per-command firmware/fetch cost (serial pipeline).
  SimTime cmd_overhead_ns = 3'300;
  /// NAND plane-level parallelism available to the controller.
  u32 media_units = 48;
  /// Media occupancy of a read (sense + on-chip transfer), <= 16 KiB.
  SimTime read_media_ns = 68'000;
  /// Media occupancy of a write into the SLC cache.
  SimTime write_media_ns = 18'000;
  /// Additional media occupancy per extra 16 KiB page of a large op.
  SimTime media_per_page_ns = 4'000;
  /// Shared bus bandwidth: ns per byte. 3.5 GB/s -> 0.2857 ns/B.
  double read_bus_ns_per_byte = 1e9 / 3.5e9;
  double write_bus_ns_per_byte = 1e9 / 3.3e9;
  /// Per-command bus/transfer setup occupancy: small requests reach a
  /// lower fraction of the sequential bandwidth than large ones (real
  /// drives behave the same; this is why 1 MiB readahead reads beat
  /// direct 16K reads on the QEMU path).
  SimTime bus_setup_ns = 1'200;
  /// Flush cost (SLC cache commit).
  SimTime flush_ns = 60'000;
  /// Tail behaviour: fraction of ops hitting a slow path and its factor.
  double slow_op_rate = 0.015;
  double slow_op_factor = 2.6;
  /// Uniform jitter applied to media time: +/- this fraction.
  double jitter = 0.08;
};

/// Tracks the occupancy of the firmware pipeline, media units and bus, and
/// computes per-command completion times. Deterministic given the seed.
class LatencyModel {
 public:
  explicit LatencyModel(LatencyParams params, u64 seed = 42);

  /// Returns the absolute completion time for a command arriving at
  /// `now` with the given direction and transfer length. Advances the
  /// internal resource clocks (so order of calls matters, as in a real
  /// device).
  SimTime Complete(SimTime now, bool is_write, u64 bytes);

  /// Flush: serializes on the firmware pipeline.
  SimTime CompleteFlush(SimTime now);

  /// Zero-transfer admin-ish cost (DSM, write-zeroes bookkeeping).
  SimTime CompleteNoData(SimTime now);

  const LatencyParams& params() const { return params_; }

 private:
  SimTime MediaTime(bool is_write, u64 bytes);

  LatencyParams params_;
  Rng rng_;
  SimTime fw_free_ = 0;
  std::vector<SimTime> unit_free_;
  SimTime bus_free_ = 0;
};

/// Default parameter set (Samsung 970 EVO Plus class).
LatencyParams Samsung970EvoPlusParams();

}  // namespace nvmetro::ssd

#include "ssd/controller.h"

#include <cassert>
#include <cstring>

#include "fault/fault.h"
#include "nvme/prp.h"
#include "obs/obs.h"

namespace nvmetro::ssd {

using nvme::Cqe;
using nvme::NvmeStatus;
using nvme::Sqe;

namespace {
constexpr u32 kAdminQueueEntries = 64;
}

SimulatedController::SimulatedController(sim::Simulator* sim,
                                         mem::AddressSpace* dma,
                                         ControllerConfig cfg)
    : sim_(sim),
      dma_(dma),
      cfg_(cfg),
      store_(cfg.capacity),
      latency_(cfg.latency, cfg.seed) {
  // Admin queue pair (qid 0) with controller-owned memory.
  queues_.push_back(std::make_unique<QueuePair>(0, kAdminQueueEntries));
  if (cfg_.obs) {
    obs::MetricsRegistry& m = cfg_.obs->metrics();
    m_commands_ = m.GetCounter("ssd.commands");
    m_errors_ = m.GetCounter("ssd.errors");
    m_injected_ = m.GetCounter("ssd.injected");
    m_bytes_read_ = m.GetCounter("ssd.bytes_read");
    m_bytes_written_ = m.GetCounter("ssd.bytes_written");
    m_inflight_ = m.GetGauge("ssd.inflight");
  }
}

Result<u16> SimulatedController::CreateIoQueuePair(u32 entries,
                                                   CqNotify notify,
                                                   mem::AddressSpace* dma) {
  if (entries < 2 || entries > nvme::kMaxQueueEntries)
    return InvalidArgument("bad queue size");
  if (queues_.size() > cfg_.max_io_queues)
    return ResourceExhausted("controller queue limit reached");
  auto qid = static_cast<u16>(queues_.size());
  auto owned = std::make_unique<QueuePair>(qid, entries);
  owned->notify = std::move(notify);
  owned->dma = dma;
  queues_.push_back(std::move(owned));
  return qid;
}

Result<u16> SimulatedController::CreateIoQueuePairAt(u8* sq_base, u8* cq_base,
                                                     u32 entries,
                                                     CqNotify notify,
                                                     mem::AddressSpace* dma) {
  if (!sq_base || !cq_base) return InvalidArgument("null ring memory");
  if (entries < 2 || entries > nvme::kMaxQueueEntries)
    return InvalidArgument("bad queue size");
  if (queues_.size() > cfg_.max_io_queues)
    return ResourceExhausted("controller queue limit reached");
  auto qid = static_cast<u16>(queues_.size());
  auto qp = std::make_unique<QueuePair>(qid, sq_base, cq_base, entries);
  qp->notify = std::move(notify);
  qp->dma = dma;
  queues_.push_back(std::move(qp));
  return qid;
}

Result<u16> SimulatedController::AttachSharedQueuePair(
    nvme::SqRing* sq_ring, nvme::CqRing* cq_ring, CqNotify notify,
    mem::AddressSpace* dma) {
  if (!sq_ring || !cq_ring) return InvalidArgument("null rings");
  if (queues_.size() > cfg_.max_io_queues)
    return ResourceExhausted("controller queue limit reached");
  auto qid = static_cast<u16>(queues_.size());
  auto qp = std::make_unique<QueuePair>(qid, sq_ring, cq_ring);
  qp->notify = std::move(notify);
  qp->dma = dma;
  queues_.push_back(std::move(qp));
  return qid;
}

Status SimulatedController::DeleteIoQueuePair(u16 qid) {
  if (qid == 0 || qid >= queues_.size() || !queues_[qid] ||
      !queues_[qid]->active)
    return NotFound("no such queue");
  queues_[qid]->active = false;
  return OkStatus();
}

nvme::SqRing* SimulatedController::sq(u16 qid) {
  if (qid >= queues_.size() || !queues_[qid] || !queues_[qid]->active)
    return nullptr;
  return queues_[qid]->sq;
}

nvme::CqRing* SimulatedController::cq(u16 qid) {
  if (qid >= queues_.size() || !queues_[qid] || !queues_[qid]->active)
    return nullptr;
  return queues_[qid]->cq;
}

void SimulatedController::SetAdminCqNotify(CqNotify notify) {
  queues_[0]->notify = std::move(notify);
}

void SimulatedController::RingSqDoorbell(u16 qid) {
  if (qid >= queues_.size() || !queues_[qid] || !queues_[qid]->active) return;
  queues_[qid]->sq->PublishTail();
  sim_->ScheduleAfter(cfg_.doorbell_delay, [this, qid] { ProcessSq(qid); });
}

void SimulatedController::RingCqDoorbell(u16 qid) {
  if (qid >= queues_.size() || !queues_[qid] || !queues_[qid]->active) return;
  queues_[qid]->cq->PublishHead();
}

bool SimulatedController::Submit(u16 qid, const Sqe& sqe) {
  if (!Push(qid, sqe)) return false;
  RingSqDoorbell(qid);
  return true;
}

bool SimulatedController::Push(u16 qid, const Sqe& sqe) {
  if (fault_ && !fault_->OnSsdSubmit()) return false;
  nvme::SqRing* ring = sq(qid);
  return ring && ring->Push(sqe);
}

void SimulatedController::ProcessSq(u16 qid) {
  if (qid >= queues_.size() || !queues_[qid] || !queues_[qid]->active) return;
  QueuePair& qp = *queues_[qid];
  Sqe sqe;
  while (qp.sq->Pop(&sqe)) {
    if (qid == 0) {
      ExecuteAdmin(qp, sqe);
    } else {
      ExecuteIo(qp, sqe);
    }
  }
}

u64 SimulatedController::NsBase(u32 nsid) const {
  return (static_cast<u64>(nsid) - 1) * (cfg_.capacity / cfg_.num_namespaces);
}

u64 SimulatedController::ns_block_count(u32 nsid) const {
  if (nsid == 0 || nsid > cfg_.num_namespaces) return 0;
  return (cfg_.capacity / cfg_.num_namespaces) / cfg_.lba_size;
}

Result<u64> SimulatedController::CheckRange(u32 nsid, u64 slba,
                                            u32 nblocks) const {
  if (nsid == 0 || nsid > cfg_.num_namespaces)
    return NotFound("invalid namespace");
  u64 nlb_total = ns_block_count(nsid);
  if (slba >= nlb_total || nblocks > nlb_total - slba)
    return OutOfRange("LBA out of range");
  return NsBase(nsid) + slba * cfg_.lba_size;
}

void SimulatedController::CompleteAt(SimTime when, u16 qid, const Sqe& sqe,
                                     NvmeStatus status, u32 result) {
  SimTime delay = when > sim_->now() ? when - sim_->now() : 0;
  sim_->ScheduleAfter(delay, [this, qid, sqe, status, result] {
    PostCqe(qid, sqe, status, result);
  });
}

void SimulatedController::PostCqe(u16 qid, const Sqe& sqe, NvmeStatus status,
                                  u32 result) {
  if (qid >= queues_.size() || !queues_[qid] || !queues_[qid]->active) return;
  QueuePair& qp = *queues_[qid];
  Cqe cqe;
  cqe.result = result;
  cqe.sq_head = qp.sq->head();
  cqe.sq_id = qid;
  cqe.cid = sqe.cid;
  cqe.set_status(status);
  bool ok = qp.cq->Push(cqe);
  // A full CQ means the host stopped consuming; real controllers stall.
  // We retry shortly, which preserves forward progress in tests that
  // deliberately stop polling for a while.
  if (!ok) {
    sim_->ScheduleAfter(5 * kUs,
                        [this, qid, sqe, status, result] {
                          PostCqe(qid, sqe, status, result);
                        });
    return;
  }
  commands_completed_++;
  if (m_commands_) m_commands_->Inc();
  if (!nvme::StatusOk(status) && m_errors_) m_errors_->Inc();
  // Admin completions (qid 0) have no matching ExecuteIo increment.
  if (m_inflight_ && qid != 0) m_inflight_->Add(-1);
  if (qp.notify) qp.notify();
}

void SimulatedController::ExecuteIo(QueuePair& qp, const Sqe& sqe) {
  if (m_inflight_) m_inflight_->Add(1);
  // Fault-injector check: a stalled command is swallowed (no CQE until
  // the host times it out); a delayed error completes late with the
  // planned status.
  if (fault_ && sqe.is_io_data_cmd()) {
    nvme::NvmeStatus fstatus = nvme::kStatusSuccess;
    SimTime fdelay = 0;
    switch (fault_->OnSsdCommand(sqe.nsid, &fstatus, &fdelay)) {
      case fault::FaultInjector::CommandAction::kStall:
        // Swallowed: no CQE will ever decrement it.
        if (m_inflight_) m_inflight_->Add(-1);
        return;
      case fault::FaultInjector::CommandAction::kError:
        CompleteAt(sim_->now() + fdelay, qp.qid, sqe, fstatus);
        return;
      case fault::FaultInjector::CommandAction::kNone:
        break;
    }
  }
  // Failure injection check.
  for (auto& inj : injections_) {
    if (inj.remaining > 0 && inj.nsid == sqe.nsid && sqe.is_io_data_cmd()) {
      inj.remaining--;
      if (m_injected_) m_injected_->Inc();
      CompleteAt(latency_.CompleteNoData(sim_->now()), qp.qid, sqe,
                 inj.status);
      return;
    }
  }

  switch (sqe.opcode) {
    case nvme::kCmdRead:
    case nvme::kCmdWrite:
    case nvme::kCmdCompare: {
      u32 nblocks = sqe.block_count();
      u64 bytes = static_cast<u64>(nblocks) * cfg_.lba_size;
      if (bytes > cfg_.max_transfer) {
        CompleteAt(latency_.CompleteNoData(sim_->now()), qp.qid, sqe,
                   nvme::MakeStatus(nvme::kSctGeneric, nvme::kScInvalidField));
        return;
      }
      auto off = CheckRange(sqe.nsid, sqe.slba(), nblocks);
      if (!off.ok()) {
        auto sc = off.status().code() == StatusCode::kNotFound
                      ? nvme::kScInvalidNamespace
                      : nvme::kScLbaOutOfRange;
        CompleteAt(latency_.CompleteNoData(sim_->now()), qp.qid, sqe,
                   nvme::MakeStatus(nvme::kSctGeneric, sc));
        return;
      }
      bool is_write = sqe.opcode == nvme::kCmdWrite;
      SimTime done = latency_.Complete(sim_->now(), is_write, bytes);
      u64 store_off = *off;
      // Data transfer happens at completion time (see header notes).
      Sqe cmd = sqe;
      u16 qid = qp.qid;
      mem::AddressSpace* dma = qp.dma ? qp.dma : dma_;
      SimTime delay = done > sim_->now() ? done - sim_->now() : 0;
      sim_->ScheduleAfter(delay, [this, qid, cmd, store_off, bytes, dma] {
        NvmeStatus status = nvme::kStatusSuccess;
        std::vector<nvme::PrpSegment> segs;
        Status st = nvme::WalkPrps(*dma, cmd, bytes, &segs);
        if (!st.ok()) {
          status = nvme::MakeStatus(nvme::kSctGeneric,
                                    nvme::kScDataTransferError);
        } else if (cmd.opcode == nvme::kCmdWrite) {
          u64 off2 = store_off;
          for (const auto& s : segs) {
            u8* p = dma->Translate(s.gpa, s.len);
            if (!p || !store_.Write(off2, p, s.len).ok()) {
              status = nvme::MakeStatus(nvme::kSctGeneric,
                                        nvme::kScDataTransferError);
              break;
            }
            off2 += s.len;
          }
          if (nvme::StatusOk(status)) {
            bytes_written_ += bytes;
            if (m_bytes_written_) m_bytes_written_->Inc(bytes);
          }
        } else if (cmd.opcode == nvme::kCmdRead) {
          u64 off2 = store_off;
          std::vector<u8> tmp;
          for (const auto& s : segs) {
            u8* p = dma->Translate(s.gpa, s.len);
            tmp.resize(s.len);
            if (!p || !store_.Read(off2, tmp.data(), s.len).ok()) {
              status = nvme::MakeStatus(nvme::kSctGeneric,
                                        nvme::kScDataTransferError);
              break;
            }
            std::memcpy(p, tmp.data(), s.len);
            off2 += s.len;
          }
          if (nvme::StatusOk(status)) {
            bytes_read_ += bytes;
            if (m_bytes_read_) m_bytes_read_->Inc(bytes);
          }
        } else {  // Compare
          u64 off2 = store_off;
          std::vector<u8> media, host;
          for (const auto& s : segs) {
            u8* p = dma->Translate(s.gpa, s.len);
            media.resize(s.len);
            if (!p || !store_.Read(off2, media.data(), s.len).ok()) {
              status = nvme::MakeStatus(nvme::kSctGeneric,
                                        nvme::kScDataTransferError);
              break;
            }
            if (std::memcmp(media.data(), p, s.len) != 0) {
              status = nvme::MakeStatus(nvme::kSctMediaError,
                                        nvme::kScCompareFailure);
              break;
            }
            off2 += s.len;
          }
        }
        PostCqe(qid, cmd, status, 0);
      });
      return;
    }
    case nvme::kCmdFlush: {
      CompleteAt(latency_.CompleteFlush(sim_->now()), qp.qid, sqe,
                 nvme::kStatusSuccess);
      return;
    }
    case nvme::kCmdWriteZeroes: {
      u32 nblocks = sqe.block_count();
      auto off = CheckRange(sqe.nsid, sqe.slba(), nblocks);
      if (!off.ok()) {
        CompleteAt(
            latency_.CompleteNoData(sim_->now()), qp.qid, sqe,
            nvme::MakeStatus(nvme::kSctGeneric, nvme::kScLbaOutOfRange));
        return;
      }
      store_.Trim(*off, static_cast<u64>(nblocks) * cfg_.lba_size);
      CompleteAt(latency_.CompleteNoData(sim_->now()), qp.qid, sqe,
                 nvme::kStatusSuccess);
      return;
    }
    case nvme::kCmdDsm: {
      // Dataset Management: deallocate ranges when AD (cdw11 bit 2) set.
      u32 nranges = (sqe.cdw10 & 0xFF) + 1;
      bool deallocate = (sqe.cdw11 & 0x4) != 0;
      struct DsmRange {
        u32 cattr;
        u32 nlb;
        u64 slba;
      };
      std::vector<DsmRange> ranges(nranges);
      mem::AddressSpace* dma = qp.dma ? qp.dma : dma_;
      Status st = nvme::PrpRead(*dma, sqe.prp1, sqe.prp2,
                                nranges * sizeof(DsmRange), ranges.data());
      if (!st.ok()) {
        CompleteAt(
            latency_.CompleteNoData(sim_->now()), qp.qid, sqe,
            nvme::MakeStatus(nvme::kSctGeneric, nvme::kScDataTransferError));
        return;
      }
      NvmeStatus status = nvme::kStatusSuccess;
      if (deallocate) {
        for (const auto& r : ranges) {
          auto off = CheckRange(sqe.nsid, r.slba, r.nlb);
          if (!off.ok()) {
            status =
                nvme::MakeStatus(nvme::kSctGeneric, nvme::kScLbaOutOfRange);
            break;
          }
          store_.Trim(*off, static_cast<u64>(r.nlb) * cfg_.lba_size);
        }
      }
      CompleteAt(latency_.CompleteNoData(sim_->now()), qp.qid, sqe, status);
      return;
    }
    case nvme::kCmdKvStore:
    case nvme::kCmdKvRetrieve:
    case nvme::kCmdKvDelete:
    case nvme::kCmdKvExist:
      ExecuteKv(qp, sqe);
      return;
    default: {
      if (sqe.opcode >= nvme::kCmdVendorStart) {
        // Vendor-specific commands succeed as no-ops: NVMetro's
        // compatibility criterion lets classifiers pass them straight to
        // hardware (paper §III-B); the simulated drive accepts them.
        CompleteAt(latency_.CompleteNoData(sim_->now()), qp.qid, sqe,
                   nvme::kStatusSuccess, /*result=*/0x56454E44u);  // "VEND"
        return;
      }
      CompleteAt(latency_.CompleteNoData(sim_->now()), qp.qid, sqe,
                 nvme::MakeStatus(nvme::kSctGeneric, nvme::kScInvalidOpcode));
      return;
    }
  }
}

void SimulatedController::ExecuteKv(QueuePair& qp, const nvme::Sqe& sqe) {
  if (cfg_.kv_nsid == 0 || sqe.nsid != cfg_.kv_nsid) {
    CompleteAt(latency_.CompleteNoData(sim_->now()), qp.qid, sqe,
               nvme::MakeStatus(nvme::kSctGeneric, nvme::kScInvalidOpcode));
    return;
  }
  nvme::KvKey k = nvme::KvKeyOf(sqe);
  std::string key(reinterpret_cast<const char*>(k.bytes), sizeof(k.bytes));
  switch (sqe.opcode) {
    case nvme::kCmdKvStore: {
      u32 len = sqe.cdw10;
      if (len == 0 || len > cfg_.kv_max_value) {
        CompleteAt(latency_.CompleteNoData(sim_->now()), qp.qid, sqe,
                   nvme::MakeStatus(nvme::kSctCommandSpecific,
                                    nvme::kScKvValueTooLarge));
        return;
      }
      std::vector<u8> value(len);
      mem::AddressSpace* dma = qp.dma ? qp.dma : dma_;
      if (!nvme::PrpRead(*dma, sqe.prp1, sqe.prp2, len, value.data()).ok()) {
        CompleteAt(
            latency_.CompleteNoData(sim_->now()), qp.qid, sqe,
            nvme::MakeStatus(nvme::kSctGeneric, nvme::kScDataTransferError));
        return;
      }
      SimTime done = latency_.Complete(sim_->now(), /*write=*/true, len);
      kv_store_[key] = std::move(value);
      bytes_written_ += len;
      if (m_bytes_written_) m_bytes_written_->Inc(len);
      CompleteAt(done, qp.qid, sqe, nvme::kStatusSuccess);
      return;
    }
    case nvme::kCmdKvRetrieve: {
      auto it = kv_store_.find(key);
      if (it == kv_store_.end()) {
        CompleteAt(latency_.CompleteNoData(sim_->now()), qp.qid, sqe,
                   nvme::MakeStatus(nvme::kSctCommandSpecific,
                                    nvme::kScKvKeyNotFound));
        return;
      }
      u32 buf_len = sqe.cdw11;
      if (it->second.size() > buf_len) {
        CompleteAt(latency_.CompleteNoData(sim_->now()), qp.qid, sqe,
                   nvme::MakeStatus(nvme::kSctCommandSpecific,
                                    nvme::kScKvValueTooLarge),
                   static_cast<u32>(it->second.size()));
        return;
      }
      mem::AddressSpace* dma = qp.dma ? qp.dma : dma_;
      if (!nvme::PrpWrite(*dma, sqe.prp1, sqe.prp2, it->second.size(),
                          it->second.data())
               .ok()) {
        CompleteAt(
            latency_.CompleteNoData(sim_->now()), qp.qid, sqe,
            nvme::MakeStatus(nvme::kSctGeneric, nvme::kScDataTransferError));
        return;
      }
      SimTime done = latency_.Complete(sim_->now(), /*write=*/false,
                                       it->second.size());
      bytes_read_ += it->second.size();
      if (m_bytes_read_) m_bytes_read_->Inc(it->second.size());
      CompleteAt(done, qp.qid, sqe, nvme::kStatusSuccess,
                 static_cast<u32>(it->second.size()));
      return;
    }
    case nvme::kCmdKvDelete: {
      bool existed = kv_store_.erase(key) > 0;
      CompleteAt(latency_.CompleteNoData(sim_->now()), qp.qid, sqe,
                 existed ? nvme::kStatusSuccess
                         : nvme::MakeStatus(nvme::kSctCommandSpecific,
                                            nvme::kScKvKeyNotFound));
      return;
    }
    case nvme::kCmdKvExist:
    default: {
      bool exists = kv_store_.count(key) > 0;
      CompleteAt(latency_.CompleteNoData(sim_->now()), qp.qid, sqe,
                 exists ? nvme::kStatusSuccess
                        : nvme::MakeStatus(nvme::kSctCommandSpecific,
                                           nvme::kScKvKeyNotFound));
      return;
    }
  }
}

nvme::IdentifyController SimulatedController::IdentifyCtrl() const {
  nvme::IdentifyController id;
  id.vid = 0x144d;  // Samsung, as the paper's testbed drive
  id.ssvid = 0x144d;
  id.SetStrings(cfg_.serial, cfg_.model, "SIM1.0");
  // MDTS: 2^mdts pages of 4 KiB.
  u8 mdts = 0;
  for (u64 v = cfg_.max_transfer / mem::kPageSize; v > 1; v >>= 1) mdts++;
  id.mdts = mdts;
  id.nn = cfg_.num_namespaces;
  id.maxcmd = 0;
  id.ver = 0x00010400;  // NVMe 1.4
  return id;
}

nvme::IdentifyNamespace SimulatedController::IdentifyNs(u32 nsid) const {
  nvme::IdentifyNamespace ns;
  if (nsid == 0 || nsid > cfg_.num_namespaces) return ns;
  ns.nsze = ns_block_count(nsid);
  ns.ncap = ns.nsze;
  ns.nuse = ns.nsze;
  ns.nlbaf = 0;
  ns.flbas = 0;
  u8 lbads = 0;
  for (u32 v = cfg_.lba_size; v > 1; v >>= 1) lbads++;
  ns.lbaf[0] = nvme::LbaFormat{0, lbads, 0};
  return ns;
}

void SimulatedController::ExecuteAdmin(QueuePair& qp, const Sqe& sqe) {
  (void)qp;  // admin commands are queue-agnostic; kept for symmetry
  SimTime done = latency_.CompleteNoData(sim_->now());
  switch (sqe.opcode) {
    case nvme::kAdminIdentify: {
      u8 cns = sqe.cdw10 & 0xFF;
      NvmeStatus status = nvme::kStatusSuccess;
      if (cns == nvme::kCnsController) {
        auto id = IdentifyCtrl();
        if (!nvme::PrpWrite(*dma_, sqe.prp1, sqe.prp2, sizeof(id), &id).ok())
          status = nvme::MakeStatus(nvme::kSctGeneric,
                                    nvme::kScDataTransferError);
      } else if (cns == nvme::kCnsNamespace) {
        auto ns = IdentifyNs(sqe.nsid);
        if (!nvme::PrpWrite(*dma_, sqe.prp1, sqe.prp2, sizeof(ns), &ns).ok())
          status = nvme::MakeStatus(nvme::kSctGeneric,
                                    nvme::kScDataTransferError);
      } else if (cns == nvme::kCnsActiveNsList) {
        std::vector<u32> list(1024, 0);
        for (u32 i = 0; i < cfg_.num_namespaces && i < 1024; i++)
          list[i] = i + 1;
        if (!nvme::PrpWrite(*dma_, sqe.prp1, sqe.prp2, 4096, list.data())
                 .ok())
          status = nvme::MakeStatus(nvme::kSctGeneric,
                                    nvme::kScDataTransferError);
      } else {
        status = nvme::MakeStatus(nvme::kSctGeneric, nvme::kScInvalidField);
      }
      CompleteAt(done, 0, sqe, status);
      return;
    }
    case nvme::kAdminCreateIoCq:
    case nvme::kAdminCreateIoSq: {
      // Both queues of a pair must be created; we accept the spec flow
      // (CQ first, then SQ referencing it) and bind them by qid: the
      // driver-facing contract in this simulation is qid(SQ) == qid(CQ).
      u16 qid = sqe.cdw10 & 0xFFFF;
      u32 qsize = ((sqe.cdw10 >> 16) & 0xFFFF) + 1;
      NvmeStatus status = nvme::kStatusSuccess;
      if (qid == 0 || qsize < 2) {
        status = nvme::MakeStatus(nvme::kSctCommandSpecific,
                                  nvme::kScInvalidQueueSize);
      } else if (sqe.opcode == nvme::kAdminCreateIoCq) {
        pending_cq_[qid] = {sqe.prp1, qsize};
      } else {
        auto it = pending_cq_.find(qid);
        if (it == pending_cq_.end() || it->second.second != qsize) {
          status = nvme::MakeStatus(nvme::kSctCommandSpecific,
                                    nvme::kScInvalidQueueId);
        } else {
          u8* sq_base = dma_->Translate(sqe.prp1, qsize * sizeof(Sqe));
          u8* cq_base =
              dma_->Translate(it->second.first, qsize * sizeof(Cqe));
          if (!sq_base || !cq_base) {
            status = nvme::MakeStatus(nvme::kSctGeneric,
                                      nvme::kScInvalidField);
          } else {
            while (queues_.size() <= qid) queues_.push_back(nullptr);
            if (queues_[qid] && queues_[qid]->active) {
              status = nvme::MakeStatus(nvme::kSctCommandSpecific,
                                        nvme::kScInvalidQueueId);
            } else {
              queues_[qid] =
                  std::make_unique<QueuePair>(qid, sq_base, cq_base, qsize);
            }
          }
        }
      }
      CompleteAt(done, 0, sqe, status);
      return;
    }
    case nvme::kAdminDeleteIoSq:
    case nvme::kAdminDeleteIoCq: {
      u16 qid = sqe.cdw10 & 0xFFFF;
      NvmeStatus status = nvme::kStatusSuccess;
      if (qid == 0 || qid >= queues_.size() || !queues_[qid] ||
          !queues_[qid]->active) {
        status = nvme::MakeStatus(nvme::kSctCommandSpecific,
                                  nvme::kScInvalidQueueId);
      } else if (sqe.opcode == nvme::kAdminDeleteIoSq) {
        queues_[qid]->active = false;
      }
      CompleteAt(done, 0, sqe, status);
      return;
    }
    case nvme::kAdminSetFeatures:
    case nvme::kAdminGetFeatures: {
      u8 fid = sqe.cdw10 & 0xFF;
      if (fid == nvme::kFeatNumQueues) {
        u32 n = cfg_.max_io_queues - 1;
        CompleteAt(done, 0, sqe, nvme::kStatusSuccess, (n << 16) | n);
      } else {
        CompleteAt(done, 0, sqe,
                   nvme::MakeStatus(nvme::kSctGeneric, nvme::kScInvalidField));
      }
      return;
    }
    default:
      CompleteAt(done, 0, sqe,
                 nvme::MakeStatus(nvme::kSctGeneric, nvme::kScInvalidOpcode));
      return;
  }
}

void SimulatedController::InjectError(u32 nsid, NvmeStatus status,
                                      u32 count) {
  injections_.push_back({nsid, status, count});
}

}  // namespace nvmetro::ssd

// Simulated NVMe controller ("the physical drive").
//
// Implements the NVMe protocol over simulated time: SQEs are fetched from
// submission rings after a doorbell write, executed against a sparse
// BackingStore with timing from LatencyModel, and completed by posting
// CQEs with phase tags plus an optional per-CQ notification callback
// (modeling MSI-X interrupts or giving pollers an edge to observe).
//
// Both driver styles are supported:
//  - the admin queue path: IDENTIFY, CREATE/DELETE IO SQ/CQ, GET/SET
//    FEATURES are parsed from real admin SQEs (used by the passthrough
//    guest driver and protocol tests);
//  - a host-driver convenience API that creates queue pairs directly
//    (what a booted kernel driver state amounts to), used by the NVMetro
//    router for its HSQ/HCQ pairs (paper §III-C).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "mem/address_space.h"
#include "nvme/defs.h"
#include "nvme/identify.h"
#include "nvme/queue.h"
#include "sim/simulator.h"
#include "ssd/backing_store.h"
#include "ssd/latency_model.h"

namespace nvmetro::obs {
class Counter;
class Gauge;
class Observability;
}  // namespace nvmetro::obs

namespace nvmetro::fault {
class FaultInjector;
}  // namespace nvmetro::fault

namespace nvmetro::ssd {

struct ControllerConfig {
  u64 capacity = 4 * GiB;
  u32 lba_size = 512;
  u32 num_namespaces = 1;
  /// Namespace that speaks the KV command set (0 = none). KV commands on
  /// other namespaces fail with InvalidOpcode.
  u32 kv_nsid = 0;
  /// Largest value a KV Store may carry.
  u32 kv_max_value = 1 * MiB;
  u32 max_io_queues = 64;
  /// Max data transfer size in bytes (IDENTIFY.MDTS).
  u64 max_transfer = 512 * KiB;
  /// PCIe doorbell-write to command-fetch delay.
  SimTime doorbell_delay = 500 * kNs;
  LatencyParams latency{};
  u64 seed = 42;
  const char* serial = "NVMETRO-SIM-0001";
  const char* model = "NVMetro Simulated 970EVOPlus";
  /// Optional metrics sink: "ssd.commands", "ssd.errors", "ssd.injected",
  /// "ssd.bytes_read", "ssd.bytes_written".
  obs::Observability* obs = nullptr;
};

class SimulatedController {
 public:
  /// `dma` is the address space the controller DMAs through (guest memory
  /// for passthrough, an IommuSpace when host buffers are involved).
  SimulatedController(sim::Simulator* sim, mem::AddressSpace* dma,
                      ControllerConfig cfg);

  // --- Queue management (host-driver API) ---------------------------------

  /// Called whenever a CQE is posted to the queue's CQ.
  using CqNotify = std::function<void()>;

  /// Creates an I/O queue pair with controller-owned ring memory.
  /// Returns the queue id (>= 1; 0 is the admin queue).
  ///
  /// `dma` optionally overrides the DMA address space used to resolve
  /// PRPs of commands submitted on this queue — the vIOMMU view of a
  /// mediated queue pair: when the NVMetro router (or a passthrough
  /// mapping) gives a VM its own queues, the PRPs they carry are
  /// guest-physical addresses resolved against that VM's memory, exactly
  /// as an IOMMU domain (or MDev's PRP shadow translation) would.
  Result<u16> CreateIoQueuePair(u32 entries, CqNotify notify,
                                mem::AddressSpace* dma = nullptr);

  /// Creates an I/O queue pair whose rings live in caller-provided memory
  /// (e.g. guest pages for device passthrough). The memory must be zeroed
  /// and outlive the queue.
  Result<u16> CreateIoQueuePairAt(u8* sq_base, u8* cq_base, u32 entries,
                                  CqNotify notify,
                                  mem::AddressSpace* dma = nullptr);

  /// Registers a queue pair over ring objects owned by the caller (device
  /// passthrough: the guest driver's rings ARE the device rings). The
  /// rings must outlive the queue.
  Result<u16> AttachSharedQueuePair(nvme::SqRing* sq, nvme::CqRing* cq,
                                    CqNotify notify,
                                    mem::AddressSpace* dma = nullptr);

  Status DeleteIoQueuePair(u16 qid);

  /// Ring accessors; nullptr when the qid is not active.
  nvme::SqRing* sq(u16 qid);
  nvme::CqRing* cq(u16 qid);

  /// Tail doorbell: publishes the SQ tail and starts fetching. This is
  /// the MMIO write a driver performs after Push()ing entries.
  void RingSqDoorbell(u16 qid);

  /// Head doorbell: publishes the CQ head, releasing completion slots.
  void RingCqDoorbell(u16 qid);

  /// Convenience: Push + RingSqDoorbell. Returns false when the SQ is
  /// full.
  bool Submit(u16 qid, const nvme::Sqe& sqe);

  /// Push without ringing: lets a driver batch several commands into the
  /// SQ and publish the tail doorbell once (RingSqDoorbell). The fault
  /// injector's submit gate applies exactly as in Submit().
  bool Push(u16 qid, const nvme::Sqe& sqe);

  // --- Admin queue ---------------------------------------------------------

  nvme::SqRing* admin_sq() { return queues_[0]->sq; }
  nvme::CqRing* admin_cq() { return queues_[0]->cq; }
  void RingAdminSqDoorbell() { RingSqDoorbell(0); }
  void SetAdminCqNotify(CqNotify notify);

  // --- Introspection -------------------------------------------------------

  const ControllerConfig& config() const { return cfg_; }
  u32 lba_size() const { return cfg_.lba_size; }
  u32 num_namespaces() const { return cfg_.num_namespaces; }
  /// Logical blocks in one namespace.
  u64 ns_block_count(u32 nsid) const;
  /// Populated identify structures (also served via the admin queue).
  nvme::IdentifyController IdentifyCtrl() const;
  nvme::IdentifyNamespace IdentifyNs(u32 nsid) const;

  BackingStore& store() { return store_; }
  const BackingStore& store() const { return store_; }

  u64 commands_completed() const { return commands_completed_; }
  /// Keys currently stored in the KV namespace.
  usize kv_entry_count() const { return kv_store_.size(); }
  u64 data_bytes_read() const { return bytes_read_; }
  u64 data_bytes_written() const { return bytes_written_; }

  // --- Failure injection ----------------------------------------------------

  /// The next `count` data commands on `nsid` complete with `status`
  /// (media untouched). Used to exercise the classifier error path
  /// (paper Listing 1, line 8).
  void InjectError(u32 nsid, nvme::NvmeStatus status, u32 count);

  /// Attaches a fault switchboard: per-command stall/delayed-error
  /// queries in ExecuteIo plus the SQ-full gate in Submit. Pass nullptr
  /// to detach. The injector must outlive the controller.
  void SetFaultInjector(fault::FaultInjector* injector) {
    fault_ = injector;
  }

 private:
  struct QueuePair {
    u16 qid;
    std::vector<u8> sq_mem, cq_mem;  // empty when externally backed
    std::unique_ptr<nvme::SqRing> owned_sq;
    std::unique_ptr<nvme::CqRing> owned_cq;
    nvme::SqRing* sq = nullptr;
    nvme::CqRing* cq = nullptr;
    CqNotify notify;
    mem::AddressSpace* dma = nullptr;  // per-queue DMA view (vIOMMU)
    bool active = true;
    /// Controller-owned ring memory.
    QueuePair(u16 id, u32 entries)
        : qid(id),
          sq_mem(static_cast<usize>(entries) * sizeof(nvme::Sqe), 0),
          cq_mem(static_cast<usize>(entries) * sizeof(nvme::Cqe), 0),
          owned_sq(new nvme::SqRing(sq_mem.data(), entries)),
          owned_cq(new nvme::CqRing(cq_mem.data(), entries)),
          sq(owned_sq.get()),
          cq(owned_cq.get()) {}
    /// Externally backed ring memory (guest pages).
    QueuePair(u16 id, u8* sqb, u8* cqb, u32 entries)
        : qid(id),
          owned_sq(new nvme::SqRing(sqb, entries)),
          owned_cq(new nvme::CqRing(cqb, entries)),
          sq(owned_sq.get()),
          cq(owned_cq.get()) {}
    /// Shared ring objects (passthrough).
    QueuePair(u16 id, nvme::SqRing* sqr, nvme::CqRing* cqr)
        : qid(id), sq(sqr), cq(cqr) {}
  };

  void ProcessSq(u16 qid);
  void ExecuteIo(QueuePair& qp, const nvme::Sqe& sqe);
  void ExecuteKv(QueuePair& qp, const nvme::Sqe& sqe);
  void ExecuteAdmin(QueuePair& qp, const nvme::Sqe& sqe);
  void CompleteAt(SimTime when, u16 qid, const nvme::Sqe& sqe,
                  nvme::NvmeStatus status, u32 result = 0);
  void PostCqe(u16 qid, const nvme::Sqe& sqe, nvme::NvmeStatus status,
               u32 result);
  /// Offset of a namespace's LBA 0 in the backing store.
  u64 NsBase(u32 nsid) const;
  /// Validates nsid + LBA range; returns the store byte offset.
  Result<u64> CheckRange(u32 nsid, u64 slba, u32 nblocks) const;

  sim::Simulator* sim_;
  mem::AddressSpace* dma_;
  ControllerConfig cfg_;
  BackingStore store_;
  LatencyModel latency_;
  std::vector<std::unique_ptr<QueuePair>> queues_;  // index == qid
  u64 commands_completed_ = 0;
  u64 bytes_read_ = 0;
  u64 bytes_written_ = 0;
  // Observability (null when cfg_.obs is null).
  obs::Counter* m_commands_ = nullptr;
  obs::Counter* m_errors_ = nullptr;
  obs::Counter* m_injected_ = nullptr;
  obs::Counter* m_bytes_read_ = nullptr;
  obs::Counter* m_bytes_written_ = nullptr;
  // "ssd.inflight": I/O commands accepted but not yet completed
  // (watermark = peak device queue depth).
  obs::Gauge* m_inflight_ = nullptr;
  struct Injection {
    u32 nsid;
    nvme::NvmeStatus status;
    u32 remaining;
  };
  std::vector<Injection> injections_;
  fault::FaultInjector* fault_ = nullptr;
  // KV command set storage (key bytes -> value).
  std::map<std::string, std::vector<u8>> kv_store_;
  // Admin-created CQs awaiting their SQ: qid -> (cq base addr, entries).
  std::map<u16, std::pair<u64, u32>> pending_cq_;
};

}  // namespace nvmetro::ssd

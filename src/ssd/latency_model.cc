#include "ssd/latency_model.h"

#include <algorithm>
#include <vector>

namespace nvmetro::ssd {

LatencyParams Samsung970EvoPlusParams() { return LatencyParams{}; }

LatencyModel::LatencyModel(LatencyParams params, u64 seed)
    : params_(params), rng_(seed), unit_free_(params.media_units, 0) {}

SimTime LatencyModel::MediaTime(bool is_write, u64 bytes) {
  SimTime base = is_write ? params_.write_media_ns : params_.read_media_ns;
  // Ops larger than one 16 KiB NAND page pay per extra page; the heavy
  // lifting of large ops is bus-bound, so this term is small.
  u64 pages = (bytes + 16 * KiB - 1) / (16 * KiB);
  if (pages > 1) base += (pages - 1) * params_.media_per_page_ns;
  // Jitter.
  double j = 1.0 + params_.jitter * (2.0 * rng_.NextDouble() - 1.0);
  auto t = static_cast<SimTime>(static_cast<double>(base) * j);
  // Tail events: read retries / GC interference.
  if (rng_.NextDouble() < params_.slow_op_rate) {
    t = static_cast<SimTime>(static_cast<double>(t) * params_.slow_op_factor);
  }
  return t;
}

SimTime LatencyModel::Complete(SimTime now, bool is_write, u64 bytes) {
  // Stage 1: firmware pipeline (serial).
  SimTime fw_start = std::max(now, fw_free_);
  fw_free_ = fw_start + params_.cmd_overhead_ns;

  // Stage 2: least-loaded media unit.
  auto it = std::min_element(unit_free_.begin(), unit_free_.end());
  SimTime media_start = std::max(fw_free_, *it);
  SimTime media_time = MediaTime(is_write, bytes);
  *it = media_start + media_time;

  // Stage 3: shared data bus.
  double ns_per_byte =
      is_write ? params_.write_bus_ns_per_byte : params_.read_bus_ns_per_byte;
  auto bus_time =
      params_.bus_setup_ns +
      static_cast<SimTime>(static_cast<double>(bytes) * ns_per_byte);
  SimTime bus_start = std::max(*it, bus_free_);
  // Writes stream over the bus before media commit in reality; modeling
  // both orders gives the same steady-state throughput, so we keep one.
  bus_free_ = bus_start + bus_time;
  return bus_free_;
}

SimTime LatencyModel::CompleteFlush(SimTime now) {
  SimTime start = std::max(now, fw_free_);
  fw_free_ = start + params_.cmd_overhead_ns;
  return fw_free_ + params_.flush_ns;
}

SimTime LatencyModel::CompleteNoData(SimTime now) {
  SimTime start = std::max(now, fw_free_);
  fw_free_ = start + params_.cmd_overhead_ns;
  return fw_free_ + 5 * kUs;
}

}  // namespace nvmetro::ssd

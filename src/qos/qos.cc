#include "qos/qos.h"

#include <cstdio>

#include "obs/obs.h"
#include "obs/slo.h"

namespace nvmetro::qos {

namespace {
constexpr u64 kNsPerSec = 1'000'000'000;
}  // namespace

const char* TenantClassName(TenantClass cls) {
  switch (cls) {
    case TenantClass::kLatencyCritical: return "lc";
    case TenantClass::kBestEffort: return "be";
  }
  return "?";
}

QosScheduler::QosScheduler(QosConfig cfg, obs::Observability* obs)
    : cfg_(cfg), obs_(obs) {
  leftover_.rate = cfg_.device_tokens_per_sec;
  leftover_.depth = DepthFor(leftover_.rate, cfg_.bucket_depth_ns);
  leftover_.tokens = leftover_.depth;
  initial_tokens_ = leftover_.depth;
  if (obs_) {
    obs::MetricsRegistry& m = obs_->metrics();
    m_admitted_ = m.GetCounter("qos.admitted");
    m_deferred_ = m.GetCounter("qos.deferred");
    m_shed_ = m.GetCounter("qos.shed");
    m_tokens_ = m.GetCounter("qos.tokens.granted");
  }
}

u64 QosScheduler::DepthFor(u64 rate, SimTime depth_ns) {
  if (rate == 0) return 0;
  unsigned __int128 d =
      static_cast<unsigned __int128>(rate) * static_cast<u64>(depth_ns) /
      kNsPerSec;
  u64 depth = static_cast<u64>(d);
  return depth ? depth : 1;
}

Status QosScheduler::RegisterTenant(const TenantConfig& cfg) {
  if (index_.count(cfg.tenant_id)) {
    return AlreadyExists("tenant " + std::to_string(cfg.tenant_id) +
                         " already registered");
  }
  // Registration rebuilds the leftover pool, which would corrupt the
  // token ledger mid-traffic: all tenants register before the first
  // admission.
  if (total_granted_ || total_refilled_) {
    return FailedPrecondition("tenants must register before traffic");
  }
  u64 reserved = cfg.cls == TenantClass::kLatencyCritical
                     ? cfg.reserved_tokens_per_sec
                     : 0;
  if (lc_reserved_sum_ + reserved > cfg_.device_tokens_per_sec) {
    return InvalidArgument("LC reservations oversubscribe the device rate");
  }
  Tenant t;
  t.cfg = cfg;
  t.bucket.rate = reserved;
  t.bucket.depth = DepthFor(reserved, cfg_.bucket_depth_ns);
  t.bucket.tokens = t.bucket.depth;
  lc_reserved_sum_ += reserved;
  // Leftover pool = device rate minus every LC reservation, rebuilt full.
  leftover_.rate = cfg_.device_tokens_per_sec - lc_reserved_sum_;
  leftover_.depth = DepthFor(leftover_.rate, cfg_.bucket_depth_ns);
  leftover_.tokens = leftover_.depth;
  leftover_.carry = 0;
  if (obs_) {
    obs::MetricsRegistry& m = obs_->metrics();
    std::string base = "qos.tenant" + std::to_string(cfg.tenant_id);
    t.m_admitted = m.GetCounter(base + ".admitted");
    t.m_deferred = m.GetCounter(base + ".deferred");
    t.m_shed = m.GetCounter(base + ".shed");
    t.m_tokens = m.GetCounter(base + ".tokens");
    t.m_latency = m.GetHistogram(base + ".latency_ns");
    t.m_wait = m.GetHistogram(base + ".wait_ns");
  }
  index_.emplace(cfg.tenant_id, static_cast<u32>(tenants_.size()));
  tenants_.push_back(t);
  initial_tokens_ = leftover_.depth;
  for (const Tenant& tt : tenants_) initial_tokens_ += tt.bucket.depth;
  return OkStatus();
}

bool QosScheduler::HasTenant(u32 tenant_id) const {
  return index_.count(tenant_id) != 0;
}

QosScheduler::Tenant* QosScheduler::Find(u32 tenant_id) {
  auto it = index_.find(tenant_id);
  return it == index_.end() ? nullptr : &tenants_[it->second];
}

const QosScheduler::Tenant* QosScheduler::Find(u32 tenant_id) const {
  auto it = index_.find(tenant_id);
  return it == index_.end() ? nullptr : &tenants_[it->second];
}

const TenantConfig& QosScheduler::tenant_config(u32 tenant_id) const {
  static const TenantConfig kEmpty{};
  const Tenant* t = Find(tenant_id);
  return t ? t->cfg : kEmpty;
}

void QosScheduler::RefillBucket(Bucket* b, SimTime now) {
  if (now <= b->last) return;
  if (b->rate == 0) {
    b->last = now;
    return;
  }
  unsigned __int128 acc =
      static_cast<unsigned __int128>(b->rate) * (now - b->last) + b->carry;
  u64 add = static_cast<u64>(acc / kNsPerSec);
  b->carry = static_cast<u64>(acc % kNsPerSec);
  b->last = now;
  u64 room = b->depth - b->tokens;
  if (add > room) add = room;  // overflow spills; the carry stays exact
  b->tokens += add;
  b->refilled += add;
  total_refilled_ += add;
}

void QosScheduler::AdvanceTo(SimTime now) {
  for (Tenant& t : tenants_) RefillBucket(&t.bucket, now);
  RefillBucket(&leftover_, now);
}

AdmitResult QosScheduler::Admit(u32 tenant_id, u32 cost, SimTime now) {
  Tenant* t = Find(tenant_id);
  if (!t || cost == 0) return {};  // unregistered tenants are not policed
  RefillBucket(&t->bucket, now);
  RefillBucket(&leftover_, now);
  bool lc = t->cfg.cls == TenantClass::kLatencyCritical;
  u64 own = lc ? t->bucket.tokens : 0;
  // Anti-starvation: a BE admission leaves the oldest *other* BE parked
  // head's cost in the pool, so that waiter's retry timer finds tokens.
  u64 reserve = 0;
  if (!lc && oldest_head_slot_ >= 0) {
    const Tenant& o = tenants_[static_cast<usize>(oldest_head_slot_)];
    if (o.cfg.tenant_id != tenant_id) reserve = o.parked_head_cost;
  }
  u64 usable = leftover_.tokens > reserve ? leftover_.tokens - reserve : 0;
  u64 avail = own + usable;
  if (avail >= cost) {
    // Reservation first, leftover for the remainder (BE: own == 0).
    u64 from_own = own < cost ? own : cost;
    t->bucket.tokens -= from_own;
    leftover_.tokens -= cost - from_own;
    t->granted += cost;
    total_granted_ += cost;
    t->admits++;
    if (t->m_tokens) t->m_tokens->Inc(cost);
    if (t->m_admitted) t->m_admitted->Inc();
    if (m_tokens_) m_tokens_->Inc(cost);
    if (m_admitted_) m_admitted_->Inc();
    consecutive_sheds_ = 0;  // an admission breaks any shed run
    return {};
  }
  u64 rate = leftover_.rate + (lc ? t->bucket.rate : 0);
  AdmitResult r;
  r.action = AdmitResult::Action::kDefer;
  if (rate == 0) {
    r.retry_at = now + cfg_.zero_rate_poll_ns;
    return r;
  }
  u64 deficit = cost - avail;
  unsigned __int128 wait =
      (static_cast<unsigned __int128>(deficit) * kNsPerSec + rate - 1) / rate;
  SimTime wait_ns = static_cast<SimTime>(wait);
  if (wait_ns < cfg_.min_backoff_ns) wait_ns = cfg_.min_backoff_ns;
  r.retry_at = now + wait_ns;
  return r;
}

void QosScheduler::NoteDeferred(u32 tenant_id) {
  Tenant* t = Find(tenant_id);
  if (!t) return;
  t->deferrals++;
  if (t->m_deferred) t->m_deferred->Inc();
  if (m_deferred_) m_deferred_->Inc();
}

void QosScheduler::NoteShed(u32 tenant_id) {
  Tenant* t = Find(tenant_id);
  if (!t) return;
  t->sheds++;
  if (t->m_shed) t->m_shed->Inc();
  if (m_shed_) m_shed_->Inc();
  consecutive_sheds_++;
  if (ftrig_ && consecutive_sheds_ == shed_burst_) {
    // Exactly at the threshold crossing: the run continues to count but
    // fires once per storm (an admission resets it). The fire time is
    // the last refill edge — NoteShed always follows an Admit at `now`.
    ftrig_->Fire(obs::FlightTrigger::kQosShedStorm, leftover_.last,
                 "tenant=" + std::to_string(tenant_id) +
                     " burst=" + std::to_string(consecutive_sheds_));
  }
}

void QosScheduler::ArmFlightTriggers(obs::FlightTriggers* ftrig,
                                     u32 shed_burst) {
  ftrig_ = ftrig;
  shed_burst_ = shed_burst ? shed_burst : 1;
  consecutive_sheds_ = 0;
}

void QosScheduler::SetParkedHead(u32 tenant_id, u32 cost, SimTime parked_at) {
  Tenant* t = Find(tenant_id);
  if (!t || t->cfg.cls != TenantClass::kBestEffort) return;  // BE-only policy
  t->parked_head_cost = cost;
  t->parked_head_at = cost ? parked_at : 0;
  RecomputeOldestHead();
}

void QosScheduler::RecomputeOldestHead() {
  oldest_head_slot_ = -1;
  for (usize i = 0; i < tenants_.size(); ++i) {
    const Tenant& t = tenants_[i];
    if (!t.parked_head_cost) continue;
    if (oldest_head_slot_ < 0 ||
        t.parked_head_at <
            tenants_[static_cast<usize>(oldest_head_slot_)].parked_head_at) {
      oldest_head_slot_ = static_cast<i32>(i);
    }
  }
}

void QosScheduler::NoteWait(u32 tenant_id, SimTime wait_ns) {
  Tenant* t = Find(tenant_id);
  if (t && t->m_wait) t->m_wait->Record(wait_ns);
}

void QosScheduler::RecordLatency(u32 tenant_id, u64 e2e_ns) {
  Tenant* t = Find(tenant_id);
  if (t && t->m_latency) t->m_latency->Record(e2e_ns);
}

void QosScheduler::ArmSloTargets(obs::SloWatchdog* slo,
                                 double quantile) const {
  for (const Tenant& t : tenants_) {
    if (!t.cfg.slo_latency_ns) continue;
    std::string base = "qos.tenant" + std::to_string(t.cfg.tenant_id);
    slo->AddLatencyTarget(base, base + ".latency_ns", quantile,
                          t.cfg.slo_latency_ns);
  }
}

u32 QosScheduler::max_deferred(u32 tenant_id) const {
  const Tenant* t = Find(tenant_id);
  return t ? t->cfg.max_deferred : 0;
}

u64 QosScheduler::tokens(u32 tenant_id) const {
  const Tenant* t = Find(tenant_id);
  return t ? t->bucket.tokens : 0;
}

u64 QosScheduler::bucket_depth(u32 tenant_id) const {
  const Tenant* t = Find(tenant_id);
  return t ? t->bucket.depth : 0;
}

u64 QosScheduler::granted(u32 tenant_id) const {
  const Tenant* t = Find(tenant_id);
  return t ? t->granted : 0;
}

u64 QosScheduler::admitted(u32 tenant_id) const {
  const Tenant* t = Find(tenant_id);
  return t ? t->admits : 0;
}

u64 QosScheduler::deferrals(u32 tenant_id) const {
  const Tenant* t = Find(tenant_id);
  return t ? t->deferrals : 0;
}

u64 QosScheduler::sheds(u32 tenant_id) const {
  const Tenant* t = Find(tenant_id);
  return t ? t->sheds : 0;
}

bool QosScheduler::CheckConservation(std::string* error) const {
  auto fail = [error](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  u64 buffered = leftover_.tokens;
  u64 per_tenant_granted = 0;
  if (leftover_.tokens > leftover_.depth) {
    return fail("leftover bucket above depth");
  }
  if (leftover_.carry >= kNsPerSec) return fail("leftover carry >= 1s");
  for (const Tenant& t : tenants_) {
    if (t.bucket.tokens > t.bucket.depth) {
      return fail("tenant " + std::to_string(t.cfg.tenant_id) +
                  " bucket above depth");
    }
    if (t.bucket.carry >= kNsPerSec) {
      return fail("tenant " + std::to_string(t.cfg.tenant_id) +
                  " carry >= 1s");
    }
    buffered += t.bucket.tokens;
    per_tenant_granted += t.granted;
  }
  if (per_tenant_granted != total_granted_) {
    return fail("per-tenant grants do not sum to the total");
  }
  if (initial_tokens_ + total_refilled_ != total_granted_ + buffered) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "ledger broken: initial %llu + refilled %llu != "
                  "granted %llu + buffered %llu",
                  static_cast<unsigned long long>(initial_tokens_),
                  static_cast<unsigned long long>(total_refilled_),
                  static_cast<unsigned long long>(total_granted_),
                  static_cast<unsigned long long>(buffered));
    return fail(buf);
  }
  return true;
}

}  // namespace nvmetro::qos

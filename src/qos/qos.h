// Multi-tenant QoS: per-tenant token-bucket rate control with admission
// at submit time (ReFlex-style, SNIPPETS.md Snippet 1).
//
// Tenancy model: every VM is a tenant, tagged either latency-critical
// (LC) or best-effort (BE). LC tenants reserve a token rate that is
// theirs alone; the device rate left after all reservations forms a
// single global leftover pool that every BE tenant draws from (and LC
// tenants may dip into once their reservation is exhausted). One token
// buys one 4 KiB page of I/O, so large commands cost proportionally
// more than small ones.
//
// The scheduler is passive and allocation-free on the admission path:
// the router asks `Admit(tenant, cost, now)` before classifying a
// popped command. An admitted command proceeds immediately; a deferred
// one is parked by the router (FIFO per tenant, bounded by
// `max_deferred`) until `retry_at`, and parked commands beyond the
// bound are shed — the guest sees a busy status and the shed is
// accounted per tenant. Token refill is exact under irregular tick
// spacing: a 128-bit accumulator carries the sub-nanosecond remainder
// so no rate is lost to rounding, which the property tests in
// tests/qos_test.cc pin as an exact conservation ledger
// (initial + refilled == granted + still-in-bucket, to the token).
//
// Per-tenant observability: counters qos.tenant<id>.{admitted,
// deferred,shed,tokens}, histograms qos.tenant<id>.{latency_ns,
// wait_ns}, registered once at RegisterTenant so 1000-tenant configs
// pay no per-IO registry lookups. ArmSloTargets() wires every tenant
// with a latency objective into the SloWatchdog (DESIGN.md §11).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace nvmetro::obs {
class Counter;
class FlightTriggers;
class Observability;
class SloWatchdog;
}  // namespace nvmetro::obs
namespace nvmetro {
class LatencyHistogram;
}

namespace nvmetro::qos {

enum class TenantClass : u8 {
  kLatencyCritical = 0,  // reserved token rate, may borrow leftover
  kBestEffort = 1,       // leftover pool only
};

const char* TenantClassName(TenantClass cls);

struct TenantConfig {
  u32 tenant_id = 0;  // by convention the VM id
  TenantClass cls = TenantClass::kBestEffort;
  /// LC only: tokens/second carved out of the device rate. Must leave
  /// the leftover pool non-negative across all LC tenants.
  u64 reserved_tokens_per_sec = 0;
  /// Commands parked awaiting tokens before the router starts shedding.
  u32 max_deferred = 64;
  /// Optional per-tenant latency SLO (0 = none): ArmSloTargets adds a
  /// p-quantile target on qos.tenant<id>.latency_ns.
  u64 slo_latency_ns = 0;
};

struct QosConfig {
  /// Arbitrated device rate in tokens/second (1 token = one 4 KiB page).
  u64 device_tokens_per_sec = 200'000;
  /// Burst allowance: each bucket holds this many nanoseconds' worth of
  /// its refill rate (bucket depth = rate * depth_ns / 1e9, min 1).
  SimTime bucket_depth_ns = 1'000'000;
  /// Floor on the defer backoff the scheduler hands back.
  SimTime min_backoff_ns = 2'000;
  /// Retry interval when a tenant's effective rate is zero (a BE tenant
  /// with an empty leftover pool): poll until tokens appear or the
  /// router's deferral bound sheds the queue.
  SimTime zero_rate_poll_ns = 100'000;
};

/// Verdict of one admission attempt. There is no kShed verdict: shedding
/// is the router's deferral-bound policy (max_deferred), accounted back
/// through NoteShed().
struct AdmitResult {
  enum class Action : u8 { kAdmit = 0, kDefer };
  Action action = Action::kAdmit;
  /// For kDefer: earliest absolute sim-time at which the deficit can be
  /// covered (>= now + min_backoff_ns).
  SimTime retry_at = 0;
};

class QosScheduler {
 public:
  explicit QosScheduler(QosConfig cfg, obs::Observability* obs = nullptr);
  QosScheduler(const QosScheduler&) = delete;
  QosScheduler& operator=(const QosScheduler&) = delete;

  /// Registers a tenant and its metrics. Fails on duplicate ids and on
  /// LC reservations that oversubscribe the device rate.
  Status RegisterTenant(const TenantConfig& cfg);

  bool HasTenant(u32 tenant_id) const;
  usize num_tenants() const { return tenants_.size(); }
  const TenantConfig& tenant_config(u32 tenant_id) const;

  /// Admission for one command costing `cost` tokens, at sim-time `now`.
  /// On kAdmit the tokens are consumed; on kDefer nothing is consumed
  /// and retry_at says when to ask again. O(1), allocation-free.
  AdmitResult Admit(u32 tenant_id, u32 cost, SimTime now);

  /// Refills every bucket to `now` without admitting anything (property
  /// tests tick the clock with this).
  void AdvanceTo(SimTime now);

  // Router accounting callbacks -------------------------------------------
  /// A command was parked (first deferral only, not per retry).
  void NoteDeferred(u32 tenant_id);
  /// A command was shed at the deferral bound.
  void NoteShed(u32 tenant_id);
  /// A parked command was finally admitted after `wait_ns`.
  void NoteWait(u32 tenant_id, SimTime wait_ns);
  /// Cross-tenant anti-starvation: the router reports the cost and park
  /// time of its oldest parked command (cost 0 = ring empty). A
  /// best-effort Admit reserves the *oldest other* BE parked head's cost
  /// out of the leftover pool, so a fresh arrival can no longer snatch
  /// newly refilled tokens ahead of a tenant that has been waiting on
  /// its retry timer — the starvation the deferral-ring audit test pins
  /// (tests/qos_ring_test.cc). Only the single oldest head is reserved:
  /// reserving every head could exceed the pool depth and deadlock the
  /// rings, while one head guarantees the oldest waiter always makes
  /// progress and therefore every waiter eventually becomes oldest.
  void SetParkedHead(u32 tenant_id, u32 cost, SimTime parked_at);
  /// Guest-visible completion latency of a successful command.
  void RecordLatency(u32 tenant_id, u64 e2e_ns);

  /// Adds a latency target on qos.tenant<id>.latency_ns for every tenant
  /// with a non-zero slo_latency_ns (target name "qos.tenant<id>").
  void ArmSloTargets(obs::SloWatchdog* slo, double quantile = 0.999) const;

  /// Wires the flight-recorder trigger framework: `shed_burst`
  /// consecutive sheds without an intervening admission fire the
  /// kQosShedStorm anomaly (a lone shed at the deferral bound is normal
  /// backpressure; a run of them means a tenant is drowning). Pass
  /// nullptr to detach.
  void ArmFlightTriggers(obs::FlightTriggers* ftrig, u32 shed_burst = 16);
  u32 consecutive_sheds() const { return consecutive_sheds_; }

  // Introspection (property tests + bench) --------------------------------
  u32 max_deferred(u32 tenant_id) const;
  /// Current reserved-bucket level (always 0 for BE tenants).
  u64 tokens(u32 tenant_id) const;
  u64 bucket_depth(u32 tenant_id) const;
  u64 leftover_tokens() const { return leftover_.tokens; }
  u64 leftover_depth() const { return leftover_.depth; }
  /// Leftover refill rate: device rate minus the sum of LC reservations.
  u64 leftover_rate() const { return leftover_.rate; }
  u64 granted(u32 tenant_id) const;
  u64 admitted(u32 tenant_id) const;
  u64 deferrals(u32 tenant_id) const;
  u64 sheds(u32 tenant_id) const;
  u64 total_granted() const { return total_granted_; }
  /// Post-clamp tokens ever added by refill (excludes the initial fill).
  u64 total_refilled() const { return total_refilled_; }
  /// Sum of initial bucket fills (every bucket starts full).
  u64 initial_tokens() const { return initial_tokens_; }

  /// Exact token ledger: initial + refilled == granted + still buffered,
  /// every bucket within its depth, per-tenant grants summing to the
  /// total. Returns false and describes the violation in `error`.
  bool CheckConservation(std::string* error) const;

 private:
  /// One token bucket with exact fractional-refill carry: refill adds
  /// floor((rate * dt + carry) / 1e9) tokens and keeps the remainder,
  /// so an irregular tick schedule grants exactly floor(rate * T / 1e9)
  /// tokens over any horizon T.
  struct Bucket {
    u64 rate = 0;   // tokens per second
    u64 depth = 0;  // burst capacity (bucket starts full)
    u64 tokens = 0;
    u64 carry = 0;  // sub-token remainder, in rate*ns units (< 1e9)
    SimTime last = 0;
    u64 refilled = 0;  // post-clamp tokens ever added
  };

  struct Tenant {
    TenantConfig cfg;
    Bucket bucket;  // LC reservation; rate 0 for BE
    u64 granted = 0;
    u64 admits = 0;
    u64 deferrals = 0;
    u64 sheds = 0;
    // Oldest parked command this tenant's router ring holds (0 = none).
    u32 parked_head_cost = 0;
    SimTime parked_head_at = 0;
    obs::Counter* m_admitted = nullptr;
    obs::Counter* m_deferred = nullptr;
    obs::Counter* m_shed = nullptr;
    obs::Counter* m_tokens = nullptr;
    LatencyHistogram* m_latency = nullptr;
    LatencyHistogram* m_wait = nullptr;
  };

  void RefillBucket(Bucket* b, SimTime now);
  Tenant* Find(u32 tenant_id);
  const Tenant* Find(u32 tenant_id) const;
  static u64 DepthFor(u64 rate, SimTime depth_ns);
  /// Re-derives the cached oldest BE parked head after a head change
  /// (Admit itself stays O(1) on the cached slot).
  void RecomputeOldestHead();

  QosConfig cfg_;
  obs::Observability* obs_;
  obs::FlightTriggers* ftrig_ = nullptr;
  u32 shed_burst_ = 16;
  u32 consecutive_sheds_ = 0;
  std::unordered_map<u32, u32> index_;  // tenant_id -> slot in tenants_
  std::vector<Tenant> tenants_;
  Bucket leftover_;
  /// Slot of the tenant holding the oldest BE parked head (-1 = none).
  i32 oldest_head_slot_ = -1;
  u64 lc_reserved_sum_ = 0;
  u64 total_granted_ = 0;
  u64 total_refilled_ = 0;
  u64 initial_tokens_ = 0;
  obs::Counter* m_admitted_ = nullptr;
  obs::Counter* m_deferred_ = nullptr;
  obs::Counter* m_shed_ = nullptr;
  obs::Counter* m_tokens_ = nullptr;
};

}  // namespace nvmetro::qos

// Guest-side NVMe driver and the virtual-controller backend interface.
//
// Any component that exposes a virtual NVMe controller to a VM — the
// NVMetro router (queue shadowing), a passthrough mapping of a physical
// controller, MDev-NVMe — implements VirtualNvmeBackend. The guest
// driver allocates its submission/completion rings in guest memory,
// registers them, submits commands with realistic guest-side CPU costs,
// and handles completion interrupts.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "nvme/defs.h"
#include "nvme/queue.h"
#include "sim/simulator.h"
#include "virt/vm.h"

namespace nvmetro::virt {

/// Host-side of a virtual NVMe controller, as seen by the guest driver.
class VirtualNvmeBackend {
 public:
  virtual ~VirtualNvmeBackend() = default;

  /// Guest registers an I/O queue pair whose rings live in guest memory
  /// (the ring objects are owned by the driver and shared with the
  /// backend, standing in for the shared ring pages).
  virtual Status AttachQueuePair(u16 qid, nvme::SqRing* sq, nvme::CqRing* cq,
                                 u64 sq_gpa, u64 cq_gpa) = 0;

  /// Guest SQ tail doorbell write. Returns the guest-side cost of the
  /// write: a plain MMIO store when the host is actively polling, a
  /// vm-exit when the write must trap (e.g. to wake a parked router or
  /// kick an interrupt-driven backend).
  virtual SimTime SqDoorbell(u16 qid) = 0;

  /// Guest CQ head doorbell write (after consuming completions).
  virtual void CqDoorbell(u16 qid) = 0;

  /// Registers the guest's interrupt callback for a queue's CQ.
  virtual void SetIrqHandler(u16 qid, std::function<void()> handler) = 0;

  /// Namespace capacity in bytes as seen by this VM.
  virtual u64 CapacityBytes() const = 0;
};

struct GuestNvmeParams {
  u32 queue_entries = 256;
  /// Guest CPU per submission (blk-mq + nvme driver prep).
  SimTime submit_cpu_ns = 700;
  /// Guest CPU for the doorbell MMIO write itself.
  SimTime doorbell_cpu_ns = 100;
  /// Guest CPU for interrupt entry/exit per delivered interrupt.
  SimTime irq_entry_ns = 1'600;
  /// Latency to wake a halted guest vCPU (IPI + VM entry); warm vCPUs
  /// take interrupts almost immediately.
  SimTime halt_wake_cold_ns = 6'000;
  SimTime halt_wake_warm_ns = 500;
  /// Guest CPU per completion processed.
  SimTime per_cqe_cpu_ns = 450;
};

class GuestNvmeDriver {
 public:
  using IoDone = std::function<void(nvme::NvmeStatus, u32 result)>;

  GuestNvmeDriver(Vm* vm, VirtualNvmeBackend* backend,
                  GuestNvmeParams params = GuestNvmeParams());

  /// Allocates ring memory and attaches `nqueues` I/O queue pairs
  /// (queue i is serviced by vcpu i % num_vcpus).
  Status Init(u32 nqueues);

  /// Submits a command on queue `queue_idx` from that queue's vCPU.
  /// The cid field is assigned by the driver. PRPs must already point
  /// into guest memory. `done` fires on the guest vCPU when the
  /// completion interrupt is processed.
  void Submit(u32 queue_idx, nvme::Sqe sqe, IoDone done);

  u32 num_queues() const { return static_cast<u32>(queues_.size()); }
  u64 capacity_bytes() const { return backend_->CapacityBytes(); }
  Vm* vm() { return vm_; }

  /// In-flight commands on a queue (for backpressure-aware callers).
  u32 Inflight(u32 queue_idx) const;

 private:
  struct Queue {
    u16 qid;
    u64 sq_gpa, cq_gpa;
    std::unique_ptr<nvme::SqRing> sq;
    std::unique_ptr<nvme::CqRing> cq;
    sim::VCpu* cpu;
    u16 next_cid = 0;
    std::map<u16, IoDone> pending;
    bool irq_scheduled = false;
  };

  void HandleIrq(u32 queue_idx);

  Vm* vm_;
  VirtualNvmeBackend* backend_;
  GuestNvmeParams params_;
  std::vector<std::unique_ptr<Queue>> queues_;
};

}  // namespace nvmetro::virt

#include "virt/guest_nvme.h"

#include <cassert>

namespace nvmetro::virt {

GuestNvmeDriver::GuestNvmeDriver(Vm* vm, VirtualNvmeBackend* backend,
                                 GuestNvmeParams params)
    : vm_(vm), backend_(backend), params_(params) {}

Status GuestNvmeDriver::Init(u32 nqueues) {
  if (nqueues == 0) return InvalidArgument("need at least one queue");
  mem::GuestMemory& gm = vm_->memory();
  for (u32 i = 0; i < nqueues; i++) {
    auto q = std::make_unique<Queue>();
    q->qid = static_cast<u16>(i + 1);
    u64 sq_bytes = static_cast<u64>(params_.queue_entries) * sizeof(nvme::Sqe);
    u64 cq_bytes = static_cast<u64>(params_.queue_entries) * sizeof(nvme::Cqe);
    auto sq_gpa = gm.AllocPages((sq_bytes + mem::kPageSize - 1) /
                                mem::kPageSize);
    auto cq_gpa = gm.AllocPages((cq_bytes + mem::kPageSize - 1) /
                                mem::kPageSize);
    if (!sq_gpa.ok()) return sq_gpa.status();
    if (!cq_gpa.ok()) return cq_gpa.status();
    q->sq_gpa = *sq_gpa;
    q->cq_gpa = *cq_gpa;
    q->sq = std::make_unique<nvme::SqRing>(gm.Translate(q->sq_gpa, sq_bytes),
                                           params_.queue_entries);
    q->cq = std::make_unique<nvme::CqRing>(gm.Translate(q->cq_gpa, cq_bytes),
                                           params_.queue_entries);
    q->cpu = vm_->vcpu(i % vm_->num_vcpus());
    NVM_RETURN_IF_ERROR(backend_->AttachQueuePair(
        q->qid, q->sq.get(), q->cq.get(), q->sq_gpa, q->cq_gpa));
    u32 idx = i;
    backend_->SetIrqHandler(q->qid, [this, idx] {
      // Interrupt delivery: coalesce while one is being serviced; waking
      // a halted vCPU costs extra.
      Queue& queue = *queues_[idx];
      if (queue.irq_scheduled) return;
      queue.irq_scheduled = true;
      SimTime wake = sim::WakePenalty(*queue.cpu, params_.halt_wake_warm_ns,
                                      params_.halt_wake_cold_ns);
      vm_->simulator()->ScheduleAfter(wake, [this, idx] {
        queues_[idx]->cpu->Run(params_.irq_entry_ns,
                               [this, idx] { HandleIrq(idx); });
      });
    });
    queues_.push_back(std::move(q));
  }
  return OkStatus();
}

u32 GuestNvmeDriver::Inflight(u32 queue_idx) const {
  return static_cast<u32>(queues_[queue_idx]->pending.size());
}

void GuestNvmeDriver::Submit(u32 queue_idx, nvme::Sqe sqe, IoDone done) {
  assert(queue_idx < queues_.size());
  Queue& q = *queues_[queue_idx];
  q.cpu->Run(params_.submit_cpu_ns,
             [this, &q, sqe, done = std::move(done)]() mutable {
               u16 cid;
               do {
                 cid = q.next_cid++;
               } while (q.pending.count(cid));
               sqe.cid = cid;
               if (!q.sq->Push(sqe)) {
                 // Queue full: the guest driver would requeue; report as
                 // a busy error so workloads can throttle.
                 done(nvme::MakeStatus(nvme::kSctGeneric,
                                       nvme::kScAbortRequested),
                      0);
                 return;
               }
               q.pending.emplace(cid, std::move(done));
               q.sq->PublishTail();
               SimTime extra = backend_->SqDoorbell(q.qid);
               q.cpu->Charge(params_.doorbell_cpu_ns + extra);
             });
}

void GuestNvmeDriver::HandleIrq(u32 queue_idx) {
  Queue& q = *queues_[queue_idx];
  q.irq_scheduled = false;
  nvme::Cqe cqe;
  u32 handled = 0;
  std::vector<std::pair<IoDone, nvme::Cqe>> callbacks;
  while (q.cq->Peek(&cqe)) {
    q.cq->Pop();
    handled++;
    auto it = q.pending.find(cqe.cid);
    if (it != q.pending.end()) {
      callbacks.emplace_back(std::move(it->second), cqe);
      q.pending.erase(it);
    }
  }
  q.cq->PublishHead();
  backend_->CqDoorbell(q.qid);
  if (handled > 0) {
    q.cpu->Charge(handled * params_.per_cqe_cpu_ns);
  }
  for (auto& [cb, entry] : callbacks) {
    cb(entry.status(), entry.result);
  }
}

}  // namespace nvmetro::virt

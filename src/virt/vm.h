// Virtual machine model: guest RAM plus guest vCPUs.
//
// The guest OS is not simulated in full; what matters to the storage
// stack is (a) guest-physical memory where queues/PRPs/data live, (b)
// guest vCPUs that pay the driver/block-layer/interrupt costs, and (c)
// the NVMe (or virtio) driver behaviour, modeled in GuestNvmeDriver and
// the per-baseline guest drivers.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mem/guest_memory.h"
#include "sim/simulator.h"
#include "sim/vcpu.h"

namespace nvmetro::virt {

struct VmConfig {
  std::string name = "vm0";
  /// Guest RAM. The paper's VMs have 6 GB; the workloads here address
  /// only queue/PRP/buffer pages, so a smaller default keeps host memory
  /// reasonable when simulating many VMs.
  u64 memory_bytes = 64 * MiB;
  u32 vcpus = 4;
};

class Vm {
 public:
  Vm(sim::Simulator* sim, VmConfig cfg);

  const std::string& name() const { return cfg_.name; }
  mem::GuestMemory& memory() { return *memory_; }
  u32 num_vcpus() const { return cfg_.vcpus; }
  sim::VCpu* vcpu(u32 i) { return vcpus_[i].get(); }
  sim::Simulator* simulator() const { return sim_; }

  /// Total guest CPU time burned (all vCPUs).
  u64 TotalCpuBusyNs() const;

 private:
  sim::Simulator* sim_;
  VmConfig cfg_;
  std::unique_ptr<mem::GuestMemory> memory_;
  std::vector<std::unique_ptr<sim::VCpu>> vcpus_;
};

}  // namespace nvmetro::virt

#include "virt/vm.h"

namespace nvmetro::virt {

Vm::Vm(sim::Simulator* sim, VmConfig cfg) : sim_(sim), cfg_(cfg) {
  memory_ = std::make_unique<mem::GuestMemory>(cfg_.memory_bytes);
  for (u32 i = 0; i < cfg_.vcpus; i++) {
    vcpus_.push_back(std::make_unique<sim::VCpu>(
        sim, cfg_.name + ".vcpu" + std::to_string(i)));
  }
}

u64 Vm::TotalCpuBusyNs() const {
  u64 sum = 0;
  for (const auto& c : vcpus_) sum += c->busy_ns();
  return sum;
}

}  // namespace nvmetro::virt

// The NVMetro I/O router (paper §III-C).
//
// Components:
//  - VirtualController: the per-VM virtual NVMe controller. Shadows the
//    guest's VSQ/VCQ rings, runs the attached eBPF classifier at each
//    hook, and routes the 64-byte command block to the fast path (host
//    queues on the physical controller), the kernel path (host block
//    layer), and/or the notify path (NSQ/NCQ to a UIF) — with iterative
//    routing driven by a per-request routing-table entry.
//  - RouterWorker: a host polling thread. Workers are shared between
//    multiple VMs in round-robin fashion; VMs idle longer than a parking
//    threshold stop being polled and their next doorbell pays a trap to
//    wake the path up (§III-C).
//  - NvmetroHost: the control interface — create virtual controllers
//    over a namespace or partition, install/replace classifiers on the
//    fly, attach UIF channels and kernel-path devices.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "core/classifier.h"
#include "core/notify.h"
#include "core/shard.h"
#include "kblock/bio.h"
#include "mem/guest_memory.h"
#include "nvme/prp.h"
#include "sim/poller.h"
#include "ssd/controller.h"
#include "virt/guest_nvme.h"
#include "virt/vm.h"

namespace nvmetro {
class LatencyHistogram;
namespace obs {
class Counter;
class FlightTriggers;
class Gauge;
class Observability;
enum class SpanKind : u8;
}  // namespace obs
namespace qos {
class QosScheduler;
}  // namespace qos
namespace overload {
class OverloadController;
}  // namespace overload
}  // namespace nvmetro

namespace nvmetro::core {

/// Router cost model (host-side, charged on router worker vCPUs).
struct RouterCosts {
  SimTime vsq_pop_ns = 230;        // shadow-queue pop + routing entry setup
  /// MDev-NVMe comparison mode: fixed in-kernel LBA translation instead
  /// of a classifier invocation.
  SimTime mdev_handle_ns = 210;
  SimTime fast_forward_ns = 160;   // HSQ push + device doorbell
  SimTime hcq_handle_ns = 150;     // host CQE handling
  SimTime notify_push_ns = 170;    // NSQ push + UIF notification
  SimTime ncq_handle_ns = 150;     // NCQ completion handling
  SimTime kernel_submit_ns = 1'900;   // NVMe->bio translation + submit
  SimTime kernel_complete_ns = 800;   // kernel-path completion handling
  SimTime vcq_post_ns = 240;       // VCQ write + interrupt injection
  /// Latency from VCQ post to the guest IRQ firing (posted interrupt).
  SimTime irq_inject_latency_ns = 800;
  /// Guest-side doorbell costs: plain MMIO store while polled, vm-exit
  /// when the VM is parked / the worker sleeps.
  SimTime guest_doorbell_mmio_ns = 90;
  SimTime guest_doorbell_trap_ns = 1'800;
  /// A VM with no activity for this long stops being polled.
  SimTime vm_park_timeout_ns = 200 * kUs;
  /// Worker poller knobs.
  SimTime dispatch_cost_ns = 110;
  /// Router workers poll adaptively: they spin briefly after the last
  /// event and then block until the next doorbell/completion edge. This
  /// is what keeps NVMetro's CPU near QEMU's at low load in the paper's
  /// Figure 11, while SPDK's always-spinning reactors top the chart.
  bool adaptive_worker = true;
  SimTime worker_idle_timeout_ns = 15 * kUs;
  SimTime worker_wakeup_latency_ns = 3 * kUs;
  /// --- Failure recovery (all off by default; DESIGN.md §9) -------------
  /// Per-request deadline after which outstanding legs are aborted and
  /// the guest sees Abort Requested (NVMe command timeout). 0 disables.
  SimTime request_timeout_ns = 0;
  /// CPU charged per timed-out request (abort bookkeeping).
  SimTime timeout_abort_ns = 500;
  /// Retries per request for transient leg failures (fast/kernel paths:
  /// path-related errors, Namespace Not Ready, SQ-full pushes). 0
  /// disables.
  u32 max_retries = 0;
  /// First retry backoff; doubles with each consumed retry.
  SimTime retry_backoff_ns = 10 * kUs;
  /// Declare the UIF dead when notify legs are in flight and the NCQ
  /// makes no progress for this long. 0 disables liveness tracking.
  SimTime uif_liveness_timeout_ns = 0;
  /// On UIF death, re-issue lost notify legs (and route future notify
  /// verdicts) on the kernel path when a device is attached; otherwise
  /// they fail. Off by default: for transforming UIFs (encryption) the
  /// kernel path would bypass the transformation.
  bool uif_failover_to_kernel = false;
  /// --- Batched pipeline (DESIGN.md §10) --------------------------------
  /// Commands drained per poller dispatch on each edge (VSQ submissions
  /// and HCQ/NCQ/KCQ completions). 1 = the classic one-command-per-
  /// dispatch pipeline; raising it amortizes the per-batch costs below
  /// over every command that shares a doorbell edge.
  u32 max_batch = 1;
  /// Per-batch splits of the per-command costs above. Each knob names
  /// the portion of its parent cost that is really a per-batch expense
  /// (classifier context marshal, doorbell MMIO, interrupt injection);
  /// the remainder stays per command, so a batch of one command charges
  /// exactly the unbatched figure.
  SimTime vsq_batch_setup_ns = 80;  // of vsq_pop_ns: classifier ctx setup
  SimTime sq_doorbell_ns = 60;      // of fast_forward_ns: HSQ tail MMIO
  SimTime cq_doorbell_ns = 50;      // of hcq_handle_ns: HCQ head MMIO
  SimTime notify_kick_ns = 60;      // of notify_push_ns: NSQ event kick
  SimTime vcq_irq_ns = 90;          // of vcq_post_ns: guest IRQ injection
  /// Completion coalescing: after a harvest batch posts its VCQ entries,
  /// hold the guest interrupt up to this long so later completions can
  /// share it. 0 = inject at the end of every batch, which leaves QD1
  /// latency untouched.
  SimTime completion_coalesce_ns = 0;
  /// --- Multi-tenant QoS (DESIGN.md §12) --------------------------------
  /// CPU per admission decision (token-bucket check). Charged only when
  /// a QosScheduler is attached, so QoS-off runs are bit-identical to
  /// the pre-QoS router.
  SimTime qos_admit_ns = 120;
  /// --- Resubmission chains (DESIGN.md §15) -----------------------------
  /// Maximum kResubmit hops per request; the router fails the request
  /// with an internal error when a classifier tries to exceed it. The
  /// guest-visible budget is depth * request_timeout semantics unchanged
  /// (the original deadline covers the whole chain).
  u32 max_resubmit_depth = 8;
  /// CPU per accepted resubmission (SQE rewrite + re-dispatch setup).
  SimTime resubmit_ns = 180;
  /// --- Sharded hot path (DESIGN.md §14) --------------------------------
  /// Ablation baseline for `ablation_router --shard-sweep`: keep the
  /// pre-shard std::map host-cid table (per-IO node churn) instead of
  /// the flat generation-checked table. Simulated time is identical in
  /// both modes — the flat table's win is host wall-clock per IO.
  bool legacy_cid_map = false;
};

class RouterWorker;

/// Per-VM virtual NVMe controller + routing state.
class VirtualController : public virt::VirtualNvmeBackend {
 public:
  struct Config {
    u32 vm_id = 0;
    u32 backend_nsid = 1;
    /// Partition of the backend namespace this VM sees; part_nlb == 0
    /// means the whole namespace.
    u64 part_first_lba = 0;
    u64 part_nlb = 0;
  };

  VirtualController(sim::Simulator* sim, ssd::SimulatedController* phys,
                    virt::Vm* vm, Config cfg, const RouterCosts* costs,
                    obs::Observability* obs = nullptr);
  ~VirtualController() override;

  // --- Control interface ----------------------------------------------------

  /// Verifies and installs (or hot-swaps) the I/O classifier. In-flight
  /// requests keep their routing state; new hooks run the new program.
  Status InstallClassifier(ebpf::Program prog);

  /// Attaches the UIF notify channel (notify-path target).
  void AttachUif(NotifyChannel* channel);
  void DetachUif();

  /// Attaches the kernel-path block device (may be a dm stack).
  void AttachKernelDevice(kblock::BlockDevice* dev);

  /// MDev-NVMe mode: bypass the classifier and perform the partition LBA
  /// translation directly in the mediation layer, as MDev-NVMe's kernel
  /// module does (paper SIII-C). Used by the MDev baseline.
  void SetFixedTranslationMode(bool on) { fixed_translation_ = on; }

  /// Enables multi-tenant QoS: every popped command asks `qos` for
  /// admission as `tenant_id` before classification. Deferred commands
  /// park in a bounded FIFO (capacity = the tenant's max_deferred) and
  /// resume when tokens accrue; arrivals beyond the bound are shed with
  /// a busy status (DESIGN.md §12). Pass nullptr to detach.
  void AttachQos(qos::QosScheduler* qos, u32 tenant_id);

  /// Layers overload control on the QoS admission gate (requires an
  /// attached QosScheduler; DESIGN.md §13): every admission consults the
  /// controller first — a Shed verdict fails the command with a
  /// retryable busy status, a Defer verdict parks it in the same ring
  /// the QoS scheduler uses, and parked waits/backlog are reported back
  /// as the controller's delay signal. Pass nullptr to detach; detached
  /// runs are bit-identical to the QoS-only router.
  void AttachOverload(overload::OverloadController* ovl);

  /// Wires the flight-recorder trigger framework (obs/flight.h): the
  /// router fires kDeadlineAbort / kStaleCidDrop / kResubmitDepthBreach
  /// anomalies into `ftrig` as they happen. Recording into the flight
  /// rings is independent of this (always on whenever the Observability
  /// context owns a FlightRecorder). Pass nullptr to detach.
  void AttachFlightTriggers(obs::FlightTriggers* ftrig) { ftrig_ = ftrig; }

  // --- virt::VirtualNvmeBackend ----------------------------------------------

  Status AttachQueuePair(u16 qid, nvme::SqRing* sq, nvme::CqRing* cq,
                         u64 sq_gpa, u64 cq_gpa) override;
  SimTime SqDoorbell(u16 qid) override;
  void CqDoorbell(u16 qid) override;
  void SetIrqHandler(u16 qid, std::function<void()> handler) override;
  u64 CapacityBytes() const override;

  // --- Introspection ----------------------------------------------------------

  u32 vm_id() const { return cfg_.vm_id; }
  u64 requests_completed() const { return SumStat(&ShardStats::completed); }
  u64 requests_failed() const { return SumStat(&ShardStats::failed); }
  u64 fast_path_sends() const { return SumStat(&ShardStats::fast_sends); }
  u64 notify_path_sends() const { return SumStat(&ShardStats::notify_sends); }
  u64 kernel_path_sends() const { return SumStat(&ShardStats::kernel_sends); }
  u64 requests_timed_out() const { return SumStat(&ShardStats::timeouts); }
  u64 leg_retries() const { return SumStat(&ShardStats::retries); }
  u64 qos_deferrals() const { return SumStat(&ShardStats::qos_deferred); }
  u64 qos_sheds() const { return SumStat(&ShardStats::qos_shed); }
  u64 resubmissions() const { return SumStat(&ShardStats::resubmits); }
  /// Commands rejected by the overload controller's Shed state (disjoint
  /// from qos_sheds(), which counts deferral-bound sheds).
  u64 overload_sheds() const { return SumStat(&ShardStats::ovl_shed); }
  /// Commands currently parked awaiting QoS admission (all shards).
  u32 qos_waiting() const {
    usize n = 0;
    for (const auto& sh : shards_) n += sh->qos_count;
    return static_cast<u32>(n);
  }
  u64 uif_failovers() const { return uif_failovers_; }
  bool uif_dead() const { return uif_dead_; }
  ClassifierRuntime* classifier() { return classifier_.get(); }
  bool parked() const;
  // Shard-level introspection (DESIGN.md §14): slab/cid occupancy for
  // leak assertions and scratch capacities for reallocation checks.
  u32 num_shards() const { return static_cast<u32>(shards_.size()); }
  const ShardStats& shard_stats(u32 i) const { return shards_[i]->stats; }
  u32 shard_slots_in_use(u32 i) const { return shards_[i]->slots_in_use(); }
  u32 shard_slab_capacity(u32 i) const { return shards_[i]->slab_capacity(); }
  u32 shard_cid_in_use(u32 i) const { return shards_[i]->cid_in_use(); }
  u32 shard_cid_capacity(u32 i) const { return shards_[i]->cid_capacity(); }
  usize shard_irq_scratch_capacity(u32 i) const {
    return shards_[i]->batch_irq_reqs.capacity();
  }
  usize shard_coalesce_scratch_capacity(u32 i) const {
    return shards_[i]->coalesce_reqs.capacity();
  }
  /// Late host CQEs dropped by the cid generation check (all shards).
  u64 stale_cid_drops() const {
    return SumStat(&ShardStats::stale_cid_drops);
  }

 private:
  friend class RouterWorker;
  friend class NvmetroHost;

  enum Path : u8 { kPathH = 0, kPathN = 1, kPathK = 2 };

  // Per-queue state (slab, cid table, scratch, deferral ring, stats)
  // lives in RouterShard (core/shard.h); the controller keeps only the
  // protocol logic and genuinely shared state (classifier, UIF
  // liveness, kernel mailbox, metrics).

  // Request processing (all on the router worker's vCPU context).
  void PollVsq(usize gq_index);
  void PollHcq();
  void PollNcq();
  void PollKcq();
  /// `batch_n` is the size of the drain batch this command arrived in
  /// (0 = unbatched pipeline): it selects the per-command cost remainder
  /// and stamps the BATCH span when the batch holds more than one.
  void HandleNewRequest(usize gq_index, const nvme::Sqe& sqe,
                        u32 batch_n = 0);
  /// Classification + dispatch of an admitted entry — the tail of
  /// HandleNewRequest, split out so QoS-deferred commands resume here.
  void StartRequest(RequestEntry* e);
  // Multi-tenant QoS (DESIGN.md §12): admission gate ahead of
  // classification, bounded FIFO of parked commands, timer-driven resume.
  /// Tokens one command costs: one per 4 KiB page, minimum one.
  static u32 QosTokenCost(const RequestEntry& e);
  /// Parks `e` (cost already computed) or sheds it at the bound.
  void QosParkOrShed(RequestEntry* e, u32 cost);
  /// Fails `e` with a busy status and accounts the shed.
  void QosShed(RequestEntry* e);
  /// Fails `e` with the same retryable busy status on an overload-Shed
  /// verdict (stamped OVERLOAD_SHED, accounted separately).
  void OverloadShed(RequestEntry* e);
  /// Reports the oldest parked head across shards (cost + park time) to
  /// the scheduler after any head change (anti-starvation reservation).
  void SyncParkedHead();
  /// Arms (or pulls in) the shard's resume timer for its parked FIFO.
  void ArmQosResume(RouterShard& sh, SimTime at);
  /// Resume timer body: admit the shard's parked commands in FIFO order
  /// until the scheduler defers again (re-arming at its retry_at) or the
  /// FIFO drains.
  void QosResume(u32 shard_index);
  // Batched pipeline (DESIGN.md §10). While a batch is open, dispatches
  // push without ringing and completions defer their guest interrupt;
  // FlushBatch rings each dirty HSQ doorbell once, kicks the NSQ once
  // and injects (or coalesces) one interrupt per guest queue.
  void BeginBatch();
  void FlushBatch();
  /// Schedules one guest interrupt for `sh`'s queue, stamping kIrqInject
  /// for every covered request when tracing is on.
  void InjectGuestIrq(RouterShard& sh, std::vector<u64> reqs);
  void RunClassifierAndApply(RequestEntry* e, Hook hook,
                             nvme::NvmeStatus error);
  void ApplyVerdict(RequestEntry* e, u64 verdict);
  void DispatchFast(RequestEntry* e);
  void DispatchNotify(RequestEntry* e);
  void DispatchKernel(RequestEntry* e);
  void OnTargetDone(u32 tag, Path path, nvme::NvmeStatus status,
                    u32 result = 0);
  void CompleteToGuest(RequestEntry* e, nvme::NvmeStatus status);
  void MaybeFree(RequestEntry* e);
  void FailRequest(RequestEntry* e, nvme::NvmeStatus status);

  // Failure recovery (DESIGN.md §9).
  /// Request deadline fired: abort outstanding legs, fail to the guest.
  void OnDeadline(u32 tag);
  /// A host CQE's cid failed the generation check (already counted by
  /// TakeCid): stamp a flight mark and fire the kStaleCidDrop anomaly.
  void OnStaleCid(RouterShard& sh, u16 cid);
  /// Schedules a backoff re-dispatch of a failed fast/kernel leg.
  /// Returns false when the retry budget is spent or retries are off.
  bool ScheduleRetryLeg(RequestEntry* e, Path path);
  /// Liveness watchdog: no NCQ progress with notify legs in flight.
  void ArmUifLiveness();
  void CheckUifLiveness();
  void DeclareUifDead();
  /// Drops every in-flight notify leg (UIF death or detach): counts the
  /// legs as timeouts (`dead=true`) or aborts (detach), then re-issues
  /// them on the kernel path or fails the requests.
  void HandleUifDead(bool dead, nvme::NvmeStatus fail_status);
  /// True when the entry's opcode has kernel-path (bio) semantics.
  static bool KernelEligible(const RequestEntry& e);

  /// Allocates a routing slot from the arriving queue's shard.
  RequestEntry* AllocEntry(usize gq_index);
  /// Resolves a tag to its shard's slab entry (null if freed/recycled).
  RequestEntry* EntryByTag(u32 tag);
  u64 SumStat(u64 ShardStats::* field) const {
    u64 sum = 0;
    for (const auto& sh : shards_) sum += sh->stats.*field;
    return sum;
  }

  /// Registers the router's cached metric pointers (no-op when obs_ is
  /// null; every hot-path hook is then one null-check branch).
  void InitMetrics();
  /// Stamps a trace span for `e` (no-op without obs_ / req_id) and — when
  /// the shard carries a flight ring — the matching 32-byte flight
  /// record, advancing e->last_edge_ns for the record's stage delta.
  void Stamp(RequestEntry* e, obs::SpanKind kind, u16 status = 0,
             u64 aux = 0, u8 hook = 0);

  void Touch() { last_activity_ = sim_->now(); }

  sim::Simulator* sim_;
  ssd::SimulatedController* phys_;
  virt::Vm* vm_;
  Config cfg_;
  const RouterCosts* costs_;

  std::unique_ptr<ClassifierRuntime> classifier_;
  NotifyChannel* uif_ = nullptr;
  kblock::BlockDevice* kernel_dev_ = nullptr;

  // One shard per guest queue pair; unique_ptr keeps shard addresses
  // stable across AttachQueuePair (timer lambdas capture shard indices).
  std::vector<std::unique_ptr<RouterShard>> shards_;

  // Kernel-path completion mailbox, drained by the worker.
  std::deque<std::pair<u32, nvme::NvmeStatus>> kcq_mailbox_;

  bool fixed_translation_ = false;
  // QoS identity (the parked rings live on the shards).
  qos::QosScheduler* qos_ = nullptr;
  overload::OverloadController* ovl_ = nullptr;
  obs::FlightTriggers* ftrig_ = nullptr;
  u32 qos_tenant_ = 0;
  /// True between BeginBatch and FlushBatch; routes dispatch/completion
  /// doorbell work through the per-batch flush instead of per command.
  bool batch_active_ = false;
  RouterWorker* worker_ = nullptr;
  u32 src_vsq_ = 0, src_hcq_ = 0, src_ncq_ = 0, src_kcq_ = 0;
  SimTime last_activity_ = 0;

  u64 uif_failovers_ = 0;

  // UIF liveness tracking (active when uif_liveness_timeout_ns > 0).
  bool uif_dead_ = false;
  u32 notify_inflight_ = 0;
  SimTime last_ncq_progress_ = 0;
  sim::EventId liveness_ev_;

  // Observability (all pointers null when obs_ is null).
  obs::Observability* obs_ = nullptr;
  obs::Counter* m_started_ = nullptr;
  obs::Counter* m_completed_ = nullptr;
  obs::Counter* m_failed_ = nullptr;
  obs::Counter* m_table_full_ = nullptr;
  obs::Counter* m_vcq_retries_ = nullptr;
  obs::Counter* m_irq_injects_ = nullptr;
  obs::Counter* m_classifier_runs_ = nullptr;
  obs::Counter* m_timeouts_ = nullptr;      // "router.timeouts" (requests)
  obs::Counter* m_retries_ = nullptr;       // "router.retries" (legs)
  obs::Counter* m_uif_failovers_ = nullptr; // "uif.failovers" (death events)
  obs::Counter* m_sends_[3] = {};        // indexed by Path
  obs::Counter* m_completions_[3] = {};  // per-path target completions
  obs::Counter* m_aborts_[3] = {};       // dispatched but push/submit failed
  obs::Counter* m_errors_[3] = {};       // target completed with error status
  obs::Counter* m_path_timeouts_[3] = {};  // legs abandoned by deadline/death
  LatencyHistogram* m_latency_ = nullptr;       // all guest completions
  LatencyHistogram* m_path_latency_[3] = {};    // single-path requests only
  // "router.batch_size": drain sizes per dispatch. Registered only when
  // max_batch > 1 so an unbatched run's metric export stays bit-identical
  // to the pre-batch pipeline.
  LatencyHistogram* m_batch_size_ = nullptr;
  // "router.resubmits" / "router.chain_depth": registered lazily on the
  // first accepted resubmission so chain-free runs keep their metric
  // exports bit-identical (same pattern as the QoS/batch metrics).
  obs::Counter* m_resubmits_ = nullptr;
  LatencyHistogram* m_chain_depth_ = nullptr;
  // "router.inflight": open guest requests (gauge watermark = peak depth).
  obs::Gauge* m_inflight_ = nullptr;
  // "qos.waiting": commands parked for admission across all controllers
  // sharing the registry (watermark = peak backlog). Registered only by
  // AttachQos so QoS-off metric exports stay bit-identical.
  obs::Gauge* m_qos_waiting_ = nullptr;
};

/// A router worker thread polling the queues of its assigned VMs.
class RouterWorker {
 public:
  RouterWorker(sim::Simulator* sim, std::string name, RouterCosts costs,
               obs::Observability* obs = nullptr);

  /// Registers a controller's poll sources with this worker.
  void Attach(VirtualController* vc);

  void Start() { poller_.Start(); }
  bool sleeping() const { return poller_.sleeping(); }
  sim::VCpu* cpu() { return &cpu_; }
  sim::Poller& poller() { return poller_; }
  u64 busy_ns() const { return cpu_.busy_ns(); }

 private:
  sim::Simulator* sim_;
  sim::VCpu cpu_;
  sim::Poller poller_;
  std::vector<VirtualController*> vcs_;
};

/// Top-level control interface: owns workers and virtual controllers.
struct NvmetroHostConfig {
  u32 num_workers = 1;
  RouterCosts costs;
  /// Optional metrics + trace sink, shared by all workers/controllers.
  obs::Observability* obs = nullptr;
  /// Optional anomaly->dump framework; CreateController wires it into
  /// every new controller (same as calling AttachFlightTriggers).
  obs::FlightTriggers* flight_triggers = nullptr;
};

class NvmetroHost {
 public:
  using Config = NvmetroHostConfig;

  NvmetroHost(sim::Simulator* sim, ssd::SimulatedController* phys,
              Config cfg = {});

  /// Creates a virtual controller for `vm` over a namespace partition and
  /// assigns it to a worker round-robin.
  VirtualController* CreateController(virt::Vm* vm,
                                      VirtualController::Config cfg);

  /// Starts all router workers.
  void Start();

  /// Sum of router-thread CPU (for the overhead evaluations).
  u64 RouterCpuBusyNs() const;

  RouterWorker* worker(u32 i) { return workers_[i].get(); }
  u32 num_workers() const { return static_cast<u32>(workers_.size()); }
  VirtualController* controller(u32 i) { return controllers_[i].get(); }
  u32 num_controllers() const {
    return static_cast<u32>(controllers_.size());
  }
  const RouterCosts& costs() const { return cfg_.costs; }

 private:
  sim::Simulator* sim_;
  ssd::SimulatedController* phys_;
  Config cfg_;
  std::vector<std::unique_ptr<RouterWorker>> workers_;
  std::vector<std::unique_ptr<VirtualController>> controllers_;
  u32 next_worker_ = 0;
};

}  // namespace nvmetro::core

#include "core/router.h"

#include <cassert>

#include "obs/obs.h"
#include "overload/overload.h"
#include "qos/qos.h"

namespace nvmetro::core {

using nvme::Cqe;
using nvme::NvmeStatus;
using nvme::Sqe;

namespace {
constexpr u32 kLbaSize = 512;

/// Leg failures worth a backoff retry: path errors (NVMe-oF style
/// transport hiccups) and "namespace not ready" (which the kernel path
/// also synthesizes for ResourceExhausted bios — SQ-full, link-down).
bool IsTransientStatus(NvmeStatus s) {
  if (nvme::StatusSct(s) == nvme::kSctPathRelated) return true;
  return nvme::StatusSct(s) == nvme::kSctGeneric &&
         nvme::StatusSc(s) == nvme::kScNamespaceNotReady;
}

/// The per-command remainder of a cost whose `part` is charged once per
/// batch. Guards against a part configured larger than its parent.
SimTime PerCmdCost(SimTime total, SimTime part) {
  return total > part ? total - part : 0;
}
}  // namespace

// --- VirtualController --------------------------------------------------------

VirtualController::VirtualController(sim::Simulator* sim,
                                     ssd::SimulatedController* phys,
                                     virt::Vm* vm, Config cfg,
                                     const RouterCosts* costs,
                                     obs::Observability* obs)
    : sim_(sim), phys_(phys), vm_(vm), cfg_(cfg), costs_(costs), obs_(obs) {
  if (cfg_.part_nlb == 0) {
    cfg_.part_nlb = phys_->ns_block_count(cfg_.backend_nsid);
  }
  InitMetrics();
}

void VirtualController::InitMetrics() {
  if (!obs_) return;
  obs::MetricsRegistry& m = obs_->metrics();
  m_started_ = m.GetCounter("router.requests");
  m_completed_ = m.GetCounter("router.completed");
  m_failed_ = m.GetCounter("router.failed");
  m_table_full_ = m.GetCounter("router.table_full");
  m_vcq_retries_ = m.GetCounter("router.vcq.retries");
  m_irq_injects_ = m.GetCounter("router.irq.injects");
  m_classifier_runs_ = m.GetCounter("router.classifier.runs");
  m_timeouts_ = m.GetCounter("router.timeouts");
  m_retries_ = m.GetCounter("router.retries");
  m_uif_failovers_ = m.GetCounter("uif.failovers");
  static constexpr const char* kPathName[3] = {"fast", "notify", "kernel"};
  for (int p = 0; p < 3; p++) {
    std::string base = std::string("router.") + kPathName[p];
    m_sends_[p] = m.GetCounter(base + ".sends");
    m_completions_[p] = m.GetCounter(base + ".completions");
    m_aborts_[p] = m.GetCounter(base + ".aborts");
    m_errors_[p] = m.GetCounter(base + ".errors");
    m_path_timeouts_[p] = m.GetCounter(base + ".timeouts");
    m_path_latency_[p] = m.GetHistogram(base + ".latency_ns");
  }
  m_latency_ = m.GetHistogram("router.latency_ns");
  m_inflight_ = m.GetGauge("router.inflight");
  if (costs_->max_batch > 1) {
    m_batch_size_ = m.GetHistogram("router.batch_size");
  }
}

void VirtualController::Stamp(RequestEntry* e, obs::SpanKind kind,
                              u16 status, u64 aux, u8 hook) {
  if (!obs_ || !e->req_id) return;
  SimTime now = sim_->now();
  // Always-on flight record: one branch + one 32-byte store into the
  // arrival shard's ring. The stage delta rides along so a dump is
  // attributable without the (evictable) trace events.
  if (obs::FlightRing* fr = shards_[e->gq_index]->flight) {
    u64 d = e->last_edge_ns ? now - e->last_edge_ns : 0;
    obs::FlightRecord r;
    r.t = now;
    r.req_id = e->req_id;
    r.delta_ns = d < obs::kFlightDeltaUnknown
                     ? static_cast<u32>(d)
                     : obs::kFlightDeltaUnknown - 1;
    r.aux = static_cast<u32>(aux);
    r.status = status;
    r.tag_lo = static_cast<u16>(e->tag);
    r.edge = static_cast<u8>(kind);
    r.opcode = e->sqe.opcode;
    r.tenant = static_cast<u8>(cfg_.vm_id);
    r.hook = hook;
    fr->Record(r);
    e->last_edge_ns = now;
  }
  obs::TraceEvent ev;
  ev.req_id = e->req_id;
  ev.t = now;
  ev.aux = aux;
  ev.vm_id = cfg_.vm_id;
  ev.status = status;
  ev.kind = kind;
  ev.hook = hook;
  obs_->trace().Record(ev);
}

VirtualController::~VirtualController() {
  for (auto& sh : shards_) {
    if (sh->host_qid) phys_->DeleteIoQueuePair(sh->host_qid);
  }
}

Status VirtualController::InstallClassifier(ebpf::Program prog) {
  auto runtime = ClassifierRuntime::Create(std::move(prog));
  if (!runtime.ok()) return runtime.status();
  classifier_ = std::move(*runtime);
  classifier_->env().ktime_ns = [this] { return sim_->now(); };
  return OkStatus();
}

void VirtualController::AttachUif(NotifyChannel* channel) {
  uif_ = channel;
  uif_dead_ = false;
  uif_->SetPartitionInfo(cfg_.part_first_lba, cfg_.part_nlb, cfg_.vm_id);
  uif_->SetCompletionNotify([this] {
    if (worker_) worker_->poller().Notify(src_ncq_);
  });
}

void VirtualController::DetachUif() {
  if (uif_) {
    // Administrative detach: fail in-flight notify legs now — leaving
    // them stranded would leak the routing slot and the guest would
    // never see a CQE.
    HandleUifDead(/*dead=*/false, nvme::MakeStatus(nvme::kSctGeneric,
                                                   nvme::kScAbortRequested));
  }
  uif_ = nullptr;
  uif_dead_ = false;
  notify_inflight_ = 0;
  if (liveness_ev_.valid()) {
    sim_->Cancel(liveness_ev_);
    liveness_ev_ = {};
  }
}

void VirtualController::AttachKernelDevice(kblock::BlockDevice* dev) {
  kernel_dev_ = dev;
}

Status VirtualController::AttachQueuePair(u16 qid, nvme::SqRing* sq,
                                          nvme::CqRing* cq, u64 /*sq_gpa*/,
                                          u64 /*cq_gpa*/) {
  if (!worker_)
    return FailedPrecondition("controller not attached to a router worker");
  if (shards_.size() >= kMaxShards) {
    return FailedPrecondition("per-VM queue-pair (shard) limit reached");
  }
  auto sh = std::make_unique<RouterShard>(static_cast<u32>(shards_.size()),
                                          costs_->legacy_cid_map);
  sh->qid = qid;
  sh->vsq = sq;
  sh->vcq = cq;
  auto host_q = phys_->CreateIoQueuePair(
      sq->entries(),
      [this] {
        if (worker_) worker_->poller().Notify(src_hcq_);
      },
      &vm_->memory());
  if (!host_q.ok()) return host_q.status();
  sh->host_qid = *host_q;
  // Completions awaiting one interrupt are bounded by the VCQ depth;
  // reserving to it keeps coalescing bursts reallocation-free.
  sh->ReserveScratch(cq->entries());
  // Flight ring allocated at attach time (never on the IO path); the
  // queue index is the shard index so TagShard(tag) resolves it.
  if (obs_ && obs_->flight()) {
    sh->flight = obs_->flight()->RegisterRing(cfg_.vm_id, sh->index());
  }
  if (qos_) {
    u32 cap = qos_->max_deferred(qos_tenant_);
    sh->qos_ring.assign(cap ? cap : 1, RouterShard::Waiter{});
  }
  shards_.push_back(std::move(sh));
  return OkStatus();
}

bool VirtualController::parked() const {
  return sim_->now() - last_activity_ > costs_->vm_park_timeout_ns;
}

SimTime VirtualController::SqDoorbell(u16 /*qid*/) {
  bool trap = parked() || (worker_ && worker_->sleeping());
  Touch();
  if (worker_) worker_->poller().Notify(src_vsq_);
  return trap ? costs_->guest_doorbell_trap_ns
              : costs_->guest_doorbell_mmio_ns;
}

void VirtualController::CqDoorbell(u16 /*qid*/) {
  // Head publication is visible through the shared VCQ ring; nothing to
  // do host-side.
}

void VirtualController::SetIrqHandler(u16 qid, std::function<void()> handler) {
  for (auto& sh : shards_) {
    if (sh->qid == qid) {
      sh->irq = std::move(handler);
      return;
    }
  }
  // Queue attached later gets its handler set then; tolerate early calls.
}

u64 VirtualController::CapacityBytes() const {
  return cfg_.part_nlb * kLbaSize;
}

RequestEntry* VirtualController::AllocEntry(usize gq_index) {
  return shards_[gq_index]->AllocEntry();
}

RequestEntry* VirtualController::EntryByTag(u32 tag) {
  u32 shard = TagShard(tag);
  if (shard >= shards_.size()) return nullptr;
  return shards_[shard]->EntryByTag(tag);
}

void VirtualController::PollVsq(usize /*unused*/) {
  Touch();
  if (costs_->max_batch <= 1) {
    // Unbatched pipeline: round-robin one entry from the first non-empty
    // VSQ per dispatch.
    bool more = false;
    for (usize i = 0; i < shards_.size(); i++) {
      Sqe sqe;
      if (shards_[i]->vsq->Pop(&sqe)) {
        HandleNewRequest(i, sqe);
        // Re-arm if anything is still pending on any VSQ.
        for (const auto& sh : shards_) {
          if (!sh->vsq->Empty()) more = true;
        }
        break;
      }
    }
    if (more && worker_) worker_->poller().Notify(src_vsq_);
    return;
  }
  // Batched drain (DESIGN.md §10): take every published entry — up to
  // max_batch — in one dispatch. The classifier context marshal is paid
  // once per batch; each downstream queue gets one doorbell at flush.
  u32 avail = 0;
  for (const auto& sh : shards_) avail += sh->vsq->Pending();
  if (avail == 0) return;  // a prior drain already consumed this edge
  u32 n = std::min(avail, costs_->max_batch);
  if (m_batch_size_) m_batch_size_->Record(n);
  BeginBatch();
  worker_->cpu()->Charge(costs_->vsq_batch_setup_ns);
  u32 left = n;
  for (usize i = 0; i < shards_.size() && left; i++) {
    Sqe sqe;
    while (left && shards_[i]->vsq->Pop(&sqe)) {
      HandleNewRequest(i, sqe, n);
      left--;
    }
  }
  FlushBatch();
  for (const auto& sh : shards_) {
    if (!sh->vsq->Empty() && worker_) {
      worker_->poller().Notify(src_vsq_);
      break;
    }
  }
}

void VirtualController::HandleNewRequest(usize gq_index, const Sqe& sqe,
                                         u32 batch_n) {
  worker_->cpu()->Charge(batch_n ? PerCmdCost(costs_->vsq_pop_ns,
                                              costs_->vsq_batch_setup_ns)
                                 : costs_->vsq_pop_ns);
  RequestEntry* e = AllocEntry(gq_index);
  if (!e) {
    // Routing slab exhausted: fail the request (guest sees a busy-ish
    // internal error and retries).
    if (m_table_full_) m_table_full_->Inc();
    worker_->cpu()->Charge(costs_->vcq_post_ns);
    RouterShard& sh = *shards_[gq_index];
    Cqe cqe;
    cqe.cid = sqe.cid;
    cqe.sq_id = sh.qid;
    cqe.sq_head = sh.vsq->head();
    cqe.set_status(
        nvme::MakeStatus(nvme::kSctGeneric, nvme::kScAbortRequested));
    sh.vcq->Push(cqe);
    if (sh.irq) {
      sim_->ScheduleAfter(costs_->irq_inject_latency_ns, sh.irq);
    }
    return;
  }
  e->sqe = sqe;
  e->gq_index = static_cast<u16>(gq_index);
  e->mediated_slba = sqe.slba();
  e->mediated_nlb = sqe.block_count();
  if (obs_) {
    e->req_id = obs_->trace().BeginRequest();
    e->start_ns = sim_->now();
    if (m_started_) m_started_->Inc();
    if (m_inflight_) m_inflight_->Add(1);
    Stamp(e, obs::SpanKind::kVsqPop, 0, sqe.opcode);
    // Size-1 batches stay unstamped so every existing golden trace is
    // preserved; aux carries the batch size.
    if (batch_n > 1) Stamp(e, obs::SpanKind::kBatch, 0, batch_n);
  }
  if (costs_->request_timeout_ns) {
    u32 tag = e->tag;
    e->deadline_ev = sim_->ScheduleAfter(costs_->request_timeout_ns,
                                         [this, tag] { OnDeadline(tag); });
  }
  if (qos_) {
    // Admission ahead of classification (DESIGN.md §12). Arrivals behind
    // parked commands park too (FIFO per shard — tokens go to the oldest
    // waiter first); beyond the deferral bound they are shed.
    worker_->cpu()->Charge(costs_->qos_admit_ns);
    RouterShard& sh = *shards_[gq_index];
    u32 cost = QosTokenCost(*e);
    if (sh.qos_count > 0) {
      QosParkOrShed(e, cost);
      return;
    }
    // Overload gate ahead of token arbitration (DESIGN.md §13): Shed
    // refuses outright, Defer paces via the same parked ring.
    if (ovl_) {
      overload::Verdict v = ovl_->Admit(qos_tenant_, cost, sim_->now());
      if (v.action == overload::Verdict::Action::kShed) {
        OverloadShed(e);
        return;
      }
      if (v.action == overload::Verdict::Action::kDefer) {
        QosParkOrShed(e, cost);
        if (sh.qos_count > 0) ArmQosResume(sh, v.retry_at);
        return;
      }
    }
    qos::AdmitResult r = qos_->Admit(qos_tenant_, cost, sim_->now());
    if (r.action == qos::AdmitResult::Action::kDefer) {
      // Give back pacing credit the overload gate charged: the command
      // is not running after all.
      if (ovl_) ovl_->Refund(qos_tenant_, cost);
      QosParkOrShed(e, cost);
      if (sh.qos_count > 0) ArmQosResume(sh, r.retry_at);
      return;
    }
  }
  StartRequest(e);
}

void VirtualController::StartRequest(RequestEntry* e) {
  if (fixed_translation_) {
    // MDev-NVMe mode: fixed translation, fast path only.
    worker_->cpu()->Charge(costs_->mdev_handle_ns);
    if (e->sqe.is_io_data_cmd() || e->sqe.opcode == nvme::kCmdWriteZeroes) {
      e->mediated_slba += cfg_.part_first_lba;
    }
    ApplyVerdict(e, kSendHq | kWillCompleteHq);
    return;
  }
  if (!classifier_) {
    FailRequest(e, nvme::MakeStatus(nvme::kSctGeneric,
                                    nvme::kScInternalError));
    return;
  }
  RunClassifierAndApply(e, kHookVsq, nvme::kStatusSuccess);
}

void VirtualController::RunClassifierAndApply(RequestEntry* e, Hook hook,
                                              NvmeStatus error) {
  ClassifierCtx ctx;
  ctx.current_hook = hook;
  ctx.opcode = e->sqe.opcode;
  ctx.nsid = e->sqe.nsid;
  ctx.slba = e->mediated_slba;
  ctx.nlb = e->mediated_nlb;
  ctx.error = error;
  ctx.state = e->state;
  ctx.vm_id = cfg_.vm_id;
  ctx.part_offset = cfg_.part_first_lba;
  ctx.part_limit = cfg_.part_nlb;
  ctx.cmd_arg = static_cast<u64>(e->sqe.cdw2) |
                (static_cast<u64>(e->sqe.cdw3) << 32);
  ctx.chain_depth = e->chain_depth;
  // At completion hooks of a successful read, expose the completed
  // data: the guest buffer already holds it, so map the first PRP page
  // read-only into the classifier (never across the page boundary, and
  // never a PRP-list walk — that is all a chain hop may inspect).
  if (hook != kHookVsq && e->sqe.opcode == nvme::kCmdRead &&
      nvme::StatusOk(error) && e->sqe.prp1 != 0) {
    u64 page_room = mem::kPageSize - (e->sqe.prp1 & (mem::kPageSize - 1));
    u64 len = static_cast<u64>(e->mediated_nlb) * kLbaSize;
    if (len > page_room) len = page_room;
    if (const u8* p = vm_->memory().TranslateConst(e->sqe.prp1, len)) {
      ctx.data = reinterpret_cast<u64>(p);
      ctx.data_len = len;
    }
  }
  auto result = classifier_->Run(&ctx);
  worker_->cpu()->Charge(result.cpu_cost);
  if (m_classifier_runs_) m_classifier_runs_->Inc();
  Stamp(e, obs::SpanKind::kClassifier, error, result.verdict,
        static_cast<u8>(hook));
  if (!result.status.ok()) {
    // A verified classifier cannot fail at runtime; treat as fatal for
    // the request.
    FailRequest(e, nvme::MakeStatus(nvme::kSctGeneric,
                                    nvme::kScInternalError));
    return;
  }
  e->mediated_slba = ctx.slba;
  e->mediated_nlb = static_cast<u32>(ctx.nlb);
  e->state = ctx.state;
  if (result.verdict & kResubmit) {
    // Below-guest dependent read: re-issue with the rewritten slba/nlb
    // instead of completing. Only valid at a completion hook of a
    // successful read, within the chain-depth bound, and without
    // growing the transfer beyond the guest's original buffer.
    bool depth_breach = hook != kHookVsq &&
                        e->sqe.opcode == nvme::kCmdRead &&
                        nvme::StatusOk(error) &&
                        e->chain_depth >= costs_->max_resubmit_depth;
    if (hook == kHookVsq || e->sqe.opcode != nvme::kCmdRead ||
        !nvme::StatusOk(error) || depth_breach || e->mediated_nlb == 0 ||
        e->mediated_nlb > e->sqe.block_count()) {
      if (depth_breach && ftrig_) {
        // Runaway classifier chain: forensic dump before the request is
        // failed (cold path — the chain is already dead).
        ftrig_->Fire(obs::FlightTrigger::kResubmitDepthBreach, sim_->now(),
                     "vm=" + std::to_string(cfg_.vm_id) +
                         " req=" + std::to_string(e->req_id) +
                         " depth=" + std::to_string(e->chain_depth));
      }
      FailRequest(e, nvme::MakeStatus(nvme::kSctGeneric,
                                      nvme::kScInternalError));
      return;
    }
    e->chain_depth++;
    worker_->cpu()->Charge(costs_->resubmit_ns);
    shards_[e->gq_index]->stats.resubmits++;
    if (obs_ && !m_resubmits_) {
      m_resubmits_ = obs_->metrics().GetCounter("router.resubmits");
    }
    if (m_resubmits_) m_resubmits_->Inc();
    Stamp(e, obs::SpanKind::kResubmit, error, ctx.slba,
          static_cast<u8>(hook));
    ApplyVerdict(e, kSendHq | kHookOnHcq | kWaitForHook);
    return;
  }
  ApplyVerdict(e, result.verdict);
}

void VirtualController::ApplyVerdict(RequestEntry* e, u64 verdict) {
  if (verdict & kComplete) {
    CompleteToGuest(e, static_cast<NvmeStatus>(verdict & kStatusMask));
    return;
  }
  // Record (replace) hook/completion policy.
  e->hook_flags = 0;
  if (verdict & kHookOnHcq) e->hook_flags |= 1u << kPathH;
  if (verdict & kHookOnNcq) e->hook_flags |= 1u << kPathN;
  if (verdict & kHookOnKcq) e->hook_flags |= 1u << kPathK;
  e->will_flags = 0;
  if (verdict & kWillCompleteHq) e->will_flags |= 1u << kPathH;
  if (verdict & kWillCompleteNq) e->will_flags |= 1u << kPathN;
  if (verdict & kWillCompleteKq) e->will_flags |= 1u << kPathK;
  e->wait_for_hook = (verdict & kWaitForHook) != 0;

  u32 sends = 0;
  if (verdict & kSendHq) sends++;
  if (verdict & kSendNq) sends++;
  if (verdict & kSendKq) sends++;
  if (sends == 0 && e->outstanding == 0) {
    // Classifier produced no action: misbehaving policy.
    FailRequest(e, nvme::MakeStatus(nvme::kSctGeneric,
                                    nvme::kScInternalError));
    return;
  }
  if (verdict & kSendHq) DispatchFast(e);
  if (e->completed) return;  // dispatch may fail the request
  if (verdict & kSendNq) DispatchNotify(e);
  if (e->completed) return;
  if (verdict & kSendKq) DispatchKernel(e);
}

void VirtualController::DispatchFast(RequestEntry* e) {
  RouterShard& sh = *shards_[e->gq_index];
  // Isolation: whatever the classifier did, the routed command must stay
  // inside this VM's partition of the backend namespace.
  if (e->sqe.is_io_data_cmd() || e->sqe.opcode == nvme::kCmdWriteZeroes) {
    u64 first = cfg_.part_first_lba;
    u64 limit = first + cfg_.part_nlb;
    if (e->mediated_slba < first || e->mediated_slba >= limit ||
        e->mediated_nlb > limit - e->mediated_slba) {
      FailRequest(e, nvme::MakeStatus(nvme::kSctGeneric,
                                      nvme::kScLbaOutOfRange));
      return;
    }
  }
  worker_->cpu()->Charge(batch_active_
                             ? PerCmdCost(costs_->fast_forward_ns,
                                          costs_->sq_doorbell_ns)
                             : costs_->fast_forward_ns);
  Sqe out = e->sqe;
  out.nsid = cfg_.backend_nsid;
  out.set_slba(e->mediated_slba);
  if (e->sqe.is_io_data_cmd() || e->sqe.opcode == nvme::kCmdWriteZeroes) {
    out.set_nlb0(static_cast<u16>(e->mediated_nlb - 1));
  }
  // Allocate a generation-checked host cid bound to the routing tag.
  u16 cid;
  if (!sh.AllocCid(e->tag, &cid)) {
    // Cid space exhausted (bounded by the slab, so effectively
    // unreachable): transient backpressure, same handling as a full
    // host SQ.
    if (m_aborts_[kPathH]) m_aborts_[kPathH]->Inc();
    if (ScheduleRetryLeg(e, kPathH)) return;
    FailRequest(e, nvme::MakeStatus(nvme::kSctGeneric,
                                    nvme::kScAbortRequested));
    return;
  }
  out.cid = cid;
  e->outstanding++;
  e->pending[kPathH]++;
  sh.stats.fast_sends++;
  e->paths_used |= 1u << kPathH;
  if (m_sends_[kPathH]) m_sends_[kPathH]->Inc();
  Stamp(e, obs::SpanKind::kDispatchFast, 0, e->mediated_slba);
  // In a batch the command is pushed without ringing; FlushBatch rings
  // each dirty HSQ tail doorbell once for the whole batch.
  bool pushed = batch_active_ ? phys_->Push(sh.host_qid, out)
                              : phys_->Submit(sh.host_qid, out);
  if (pushed && batch_active_) sh.batch_ring = true;
  if (!pushed) {
    sh.FreeCid(cid);
    e->outstanding--;
    e->pending[kPathH]--;
    if (m_aborts_[kPathH]) m_aborts_[kPathH]->Inc();
    // A full host SQ is transient backpressure: back off and retry when
    // a budget is configured; otherwise the push failure aborts the
    // request as before.
    if (ScheduleRetryLeg(e, kPathH)) return;
    FailRequest(e, nvme::MakeStatus(nvme::kSctGeneric,
                                    nvme::kScAbortRequested));
  }
}

void VirtualController::DispatchNotify(RequestEntry* e) {
  if (!uif_ || uif_dead_) {
    // Dead or missing UIF: the failover policy may re-route notify
    // verdicts to the kernel path; otherwise the request fails.
    if (uif_dead_ && costs_->uif_failover_to_kernel && kernel_dev_ &&
        KernelEligible(*e)) {
      DispatchKernel(e);
      return;
    }
    FailRequest(e, nvme::MakeStatus(nvme::kSctGeneric,
                                    nvme::kScInternalError));
    return;
  }
  worker_->cpu()->Charge(batch_active_
                             ? PerCmdCost(costs_->notify_push_ns,
                                          costs_->notify_kick_ns)
                             : costs_->notify_push_ns);
  NotifyEntry entry;
  entry.sqe = e->sqe;
  entry.sqe.set_slba(e->mediated_slba);
  if (e->sqe.is_io_data_cmd()) {
    entry.sqe.set_nlb0(static_cast<u16>(e->mediated_nlb - 1));
  }
  entry.tag = e->tag;
  entry.vm_id = cfg_.vm_id;
  entry.req_id = e->req_id;
  e->outstanding++;
  e->pending[kPathN]++;
  shards_[e->gq_index]->stats.notify_sends++;
  e->paths_used |= 1u << kPathN;
  if (m_sends_[kPathN]) m_sends_[kPathN]->Inc();
  Stamp(e, obs::SpanKind::kDispatchNotify, 0, e->mediated_slba);
  if (!uif_->PushRequest(entry)) {
    e->outstanding--;
    e->pending[kPathN]--;
    if (m_aborts_[kPathN]) m_aborts_[kPathN]->Inc();
    FailRequest(e, nvme::MakeStatus(nvme::kSctGeneric,
                                    nvme::kScAbortRequested));
    return;
  }
  if (notify_inflight_++ == 0) last_ncq_progress_ = sim_->now();
  if (costs_->uif_liveness_timeout_ns && !liveness_ev_.valid()) {
    ArmUifLiveness();
  }
}

void VirtualController::DispatchKernel(RequestEntry* e) {
  if (!kernel_dev_) {
    FailRequest(e, nvme::MakeStatus(nvme::kSctGeneric,
                                    nvme::kScInternalError));
    return;
  }
  // Only commands with Linux block-layer semantics can take this path
  // (paper §III-A).
  kblock::Bio bio;
  switch (e->sqe.opcode) {
    case nvme::kCmdRead:
      bio.op = kblock::Bio::Op::kRead;
      break;
    case nvme::kCmdWrite:
      bio.op = kblock::Bio::Op::kWrite;
      break;
    case nvme::kCmdFlush:
      bio.op = kblock::Bio::Op::kFlush;
      break;
    default:
      FailRequest(e, nvme::MakeStatus(nvme::kSctGeneric,
                                      nvme::kScInvalidOpcode));
      return;
  }
  worker_->cpu()->Charge(costs_->kernel_submit_ns);
  if (bio.op != kblock::Bio::Op::kFlush) {
    u64 first = cfg_.part_first_lba;
    u64 limit = first + cfg_.part_nlb;
    if (e->mediated_slba < first || e->mediated_slba >= limit ||
        e->mediated_nlb > limit - e->mediated_slba) {
      FailRequest(e, nvme::MakeStatus(nvme::kSctGeneric,
                                      nvme::kScLbaOutOfRange));
      return;
    }
    bio.sector = e->mediated_slba;  // kernel device is namespace-absolute
    u64 len = static_cast<u64>(e->mediated_nlb) * kLbaSize;
    std::vector<nvme::PrpSegment> segs;
    Status st = nvme::WalkPrps(vm_->memory(), e->sqe, len, &segs);
    if (!st.ok()) {
      FailRequest(e, nvme::MakeStatus(nvme::kSctGeneric,
                                      nvme::kScDataTransferError));
      return;
    }
    for (const auto& s : segs) {
      u8* p = vm_->memory().Translate(s.gpa, s.len);
      bio.segments.push_back({p, s.len});
    }
  }
  u32 tag = e->tag;
  bio.on_complete = [this, tag](Status st) {
    // ResourceExhausted is what the link/backpressure layer reports for
    // recoverable conditions — surface it as "namespace not ready" so the
    // retry policy can tell it apart from hard media errors.
    NvmeStatus ns =
        st.ok() ? nvme::kStatusSuccess
        : st.code() == StatusCode::kResourceExhausted
            ? nvme::MakeStatus(nvme::kSctGeneric, nvme::kScNamespaceNotReady)
            : nvme::MakeStatus(nvme::kSctGeneric, nvme::kScInternalError);
    if (obs_) {
      // The device-side edge of the kernel path: without it, span
      // analytics cannot split device service from mailbox residency.
      RequestEntry* entry = EntryByTag(tag);
      if (entry && entry->req_id && entry->pending[kPathK]) {
        Stamp(entry, obs::SpanKind::kKernelDone, ns);
      }
    }
    kcq_mailbox_.emplace_back(tag, ns);
    if (worker_) worker_->poller().Notify(src_kcq_);
  };
  e->outstanding++;
  e->pending[kPathK]++;
  shards_[e->gq_index]->stats.kernel_sends++;
  e->paths_used |= 1u << kPathK;
  if (m_sends_[kPathK]) m_sends_[kPathK]->Inc();
  Stamp(e, obs::SpanKind::kDispatchKernel, 0, e->mediated_slba);
  kernel_dev_->Submit(std::move(bio));
}

void VirtualController::PollHcq() {
  Touch();
  if (costs_->max_batch <= 1) {
    bool more = false;
    for (auto& shp : shards_) {
      RouterShard& sh = *shp;
      nvme::CqRing* cq = phys_->cq(sh.host_qid);
      if (!cq) continue;
      Cqe cqe;
      if (cq->Peek(&cqe)) {
        cq->Pop();
        cq->PublishHead();
        phys_->RingCqDoorbell(sh.host_qid);
        worker_->cpu()->Charge(costs_->hcq_handle_ns);
        u32 tag = sh.TakeCid(cqe.cid);
        if (tag != kNoTag) {
          OnTargetDone(tag, kPathH, cqe.status(), cqe.result);
        } else {
          OnStaleCid(sh, cqe.cid);
        }
        if (!cq->Empty()) more = true;
        break;
      }
    }
    if (!more) {
      for (auto& sh : shards_) {
        nvme::CqRing* cq = phys_->cq(sh->host_qid);
        if (cq && !cq->Empty()) more = true;
      }
    }
    if (more && worker_) worker_->poller().Notify(src_hcq_);
    return;
  }
  // Batched harvest: drain up to max_batch CQEs across the host CQs,
  // publishing each queue's head doorbell once, then flush the resulting
  // VCQ posts with one guest interrupt per queue.
  BeginBatch();
  u32 left = costs_->max_batch;
  u32 n = 0;
  for (auto& shp : shards_) {
    RouterShard& sh = *shp;
    nvme::CqRing* cq = phys_->cq(sh.host_qid);
    if (!cq) continue;
    Cqe cqe;
    bool popped_any = false;
    while (left && cq->Peek(&cqe)) {
      cq->Pop();
      popped_any = true;
      left--;
      n++;
      worker_->cpu()->Charge(
          PerCmdCost(costs_->hcq_handle_ns, costs_->cq_doorbell_ns));
      u32 tag = sh.TakeCid(cqe.cid);
      if (tag != kNoTag) {
        OnTargetDone(tag, kPathH, cqe.status(), cqe.result);
      } else {
        OnStaleCid(sh, cqe.cid);
      }
    }
    if (popped_any) {
      worker_->cpu()->Charge(costs_->cq_doorbell_ns);
      cq->PublishHead();
      phys_->RingCqDoorbell(sh.host_qid);
    }
    if (!left) break;
  }
  if (n && m_batch_size_) m_batch_size_->Record(n);
  FlushBatch();
  for (auto& sh : shards_) {
    nvme::CqRing* cq = phys_->cq(sh->host_qid);
    if (cq && !cq->Empty() && worker_) {
      worker_->poller().Notify(src_hcq_);
      break;
    }
  }
}

void VirtualController::PollNcq() {
  Touch();
  if (!uif_) return;
  if (costs_->max_batch <= 1) {
    NotifyCompletion c;
    if (!uif_->PopCompletion(&c)) return;
    last_ncq_progress_ = sim_->now();
    worker_->cpu()->Charge(costs_->ncq_handle_ns);
    OnTargetDone(c.tag, kPathN, c.status);
    if (uif_->PendingCompletions() > 0 && worker_) {
      worker_->poller().Notify(src_ncq_);
    }
    return;
  }
  BeginBatch();
  u32 left = costs_->max_batch;
  u32 n = 0;
  NotifyCompletion c;
  while (left && uif_->PopCompletion(&c)) {
    last_ncq_progress_ = sim_->now();
    worker_->cpu()->Charge(costs_->ncq_handle_ns);
    OnTargetDone(c.tag, kPathN, c.status);
    left--;
    n++;
  }
  if (n && m_batch_size_) m_batch_size_->Record(n);
  FlushBatch();
  if (uif_ && uif_->PendingCompletions() > 0 && worker_) {
    worker_->poller().Notify(src_ncq_);
  }
}

void VirtualController::PollKcq() {
  Touch();
  if (costs_->max_batch <= 1) {
    if (kcq_mailbox_.empty()) return;
    auto [tag, status] = kcq_mailbox_.front();
    kcq_mailbox_.pop_front();
    worker_->cpu()->Charge(costs_->kernel_complete_ns);
    OnTargetDone(tag, kPathK, status);
    if (!kcq_mailbox_.empty() && worker_) {
      worker_->poller().Notify(src_kcq_);
    }
    return;
  }
  if (kcq_mailbox_.empty()) return;
  BeginBatch();
  u32 left = costs_->max_batch;
  u32 n = 0;
  while (left && !kcq_mailbox_.empty()) {
    auto [tag, status] = kcq_mailbox_.front();
    kcq_mailbox_.pop_front();
    worker_->cpu()->Charge(costs_->kernel_complete_ns);
    OnTargetDone(tag, kPathK, status);
    left--;
    n++;
  }
  if (n && m_batch_size_) m_batch_size_->Record(n);
  FlushBatch();
  if (!kcq_mailbox_.empty() && worker_) {
    worker_->poller().Notify(src_kcq_);
  }
}

void VirtualController::BeginBatch() {
  batch_active_ = true;
  if (uif_) uif_->BeginBatch();
}

void VirtualController::FlushBatch() {
  batch_active_ = false;
  // One tail doorbell per host SQ the batch pushed into. Ordered before
  // the NSQ kick and the guest interrupts, matching the per-command
  // pipeline's fast-then-notify-then-complete sequence.
  for (auto& sh : shards_) {
    if (!sh->batch_ring) continue;
    sh->batch_ring = false;
    worker_->cpu()->Charge(costs_->sq_doorbell_ns);
    phys_->RingSqDoorbell(sh->host_qid);
  }
  // One NSQ kick for every notify-path push of the batch.
  if (uif_ && uif_->EndBatch()) {
    worker_->cpu()->Charge(costs_->notify_kick_ns);
  }
  // One guest interrupt per guest queue with freshly posted CQEs —
  // either now or merged further by the coalescing timer.
  for (usize i = 0; i < shards_.size(); i++) {
    RouterShard& sh = *shards_[i];
    if (!sh.batch_irq) continue;
    sh.batch_irq = false;
    if (costs_->completion_coalesce_ns == 0) {
      // The IRQ lambda owns its req-id payload (several can be in
      // flight), so the shard's scratch is copied, not moved — moving
      // would steal the pre-reserved capacity and every later batch
      // would reallocate inside the poll handler.
      std::vector<u64> payload(sh.batch_irq_reqs.begin(),
                               sh.batch_irq_reqs.end());
      sh.batch_irq_reqs.clear();
      InjectGuestIrq(sh, std::move(payload));
      continue;
    }
    for (u64 rid : sh.batch_irq_reqs) {
      RouterShard::PushScratch(&sh.coalesce_reqs, rid);
    }
    sh.batch_irq_reqs.clear();
    if (!sh.coalesce_armed) {
      // The delay is anchored at the first uncovered completion, so the
      // added latency is bounded by completion_coalesce_ns regardless of
      // how many later batches pile on.
      sh.coalesce_armed = true;
      sim_->ScheduleAfter(costs_->completion_coalesce_ns, [this, i] {
        RouterShard& q = *shards_[i];
        q.coalesce_armed = false;
        std::vector<u64> payload(q.coalesce_reqs.begin(),
                                 q.coalesce_reqs.end());
        q.coalesce_reqs.clear();
        InjectGuestIrq(q, std::move(payload));
      });
    }
  }
}

void VirtualController::InjectGuestIrq(RouterShard& sh,
                                       std::vector<u64> reqs) {
  if (!sh.irq) return;
  worker_->cpu()->Charge(costs_->vcq_irq_ns);
  auto irq = sh.irq;
  u32 vmid = cfg_.vm_id;
  // The entries may be freed before the posted interrupt fires; capture
  // the flight ring itself (stable for the controller's lifetime).
  obs::FlightRing* fr = sh.flight;
  sim_->ScheduleAfter(
      costs_->irq_inject_latency_ns,
      [this, irq, vmid, fr, reqs = std::move(reqs)] {
        if (obs_) {
          for (u64 rid : reqs) {
            if (fr) {
              obs::FlightRecord frec;
              frec.t = sim_->now();
              frec.req_id = rid;
              frec.delta_ns = obs::kFlightDeltaUnknown;
              frec.edge = static_cast<u8>(obs::SpanKind::kIrqInject);
              frec.tenant = static_cast<u8>(vmid);
              fr->Record(frec);
            }
            obs::TraceEvent ev;
            ev.req_id = rid;
            ev.t = sim_->now();
            ev.vm_id = vmid;
            ev.kind = obs::SpanKind::kIrqInject;
            obs_->trace().Record(ev);
          }
        }
        // Counts injected interrupts: one per batch here, one per request
        // in the unbatched pipeline (where batch == request).
        if (m_irq_injects_) m_irq_injects_->Inc();
        irq();
      });
}

void VirtualController::OnTargetDone(u32 tag, Path path, NvmeStatus status,
                                     u32 result) {
  RequestEntry* e = EntryByTag(tag);
  if (!e) return;
  // Stale-leg guard: the leg was already settled by a timeout or UIF
  // failover — its send was accounted there, so drop the late completion
  // without touching any counter.
  if (e->pending[path] == 0) return;
  e->pending[path]--;
  if (path == kPathN && notify_inflight_ > 0) notify_inflight_--;
  if (m_completions_[path]) m_completions_[path]->Inc();
  if (!nvme::StatusOk(status) && m_errors_[path]) m_errors_[path]->Inc();
  Stamp(e,
        path == kPathH   ? obs::SpanKind::kHcqComplete
        : path == kPathN ? obs::SpanKind::kNcqComplete
                         : obs::SpanKind::kKcqComplete,
        status, result);
  if (path == kPathH) e->result = result;
  e->outstanding--;
  if (e->completed) {
    MaybeFree(e);
    return;
  }
  // Transient leg errors get a backoff retry (new send) instead of
  // propagating to the guest — unless the classifier hooked this path
  // and gets to decide itself.
  if (!nvme::StatusOk(status) && IsTransientStatus(status) &&
      !(e->hook_flags & (1u << path)) && ScheduleRetryLeg(e, path)) {
    return;
  }
  if (!nvme::StatusOk(status) && nvme::StatusOk(e->agg_status)) {
    e->agg_status = status;
  }
  u32 bit = 1u << path;
  if (e->hook_flags & bit) {
    e->hook_flags &= ~bit;
    Hook hook = path == kPathH ? kHookHcq
                : path == kPathN ? kHookNcq
                                 : kHookKcq;
    RunClassifierAndApply(e, hook, status);
    return;
  }
  if (e->will_flags & bit) {
    if (e->outstanding == 0) {
      CompleteToGuest(e, nvme::StatusOk(e->agg_status) ? status
                                                       : e->agg_status);
    }
    return;
  }
  if (e->wait_for_hook) return;  // another path's hook will decide
  if (e->outstanding == 0) {
    // Default: complete with the final target's status.
    CompleteToGuest(e, nvme::StatusOk(e->agg_status) ? status
                                                     : e->agg_status);
  }
}

void VirtualController::CompleteToGuest(RequestEntry* e, NvmeStatus status) {
  if (e->deadline_ev.valid()) {
    sim_->Cancel(e->deadline_ev);
    e->deadline_ev = {};
  }
  if (e->completed) return;
  e->completed = true;
  RouterShard& sh = *shards_[e->gq_index];
  sh.stats.completed++;
  // In a batch the interrupt-injection part of the post cost is deferred
  // to FlushBatch, charged once per guest queue per batch.
  bool defer_irq = batch_active_ && sh.irq != nullptr;
  worker_->cpu()->Charge(defer_irq ? PerCmdCost(costs_->vcq_post_ns,
                                                costs_->vcq_irq_ns)
                                   : costs_->vcq_post_ns);
  Cqe cqe;
  cqe.cid = e->sqe.cid;
  cqe.sq_id = sh.qid;
  cqe.sq_head = sh.vsq->head();
  cqe.result = e->result;
  cqe.set_status(status);
  if (!sh.vcq->Push(cqe)) {
    // VCQ full: retry until the guest frees slots.
    e->completed = false;
    sh.stats.completed--;
    if (m_vcq_retries_) m_vcq_retries_->Inc();
    u32 tag = e->tag;
    sim_->ScheduleAfter(5 * kUs, [this, tag, status] {
      RequestEntry* entry = EntryByTag(tag);
      if (entry) CompleteToGuest(entry, status);
    });
    return;
  }
  if (obs_ && e->req_id) {
    Stamp(e, obs::SpanKind::kVcqPost, status);
    obs_->trace().EndRequest();
    if (m_inflight_) m_inflight_->Add(-1);
    SimTime lat = sim_->now() - e->start_ns;
    m_latency_->Record(lat);
    if (e->chain_depth > 0) {
      // One guest-visible completion for the whole resubmission chain;
      // the histogram attributes how many hops it hid.
      if (!m_chain_depth_) {
        m_chain_depth_ = obs_->metrics().GetHistogram("router.chain_depth");
      }
      m_chain_depth_->Record(e->chain_depth);
    }
    // Per-tenant goodput latency: shed/failed completions are accounted
    // through the shed/failed counters, not the latency distribution.
    if (qos_ && !e->failed_marked) qos_->RecordLatency(qos_tenant_, lat);
    // Per-path latency only when the request took exactly one path.
    for (int p = 0; p < 3; p++) {
      if (e->paths_used == (1u << p)) m_path_latency_[p]->Record(lat);
    }
    if (m_completed_ && !e->failed_marked) m_completed_->Inc();
  }
  if (defer_irq) {
    // FlushBatch signals the whole batch with one interrupt.
    sh.batch_irq = true;
    if (obs_ && e->req_id) {
      RouterShard::PushScratch(&sh.batch_irq_reqs, e->req_id);
    }
  } else if (sh.irq) {
    if (obs_ && e->req_id) {
      // The entry may be freed before the posted interrupt fires; capture
      // what the stamp needs by value.
      u64 rid = e->req_id;
      u32 vmid = cfg_.vm_id;
      auto irq = sh.irq;
      obs::FlightRing* fr = sh.flight;
      sim_->ScheduleAfter(costs_->irq_inject_latency_ns, [this, rid, vmid,
                                                          irq, fr] {
        if (fr) {
          obs::FlightRecord frec;
          frec.t = sim_->now();
          frec.req_id = rid;
          frec.delta_ns = obs::kFlightDeltaUnknown;
          frec.edge = static_cast<u8>(obs::SpanKind::kIrqInject);
          frec.tenant = static_cast<u8>(vmid);
          fr->Record(frec);
        }
        obs::TraceEvent ev;
        ev.req_id = rid;
        ev.t = sim_->now();
        ev.vm_id = vmid;
        ev.kind = obs::SpanKind::kIrqInject;
        obs_->trace().Record(ev);
        if (m_irq_injects_) m_irq_injects_->Inc();
        irq();
      });
    } else {
      sim_->ScheduleAfter(costs_->irq_inject_latency_ns, sh.irq);
    }
  }
  MaybeFree(e);
}

void VirtualController::MaybeFree(RequestEntry* e) {
  if (e->completed && e->outstanding == 0) {
    shards_[TagShard(e->tag)]->FreeEntry(e);
  }
}

void VirtualController::FailRequest(RequestEntry* e, NvmeStatus status) {
  shards_[TagShard(e->tag)]->stats.failed++;
  if (!e->failed_marked) {
    e->failed_marked = true;
    if (m_failed_) m_failed_->Inc();
  }
  CompleteToGuest(e, status);
}

void VirtualController::OnDeadline(u32 tag) {
  RequestEntry* e = EntryByTag(tag);
  if (!e) return;
  RouterShard& sh = *shards_[TagShard(tag)];
  e->deadline_ev = {};
  if (e->completed) return;  // completion raced the deadline event
  worker_->cpu()->Charge(costs_->timeout_abort_ns);
  sh.stats.timeouts++;
  if (m_timeouts_) m_timeouts_->Inc();
  Stamp(e, obs::SpanKind::kTimeout, 0, e->outstanding);
  if (ftrig_) {
    // A request deadline means fault recovery gave up on outstanding
    // legs — exactly the moment the black box is worth reading.
    ftrig_->Fire(obs::FlightTrigger::kDeadlineAbort, sim_->now(),
                 "vm=" + std::to_string(cfg_.vm_id) +
                     " req=" + std::to_string(e->req_id) +
                     " outstanding=" + std::to_string(e->outstanding));
  }
  for (int p = 0; p < 3; p++) {
    if (e->pending[p] && m_path_timeouts_[p]) {
      m_path_timeouts_[p]->Inc(e->pending[p]);
    }
  }
  if (notify_inflight_ >= e->pending[kPathN]) {
    notify_inflight_ -= e->pending[kPathN];
  } else {
    notify_inflight_ = 0;
  }
  // Orphan the host cids still mapped to this request so a late HCQ
  // completion cannot resolve to a recycled slot (its stale generation
  // handle is dropped by TakeCid).
  sh.FreeCidsOf(tag);
  e->pending[0] = e->pending[1] = e->pending[2] = 0;
  e->outstanding = 0;
  e->retry_pending = 0;
  e->hook_flags = 0;
  e->will_flags = 0;
  e->wait_for_hook = false;
  FailRequest(e, nvme::MakeStatus(nvme::kSctGeneric,
                                  nvme::kScAbortRequested));
}

void VirtualController::OnStaleCid(RouterShard& sh, u16 cid) {
  if (obs_ && obs_->flight()) {
    obs_->flight()->Mark(sim_->now(), obs::kFlightEdgeStaleCid, cid);
  }
  if (ftrig_) {
    ftrig_->Fire(obs::FlightTrigger::kStaleCidDrop, sim_->now(),
                 "vm=" + std::to_string(cfg_.vm_id) +
                     " queue=" + std::to_string(sh.index()) +
                     " cid=" + std::to_string(cid));
  }
}

bool VirtualController::ScheduleRetryLeg(RequestEntry* e, Path path) {
  if (path == kPathN) return false;  // notify legs fail over, never retry
  if (!costs_->max_retries || e->retries >= costs_->max_retries) return false;
  SimTime backoff = costs_->retry_backoff_ns << e->retries;
  e->retries++;
  e->retry_pending++;
  e->outstanding++;
  shards_[e->gq_index]->stats.retries++;
  if (m_retries_) m_retries_->Inc();
  Stamp(e, obs::SpanKind::kRetry, 0, static_cast<u64>(path));
  u32 tag = e->tag;
  sim_->ScheduleAfter(backoff, [this, tag, path] {
    RequestEntry* entry = EntryByTag(tag);
    if (!entry) return;
    if (entry->retry_pending == 0) return;  // timed out during backoff
    entry->retry_pending--;
    entry->outstanding--;
    if (entry->completed) {
      MaybeFree(entry);
      return;
    }
    if (path == kPathH) {
      DispatchFast(entry);
    } else {
      DispatchKernel(entry);
    }
  });
  return true;
}

void VirtualController::ArmUifLiveness() {
  if (!costs_->uif_liveness_timeout_ns || uif_dead_ || liveness_ev_.valid()) {
    return;
  }
  liveness_ev_ = sim_->ScheduleAfter(costs_->uif_liveness_timeout_ns,
                                     [this] { CheckUifLiveness(); });
}

void VirtualController::CheckUifLiveness() {
  liveness_ev_ = {};
  if (!uif_ || uif_dead_ || !costs_->uif_liveness_timeout_ns) return;
  // Disarm while idle; the next notify dispatch re-arms the watchdog.
  // (Self-rescheduling with no in-flight work would keep Run() alive
  // forever.)
  if (notify_inflight_ == 0) return;
  SimTime idle = sim_->now() - last_ncq_progress_;
  if (idle >= costs_->uif_liveness_timeout_ns) {
    DeclareUifDead();
    return;
  }
  liveness_ev_ = sim_->ScheduleAfter(costs_->uif_liveness_timeout_ns - idle,
                                     [this] { CheckUifLiveness(); });
}

void VirtualController::DeclareUifDead() {
  uif_dead_ = true;
  uif_failovers_++;
  if (m_uif_failovers_) m_uif_failovers_->Inc();
  HandleUifDead(/*dead=*/true, nvme::MakeStatus(nvme::kSctGeneric,
                                                nvme::kScInternalError));
}

void VirtualController::HandleUifDead(bool dead, NvmeStatus fail_status) {
  for (auto& shp : shards_) {
    RouterShard& sh = *shp;
    for (u32 s = 0; s < sh.slab_size(); s++) {
      RequestEntry* e = sh.EntryAt(s);
      if (!e->in_use || e->pending[kPathN] == 0) continue;
      u8 n = e->pending[kPathN];
      e->pending[kPathN] = 0;
      e->outstanding -= n;
      if (notify_inflight_ >= n) {
        notify_inflight_ -= n;
      } else {
        notify_inflight_ = 0;
      }
      // Each abandoned leg settles its send: timed out for a dead UIF,
      // administratively aborted for a detach.
      obs::Counter* settle =
          dead ? m_path_timeouts_[kPathN] : m_aborts_[kPathN];
      if (settle) settle->Inc(n);
      u32 bit = 1u << kPathN;
      e->hook_flags &= ~bit;
      e->will_flags &= ~bit;
      if (e->completed) {
        MaybeFree(e);
        continue;
      }
      Stamp(e, obs::SpanKind::kUifFailover, 0, n);
      if (dead && costs_->uif_failover_to_kernel && kernel_dev_ &&
          KernelEligible(*e)) {
        DispatchKernel(e);
        continue;
      }
      if (e->outstanding > 0) {
        // Other legs will finish the request; just make sure it no longer
        // waits for a hook that can never fire.
        if (e->wait_for_hook && e->hook_flags == 0) e->wait_for_hook = false;
        continue;
      }
      FailRequest(e, fail_status);
    }
  }
}

// --- Multi-tenant QoS (DESIGN.md §12) -----------------------------------------

void VirtualController::AttachQos(qos::QosScheduler* qos, u32 tenant_id) {
  // Release any head reservation held with the outgoing scheduler.
  if (qos_ && qos_waiting() > 0) qos_->SetParkedHead(qos_tenant_, 0, 0);
  qos_ = qos;
  qos_tenant_ = tenant_id;
  for (auto& sh : shards_) {
    sh->qos_ring.clear();
    sh->qos_head = sh->qos_count = 0;
    if (sh->qos_resume_armed) {
      sim_->Cancel(sh->qos_resume_ev);
      sh->qos_resume_armed = false;
    }
  }
  if (!qos_) {
    ovl_ = nullptr;  // overload control layers on the QoS gate
    return;
  }
  u32 cap = qos_->max_deferred(tenant_id);
  for (auto& sh : shards_) {
    sh->qos_ring.assign(cap ? cap : 1, RouterShard::Waiter{});
  }
  if (obs_) m_qos_waiting_ = obs_->metrics().GetGauge("qos.waiting");
}

void VirtualController::AttachOverload(overload::OverloadController* ovl) {
  ovl_ = qos_ ? ovl : nullptr;
}

void VirtualController::SyncParkedHead() {
  // One reservation per tenant: report the oldest parked head across
  // shards (with one queue pair this is exactly the pre-shard single
  // ring's head).
  const RouterShard::Waiter* oldest = nullptr;
  for (const auto& sh : shards_) {
    if (sh->qos_count == 0) continue;
    const RouterShard::Waiter& w = sh->qos_ring[sh->qos_head];
    if (!oldest || w.parked_at < oldest->parked_at) oldest = &w;
  }
  if (oldest) {
    qos_->SetParkedHead(qos_tenant_, oldest->cost, oldest->parked_at);
  } else {
    qos_->SetParkedHead(qos_tenant_, 0, 0);
  }
}

u32 VirtualController::QosTokenCost(const RequestEntry& e) {
  if (!e.sqe.is_io_data_cmd()) return 1;
  u64 bytes = static_cast<u64>(e.mediated_nlb) * kLbaSize;
  u32 pages = static_cast<u32>((bytes + 4095) / 4096);
  return pages ? pages : 1;
}

void VirtualController::QosParkOrShed(RequestEntry* e, u32 cost) {
  RouterShard& sh = *shards_[e->gq_index];
  if (sh.qos_count >= sh.qos_ring.size()) {
    QosShed(e);
    return;
  }
  usize idx = (sh.qos_head + sh.qos_count) % sh.qos_ring.size();
  sh.qos_ring[idx] = RouterShard::Waiter{e->tag, cost, sim_->now()};
  sh.qos_count++;
  sh.stats.qos_deferred++;
  qos_->NoteDeferred(qos_tenant_);
  if (sh.qos_count == 1) SyncParkedHead();
  if (ovl_) ovl_->NoteBacklog(static_cast<i64>(cost));
  if (m_qos_waiting_) m_qos_waiting_->Add(1);
}

void VirtualController::OverloadShed(RequestEntry* e) {
  shards_[e->gq_index]->stats.ovl_shed++;
  Stamp(e, obs::SpanKind::kOverloadShed);
  // Same retryable busy status as a QoS shed: back off and try again is
  // exactly the reaction load shedding asks of the guest.
  FailRequest(e, nvme::MakeStatus(nvme::kSctGeneric,
                                  nvme::kScNamespaceNotReady));
}

void VirtualController::QosShed(RequestEntry* e) {
  shards_[e->gq_index]->stats.qos_shed++;
  qos_->NoteShed(qos_tenant_);
  Stamp(e, obs::SpanKind::kQosShed);
  // Busy-ish transient status: the guest driver's natural reaction is to
  // back off and retry, which is exactly what load shedding asks for.
  FailRequest(e, nvme::MakeStatus(nvme::kSctGeneric,
                                  nvme::kScNamespaceNotReady));
}

void VirtualController::ArmQosResume(RouterShard& sh, SimTime at) {
  if (at <= sim_->now()) at = sim_->now() + 1;
  if (sh.qos_resume_armed && sh.qos_resume_at <= at) return;
  if (sh.qos_resume_armed) sim_->Cancel(sh.qos_resume_ev);
  sh.qos_resume_armed = true;
  sh.qos_resume_at = at;
  u32 idx = sh.index();
  sh.qos_resume_ev = sim_->ScheduleAt(at, [this, idx] { QosResume(idx); });
}

void VirtualController::QosResume(u32 shard_index) {
  RouterShard& sh = *shards_[shard_index];
  sh.qos_resume_armed = false;
  Touch();
  while (sh.qos_count > 0) {
    const RouterShard::Waiter w = sh.qos_ring[sh.qos_head];
    RequestEntry* e = EntryByTag(w.tag);
    if (!e || e->completed) {
      // Timed out (OnDeadline) while parked; the slot may already be
      // recycled. Drop the stale waiter.
      sh.qos_head = (sh.qos_head + 1) % sh.qos_ring.size();
      sh.qos_count--;
      SyncParkedHead();
      if (ovl_) ovl_->NoteBacklog(-static_cast<i64>(w.cost));
      if (m_qos_waiting_) m_qos_waiting_->Add(-1);
      continue;
    }
    // Overload gate first (DESIGN.md §13): a Shed state drains parked
    // best-effort work instead of serializing the backlog behind it.
    if (ovl_) {
      overload::Verdict v = ovl_->Admit(qos_tenant_, w.cost, sim_->now());
      if (v.action == overload::Verdict::Action::kShed) {
        sh.qos_head = (sh.qos_head + 1) % sh.qos_ring.size();
        sh.qos_count--;
        SyncParkedHead();
        ovl_->NoteBacklog(-static_cast<i64>(w.cost));
        if (m_qos_waiting_) m_qos_waiting_->Add(-1);
        OverloadShed(e);
        continue;
      }
      if (v.action == overload::Verdict::Action::kDefer) {
        ArmQosResume(sh, v.retry_at);
        return;
      }
    }
    qos::AdmitResult r = qos_->Admit(qos_tenant_, w.cost, sim_->now());
    if (r.action == qos::AdmitResult::Action::kDefer) {
      if (ovl_) ovl_->Refund(qos_tenant_, w.cost);
      ArmQosResume(sh, r.retry_at);
      return;
    }
    sh.qos_head = (sh.qos_head + 1) % sh.qos_ring.size();
    sh.qos_count--;
    SyncParkedHead();
    worker_->cpu()->Charge(costs_->qos_admit_ns);
    SimTime waited = sim_->now() - w.parked_at;
    if (ovl_) {
      ovl_->NoteBacklog(-static_cast<i64>(w.cost));
      ovl_->NoteQueueWait(waited);
    }
    if (m_qos_waiting_) m_qos_waiting_->Add(-1);
    qos_->NoteWait(qos_tenant_, waited);
    Stamp(e, obs::SpanKind::kQosAdmit, 0, waited);
    StartRequest(e);
  }
}

bool VirtualController::KernelEligible(const RequestEntry& e) {
  switch (e.sqe.opcode) {
    case nvme::kCmdRead:
    case nvme::kCmdWrite:
    case nvme::kCmdFlush:
      return true;
    default:
      return false;
  }
}

// --- RouterWorker --------------------------------------------------------------

RouterWorker::RouterWorker(sim::Simulator* sim, std::string name,
                           RouterCosts costs, obs::Observability* obs)
    : sim_(sim),
      cpu_(sim, name),
      poller_(sim, &cpu_, [&costs, &name, obs] {
        sim::Poller::Options o;
        o.dispatch_cost = costs.dispatch_cost_ns;
        o.adaptive = costs.adaptive_worker;
        o.idle_timeout = costs.worker_idle_timeout_ns;
        o.wakeup_latency = costs.worker_wakeup_latency_ns;
        o.obs = obs;
        o.metrics_name = name;
        return o;
      }()) {}

void RouterWorker::Attach(VirtualController* vc) {
  vc->worker_ = this;
  vc->src_vsq_ = poller_.AddSource([vc] { vc->PollVsq(0); });
  vc->src_hcq_ = poller_.AddSource([vc] { vc->PollHcq(); });
  vc->src_ncq_ = poller_.AddSource([vc] { vc->PollNcq(); });
  vc->src_kcq_ = poller_.AddSource([vc] { vc->PollKcq(); });
  vcs_.push_back(vc);
}

// --- NvmetroHost -----------------------------------------------------------------

NvmetroHost::NvmetroHost(sim::Simulator* sim, ssd::SimulatedController* phys,
                         Config cfg)
    : sim_(sim), phys_(phys), cfg_(cfg) {
  for (u32 i = 0; i < cfg_.num_workers; i++) {
    workers_.push_back(std::make_unique<RouterWorker>(
        sim_, "nvmetro.router" + std::to_string(i), cfg_.costs, cfg_.obs));
  }
}

VirtualController* NvmetroHost::CreateController(virt::Vm* vm,
                                                 VirtualController::Config cfg) {
  auto vc = std::make_unique<VirtualController>(sim_, phys_, vm, cfg,
                                                &cfg_.costs, cfg_.obs);
  VirtualController* ptr = vc.get();
  if (cfg_.flight_triggers) ptr->AttachFlightTriggers(cfg_.flight_triggers);
  workers_[next_worker_ % workers_.size()]->Attach(ptr);
  next_worker_++;
  controllers_.push_back(std::move(vc));
  return ptr;
}

void NvmetroHost::Start() {
  for (auto& w : workers_) w->Start();
}

u64 NvmetroHost::RouterCpuBusyNs() const {
  u64 sum = 0;
  for (const auto& w : workers_) sum += w->busy_ns();
  return sum;
}

}  // namespace nvmetro::core

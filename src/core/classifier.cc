#include "core/classifier.h"

namespace nvmetro::core {

const ebpf::CtxDescriptor& NvmetroCtxDescriptor() {
  static const ebpf::CtxDescriptor* kDesc = [] {
    auto* d = new ebpf::CtxDescriptor();
    d->size = sizeof(ClassifierCtx);
    d->fields = {
        {offsetof(ClassifierCtx, current_hook), 8, false, "current_hook"},
        {offsetof(ClassifierCtx, opcode), 8, false, "opcode"},
        {offsetof(ClassifierCtx, nsid), 8, false, "nsid"},
        {offsetof(ClassifierCtx, slba), 8, true, "slba"},
        {offsetof(ClassifierCtx, nlb), 8, true, "nlb"},
        {offsetof(ClassifierCtx, error), 8, false, "error"},
        {offsetof(ClassifierCtx, state), 8, true, "state"},
        {offsetof(ClassifierCtx, vm_id), 8, false, "vm_id"},
        {offsetof(ClassifierCtx, part_offset), 8, false, "part_offset"},
        {offsetof(ClassifierCtx, part_limit), 8, false, "part_limit"},
        // Narrow (4-byte) views, handy for 32-bit loads of opcode/hook.
        {offsetof(ClassifierCtx, current_hook), 4, false, "current_hook32"},
        {offsetof(ClassifierCtx, opcode), 4, false, "opcode32"},
        {offsetof(ClassifierCtx, error), 4, false, "error32"},
    };
    return d;
  }();
  return *kDesc;
}

ClassifierRuntime::ClassifierRuntime(ebpf::Program prog)
    : prog_(std::move(prog)) {}

Result<std::unique_ptr<ClassifierRuntime>> ClassifierRuntime::Create(
    ebpf::Program prog) {
  ebpf::Verifier verifier(NvmetroCtxDescriptor(),
                          ebpf::HelperRegistry::Default());
  NVM_RETURN_IF_ERROR(verifier.Verify(prog));
  return std::unique_ptr<ClassifierRuntime>(
      new ClassifierRuntime(std::move(prog)));
}

ClassifierRuntime::RunResult ClassifierRuntime::Run(ClassifierCtx* ctx) {
  invocations_++;
  auto r = interp_.Run(prog_, ctx, sizeof(*ctx));
  RunResult out;
  out.status = r.status;
  out.verdict = r.r0;
  out.cpu_cost =
      kClassifierBaseCost +
      static_cast<SimTime>(static_cast<double>(r.insns) *
                           kClassifierPerInsnCost);
  return out;
}

}  // namespace nvmetro::core

#include "core/classifier.h"

namespace nvmetro::core {

const ebpf::CtxDescriptor& NvmetroCtxDescriptor() {
  static const ebpf::CtxDescriptor* kDesc = [] {
    auto* d = new ebpf::CtxDescriptor();
    d->size = sizeof(ClassifierCtx);
    d->fields = {
        {offsetof(ClassifierCtx, current_hook), 8, false, "current_hook"},
        {offsetof(ClassifierCtx, opcode), 8, false, "opcode"},
        {offsetof(ClassifierCtx, nsid), 8, false, "nsid"},
        {offsetof(ClassifierCtx, slba), 8, true, "slba"},
        {offsetof(ClassifierCtx, nlb), 8, true, "nlb"},
        {offsetof(ClassifierCtx, error), 8, false, "error"},
        {offsetof(ClassifierCtx, state), 8, true, "state"},
        {offsetof(ClassifierCtx, vm_id), 8, false, "vm_id"},
        {offsetof(ClassifierCtx, part_offset), 8, false, "part_offset"},
        {offsetof(ClassifierCtx, part_limit), 8, false, "part_limit"},
        {offsetof(ClassifierCtx, cmd_arg), 8, false, "cmd_arg"},
        {offsetof(ClassifierCtx, data), 8, false, "data"},
        {offsetof(ClassifierCtx, data_len), 8, false, "data_len"},
        {offsetof(ClassifierCtx, chain_depth), 8, false, "chain_depth"},
        // Narrow (4-byte) views, handy for 32-bit loads of opcode/hook.
        {offsetof(ClassifierCtx, current_hook), 4, false, "current_hook32"},
        {offsetof(ClassifierCtx, opcode), 4, false, "opcode32"},
        {offsetof(ClassifierCtx, error), 4, false, "error32"},
    };
    // Loading `data` yields a verifier-typed null-or-data pointer; after
    // the null check the program may read (never write) the attached
    // page.
    d->data_ptr_offset = offsetof(ClassifierCtx, data);
    d->data_region_size = kClassifierDataRegionSize;
    return d;
  }();
  return *kDesc;
}

ClassifierRuntime::ClassifierRuntime(ebpf::Program prog, Options opts)
    : prog_(std::move(prog)),
      decoded_(ebpf::DecodedProgram::Decode(prog_)),
      pre_decoded_(opts.pre_decoded) {}

Result<std::unique_ptr<ClassifierRuntime>> ClassifierRuntime::Create(
    ebpf::Program prog, Options opts) {
  ebpf::Verifier verifier(NvmetroCtxDescriptor(),
                          ebpf::HelperRegistry::Default());
  NVM_RETURN_IF_ERROR(verifier.Verify(prog));
  return std::unique_ptr<ClassifierRuntime>(
      new ClassifierRuntime(std::move(prog), opts));
}

ClassifierRuntime::RunResult ClassifierRuntime::Run(ClassifierCtx* ctx) {
  invocations_++;
  ebpf::RunParams params;
  params.ctx = ctx;
  params.ctx_size = sizeof(*ctx);
  params.ctx_desc = &NvmetroCtxDescriptor();
  params.data = reinterpret_cast<const void*>(ctx->data);
  params.data_len = static_cast<u32>(ctx->data_len);
  auto r = pre_decoded_ ? dvm_.Run(decoded_, params)
                        : interp_.Run(prog_, params);
  RunResult out;
  out.status = r.status;
  out.verdict = r.r0;
  out.cpu_cost =
      kClassifierBaseCost +
      static_cast<SimTime>(static_cast<double>(r.insns) *
                           kClassifierPerInsnCost);
  return out;
}

}  // namespace nvmetro::core

#include "core/notify.h"

namespace nvmetro::core {

NotifyChannel::NotifyChannel(u32 entries)
    : entries_(entries), nsq_(entries), ncq_(entries) {}

bool NotifyChannel::PushRequest(const NotifyEntry& e) {
  u32 next = (nsq_tail_ + 1) % entries_;
  if (next == nsq_head_) return false;
  nsq_[nsq_tail_] = e;
  nsq_tail_ = next;
  if (batching_) {
    kick_pending_ = true;
  } else if (request_notify_) {
    request_notify_();
  }
  return true;
}

bool NotifyChannel::EndBatch() {
  batching_ = false;
  if (!kick_pending_) return false;
  kick_pending_ = false;
  if (request_notify_) request_notify_();
  return true;
}

void NotifyChannel::SetWedged(bool wedged) {
  if (wedged_ == wedged) return;
  wedged_ = wedged;
  if (!wedged_ && nsq_head_ != nsq_tail_ && request_notify_) {
    request_notify_();
  }
}

bool NotifyChannel::PopRequest(NotifyEntry* out) {
  if (wedged_) return false;
  if (nsq_head_ == nsq_tail_) return false;
  *out = nsq_[nsq_head_];
  nsq_head_ = (nsq_head_ + 1) % entries_;
  return true;
}

u32 NotifyChannel::PendingRequests() const {
  return (nsq_tail_ + entries_ - nsq_head_) % entries_;
}

bool NotifyChannel::PushCompletion(const NotifyCompletion& c) {
  if (wedged_) {
    // The UIF process is gone: its response never reaches the ring.
    completions_dropped_++;
    return true;
  }
  u32 next = (ncq_tail_ + 1) % entries_;
  if (next == ncq_head_) return false;
  ncq_[ncq_tail_] = c;
  ncq_tail_ = next;
  if (completion_notify_) completion_notify_();
  return true;
}

bool NotifyChannel::PopCompletion(NotifyCompletion* out) {
  if (ncq_head_ == ncq_tail_) return false;
  *out = ncq_[ncq_head_];
  ncq_head_ = (ncq_head_ + 1) % entries_;
  return true;
}

u32 NotifyChannel::PendingCompletions() const {
  return (ncq_tail_ + entries_ - ncq_head_) % entries_;
}

}  // namespace nvmetro::core

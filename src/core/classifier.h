// Classifier ABI: the context structure passed to eBPF I/O classifiers,
// the hook identifiers, and the verdict encoding.
//
// This is the programming model of paper Listing 1: the classifier's
// entry point receives a ctx describing the request and the current hook,
// and returns a verdict that combines routing flags (SEND_HQ / SEND_NQ /
// SEND_KQ), completion policy (WILL_COMPLETE_*, COMPLETE with an NVMe
// status in the low bits), and hook installation (HOOK_HCQ / HOOK_NCQ /
// HOOK_KCQ, WAIT_FOR_HOOK).
//
// Direct mediation: the ctx fields `slba`, `nlb` and `state` are
// writable; everything else is read-only, enforced by the verifier's
// ctx-access table. LBA translation for partition-attached controllers is
// performed by the classifier itself (unlike MDev-NVMe, which hardcodes
// it in the kernel module — paper §III-C).
#pragma once

#include <cstddef>

#include "common/types.h"
#include "ebpf/helpers.h"
#include "ebpf/interpreter.h"
#include "ebpf/program.h"
#include "ebpf/verifier.h"
#include "ebpf/vm.h"
#include "nvme/defs.h"

namespace nvmetro::core {

/// Hook identifiers (ctx->current_hook).
enum Hook : u64 {
  kHookVsq = 0,  // new request popped from a VSQ
  kHookHcq = 1,  // fast-path (device) completion
  kHookNcq = 2,  // notify-path (UIF) completion
  kHookKcq = 3,  // kernel-path completion
};

/// Context visible to classifiers. All fields are 8 bytes; offsets are
/// part of the ABI (static_asserts below).
struct ClassifierCtx {
  u64 current_hook = 0;  // ro: Hook
  u64 opcode = 0;        // ro: NVMe opcode
  u64 nsid = 0;          // ro
  u64 slba = 0;          // RW: starting LBA (direct mediation)
  u64 nlb = 0;           // RW: block count (1-based)
  u64 error = 0;         // ro: NVMe status of the completing target
  u64 state = 0;         // RW: persists across hooks of one request
  u64 vm_id = 0;         // ro
  u64 part_offset = 0;   // ro: partition first LBA on backend namespace
  u64 part_limit = 0;    // ro: partition size in LBAs
  u64 cmd_arg = 0;       // ro: SQE cdw2 | cdw3<<32 (guest-chosen argument)
  u64 data = 0;          // ro: completed read's data page (0 when absent)
  u64 data_len = 0;      // ro: readable bytes behind `data`
  u64 chain_depth = 0;   // ro: resubmission hops taken so far
};

static_assert(sizeof(ClassifierCtx) == 112);
static_assert(offsetof(ClassifierCtx, current_hook) == 0);
static_assert(offsetof(ClassifierCtx, opcode) == 8);
static_assert(offsetof(ClassifierCtx, slba) == 24);
static_assert(offsetof(ClassifierCtx, error) == 40);
static_assert(offsetof(ClassifierCtx, state) == 48);
static_assert(offsetof(ClassifierCtx, cmd_arg) == 80);
static_assert(offsetof(ClassifierCtx, data) == 88);
static_assert(offsetof(ClassifierCtx, data_len) == 96);
static_assert(offsetof(ClassifierCtx, chain_depth) == 104);

/// Verdict bits. Low 16 bits carry an NVMe status for COMPLETE.
enum Verdict : u64 {
  kStatusMask = 0xFFFF,
  kComplete = 1ull << 16,        // finish request now (status in low bits)
  kSendHq = 1ull << 17,          // fast path: physical device queues
  kSendNq = 1ull << 18,          // notify path: UIF
  kSendKq = 1ull << 19,          // kernel path: host block layer
  kWillCompleteHq = 1ull << 20,  // auto-complete when fast path finishes
  kWillCompleteNq = 1ull << 21,
  kWillCompleteKq = 1ull << 22,
  kHookOnHcq = 1ull << 23,       // re-run classifier on fast-path cpl
  kHookOnNcq = 1ull << 24,
  kHookOnKcq = 1ull << 25,
  kWaitForHook = 1ull << 26,     // suppress default completion
  // At a completion hook of a read: re-issue the request with the
  // rewritten slba/nlb instead of completing it — the classifier
  // chases dependent I/O below the guest (DESIGN.md §15). The router
  // enforces hook/opcode/status validity, a bounded chain depth, and
  // that nlb does not grow beyond the original request.
  kResubmit = 1ull << 27,
};

/// Ctx-access table for the verifier (reads everywhere, writes only to
/// slba/nlb/state).
const ebpf::CtxDescriptor& NvmetroCtxDescriptor();

/// Bytes of a completed read's data page exposed via ctx->data (one
/// host page; the router never maps more than the first PRP's page).
constexpr u32 kClassifierDataRegionSize = 4096;

/// A verified classifier program plus its execution engine, with cost
/// reporting for the simulation (base cost + per-instruction cost).
///
/// Create() pre-decodes the insn stream once (ebpf/vm.h) so per-hop
/// invocation — which resubmission chains multiply — skips all field
/// decoding; the legacy interpreter is kept behind
/// Options{pre_decoded = false} as the ablation baseline. The two
/// engines produce bit-identical verdict streams, and the *simulated*
/// cost model is the same for both (the pre-decode win is host wall
/// clock, measured by bench/pushdown_lookup --micro).
class ClassifierRuntime {
 public:
  struct Options {
    bool pre_decoded = true;
  };

  struct RunResult {
    u64 verdict = 0;
    SimTime cpu_cost = 0;
    Status status;
  };

  /// Verifies `prog` against the NVMetro context; fails on rejection
  /// (the router refuses unverifiable classifiers).
  static Result<std::unique_ptr<ClassifierRuntime>> Create(
      ebpf::Program prog, Options opts);
  static Result<std::unique_ptr<ClassifierRuntime>> Create(
      ebpf::Program prog) {
    return Create(std::move(prog), Options{});
  }

  /// Runs the classifier for one hook invocation. When ctx->data is
  /// set, that page is registered as the run's read-only data region.
  RunResult Run(ClassifierCtx* ctx);

  /// Simulated-clock / RNG hookup for helpers.
  ebpf::HelperEnv& env() {
    return pre_decoded_ ? dvm_.env() : interp_.env();
  }

  u64 invocations() const { return invocations_; }
  bool pre_decoded() const { return pre_decoded_; }

 private:
  ClassifierRuntime(ebpf::Program prog, Options opts);

  ebpf::Program prog_;
  ebpf::DecodedProgram decoded_;
  ebpf::Interpreter interp_;
  ebpf::DecodedVm dvm_;
  bool pre_decoded_ = true;
  u64 invocations_ = 0;
};

/// Classifier invocation cost model: fixed entry/exit plus per-insn.
constexpr SimTime kClassifierBaseCost = 90;
constexpr double kClassifierPerInsnCost = 1.6;

}  // namespace nvmetro::core

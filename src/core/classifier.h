// Classifier ABI: the context structure passed to eBPF I/O classifiers,
// the hook identifiers, and the verdict encoding.
//
// This is the programming model of paper Listing 1: the classifier's
// entry point receives a ctx describing the request and the current hook,
// and returns a verdict that combines routing flags (SEND_HQ / SEND_NQ /
// SEND_KQ), completion policy (WILL_COMPLETE_*, COMPLETE with an NVMe
// status in the low bits), and hook installation (HOOK_HCQ / HOOK_NCQ /
// HOOK_KCQ, WAIT_FOR_HOOK).
//
// Direct mediation: the ctx fields `slba`, `nlb` and `state` are
// writable; everything else is read-only, enforced by the verifier's
// ctx-access table. LBA translation for partition-attached controllers is
// performed by the classifier itself (unlike MDev-NVMe, which hardcodes
// it in the kernel module — paper §III-C).
#pragma once

#include <cstddef>

#include "common/types.h"
#include "ebpf/helpers.h"
#include "ebpf/interpreter.h"
#include "ebpf/program.h"
#include "ebpf/verifier.h"
#include "nvme/defs.h"

namespace nvmetro::core {

/// Hook identifiers (ctx->current_hook).
enum Hook : u64 {
  kHookVsq = 0,  // new request popped from a VSQ
  kHookHcq = 1,  // fast-path (device) completion
  kHookNcq = 2,  // notify-path (UIF) completion
  kHookKcq = 3,  // kernel-path completion
};

/// Context visible to classifiers. All fields are 8 bytes; offsets are
/// part of the ABI (static_asserts below).
struct ClassifierCtx {
  u64 current_hook = 0;  // ro: Hook
  u64 opcode = 0;        // ro: NVMe opcode
  u64 nsid = 0;          // ro
  u64 slba = 0;          // RW: starting LBA (direct mediation)
  u64 nlb = 0;           // RW: block count (1-based)
  u64 error = 0;         // ro: NVMe status of the completing target
  u64 state = 0;         // RW: persists across hooks of one request
  u64 vm_id = 0;         // ro
  u64 part_offset = 0;   // ro: partition first LBA on backend namespace
  u64 part_limit = 0;    // ro: partition size in LBAs
};

static_assert(sizeof(ClassifierCtx) == 80);
static_assert(offsetof(ClassifierCtx, current_hook) == 0);
static_assert(offsetof(ClassifierCtx, opcode) == 8);
static_assert(offsetof(ClassifierCtx, slba) == 24);
static_assert(offsetof(ClassifierCtx, error) == 40);
static_assert(offsetof(ClassifierCtx, state) == 48);

/// Verdict bits. Low 16 bits carry an NVMe status for COMPLETE.
enum Verdict : u64 {
  kStatusMask = 0xFFFF,
  kComplete = 1ull << 16,        // finish request now (status in low bits)
  kSendHq = 1ull << 17,          // fast path: physical device queues
  kSendNq = 1ull << 18,          // notify path: UIF
  kSendKq = 1ull << 19,          // kernel path: host block layer
  kWillCompleteHq = 1ull << 20,  // auto-complete when fast path finishes
  kWillCompleteNq = 1ull << 21,
  kWillCompleteKq = 1ull << 22,
  kHookOnHcq = 1ull << 23,       // re-run classifier on fast-path cpl
  kHookOnNcq = 1ull << 24,
  kHookOnKcq = 1ull << 25,
  kWaitForHook = 1ull << 26,     // suppress default completion
};

/// Ctx-access table for the verifier (reads everywhere, writes only to
/// slba/nlb/state).
const ebpf::CtxDescriptor& NvmetroCtxDescriptor();

/// A verified classifier program plus its interpreter, with cost
/// reporting for the simulation (base cost + per-instruction cost).
class ClassifierRuntime {
 public:
  struct RunResult {
    u64 verdict = 0;
    SimTime cpu_cost = 0;
    Status status;
  };

  /// Verifies `prog` against the NVMetro context; fails on rejection
  /// (the router refuses unverifiable classifiers).
  static Result<std::unique_ptr<ClassifierRuntime>> Create(
      ebpf::Program prog);

  /// Runs the classifier for one hook invocation.
  RunResult Run(ClassifierCtx* ctx);

  /// Simulated-clock / RNG hookup for helpers.
  ebpf::HelperEnv& env() { return interp_.env(); }

  u64 invocations() const { return invocations_; }

 private:
  explicit ClassifierRuntime(ebpf::Program prog);

  ebpf::Program prog_;
  ebpf::Interpreter interp_;
  u64 invocations_ = 0;
};

/// Classifier invocation cost model: fixed entry/exit plus per-insn.
constexpr SimTime kClassifierBaseCost = 90;
constexpr double kClassifierPerInsnCost = 1.6;

}  // namespace nvmetro::core

// Notify path queues (NSQ/NCQ).
//
// A UIF "opens NSQs/NCQs as file descriptors, maps them into its address
// space using mmap() calls, and polls NSQs for requests from the I/O
// router ... it returns a status code to the kernel via the NCQ" (paper
// §III-D). Here the shared mapping is a pair of fixed-size SPSC rings:
// router -> UIF carries the 64-byte command block plus a routing tag;
// UIF -> router carries the tag and an NVMe status.
#pragma once

#include <functional>
#include <vector>

#include "common/types.h"
#include "nvme/defs.h"

namespace nvmetro::core {

/// NSQ entry: the command block plus correlation info. Data pages are
/// NOT carried — the UIF reaches them through the VM's memory (§III-C).
struct NotifyEntry {
  nvme::Sqe sqe;
  u32 tag = 0;
  u32 vm_id = 0;
  /// Trace-span id of the routed request (0 when tracing is off); lets
  /// the UIF stamp kUifWork/kUifRespond spans on the same request.
  u64 req_id = 0;
};

/// NCQ entry: the UIF's response for a tag.
struct NotifyCompletion {
  u32 tag = 0;
  u16 status = 0;  // NvmeStatus
  u16 rsvd = 0;
};

/// One VM<->UIF channel: an NSQ and an NCQ with edge notifications in
/// both directions (eventfd equivalents).
class NotifyChannel {
 public:
  explicit NotifyChannel(u32 entries = 1024);

  // --- Router side ---------------------------------------------------------
  bool PushRequest(const NotifyEntry& e);
  bool PopCompletion(NotifyCompletion* out);
  u32 PendingCompletions() const;
  /// Called (by the router) to signal the UIF that the NSQ has entries.
  void SetRequestNotify(std::function<void()> fn) {
    request_notify_ = std::move(fn);
  }
  /// Router-side batching (DESIGN.md §10): while a batch is open,
  /// PushRequest defers the request notification; EndBatch fires it once
  /// if anything was pushed — one kick per batch instead of per entry.
  void BeginBatch() { batching_ = true; }
  /// Closes the batch. Returns true when the deferred kick fired.
  bool EndBatch();

  // --- UIF side ------------------------------------------------------------
  bool PopRequest(NotifyEntry* out);
  bool PushCompletion(const NotifyCompletion& c);
  u32 PendingRequests() const;
  /// Called (by the UIF) to signal the router that the NCQ has entries.
  void SetCompletionNotify(std::function<void()> fn) {
    completion_notify_ = std::move(fn);
  }

  u32 entries() const { return entries_; }

  // --- Fault hooks -----------------------------------------------------------

  /// Models a crashed/frozen UIF process (SIGSTOP / SIGKILL): while
  /// wedged the UIF side pops no NSQ entries and any NCQ completion it
  /// pushes is lost (the process died with responses unsent). Unwedging
  /// re-fires the request notification if entries queued up meanwhile.
  void SetWedged(bool wedged);
  bool wedged() const { return wedged_; }
  u64 completions_dropped() const { return completions_dropped_; }

  // --- Channel metadata (set by the router at attach time) -------------------

  /// Partition geometry of the VM this channel serves: UIFs use it to map
  /// namespace-absolute LBAs back to guest-relative sectors (crypto
  /// tweaks) and to locate data on kernel-path devices.
  void SetPartitionInfo(u64 part_first_lba, u64 part_nlb, u32 vm_id) {
    part_first_lba_ = part_first_lba;
    part_nlb_ = part_nlb;
    vm_id_ = vm_id;
  }
  u64 part_first_lba() const { return part_first_lba_; }
  u64 part_nlb() const { return part_nlb_; }
  u32 vm_id() const { return vm_id_; }

 private:
  u64 part_first_lba_ = 0;
  u64 part_nlb_ = 0;
  u32 vm_id_ = 0;
  u32 entries_;
  std::vector<NotifyEntry> nsq_;
  u32 nsq_head_ = 0, nsq_tail_ = 0;
  std::vector<NotifyCompletion> ncq_;
  u32 ncq_head_ = 0, ncq_tail_ = 0;
  std::function<void()> request_notify_;
  std::function<void()> completion_notify_;
  bool batching_ = false;      // a router batch is open
  bool kick_pending_ = false;  // a push happened inside the open batch
  bool wedged_ = false;
  u64 completions_dropped_ = 0;
};

}  // namespace nvmetro::core

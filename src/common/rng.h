// Deterministic random number generation and workload distributions.
//
// Every stochastic component of the simulation (SSD latency jitter, fio
// offset choice, YCSB request distributions) draws from an explicitly
// seeded generator so that experiments are reproducible bit-for-bit.
//
// The Zipfian/ScrambledZipfian/Latest generators follow the definitions
// used by the YCSB benchmark suite (Cooper et al., SoCC'10), which the
// paper uses for its database evaluations.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/types.h"

namespace nvmetro {

/// xoshiro256** PRNG (Blackman & Vigna). Fast, high-quality, and
/// deterministic across platforms — unlike std::mt19937 + distributions,
/// whose outputs vary between standard library implementations.
class Rng {
 public:
  explicit Rng(u64 seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  u64 Next();

  /// Uniform in [0, bound). bound must be > 0.
  u64 NextBounded(u64 bound);

  /// Uniform in [lo, hi] inclusive.
  u64 NextRange(u64 lo, u64 hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Exponentially distributed value with the given mean.
  double NextExponential(double mean);

  /// Fills `n` bytes with random data.
  void Fill(void* dst, usize n);

 private:
  u64 s_[4];
};

/// Zipfian-distributed integers in [0, n). Popular items are the small
/// indices. theta defaults to the YCSB constant 0.99.
class ZipfianGenerator {
 public:
  ZipfianGenerator(u64 n, double theta = 0.99, u64 seed = 1);

  u64 Next();

  /// Grows the item space (used by YCSB insert-heavy workloads). The zeta
  /// constant is recomputed incrementally.
  void SetItemCount(u64 n);

  u64 item_count() const { return n_; }

 private:
  double Zeta(u64 from, u64 to) const;

  Rng rng_;
  u64 n_;
  double theta_;
  double alpha_, zetan_, eta_, zeta2theta_;
};

/// Zipfian with the item popularity scattered across the key space via a
/// hash, as in YCSB's ScrambledZipfianGenerator. This avoids all hot keys
/// clustering at the start of the keyspace.
class ScrambledZipfianGenerator {
 public:
  ScrambledZipfianGenerator(u64 n, double theta = 0.99, u64 seed = 1);

  u64 Next();
  void SetItemCount(u64 n);

 private:
  ZipfianGenerator zipf_;
  u64 n_;
};

/// YCSB "latest" distribution: recently inserted items are the most
/// popular (used by workload D).
class LatestGenerator {
 public:
  LatestGenerator(u64 n, u64 seed = 1);

  u64 Next();
  void SetItemCount(u64 n);

 private:
  ZipfianGenerator zipf_;
  u64 n_;
};

/// FNV-1a 64-bit hash, used for key scrambling and bloom filters.
u64 FnvHash64(u64 value);
u64 FnvHash64Bytes(const void* data, usize len);

}  // namespace nvmetro

// Lightweight error handling: Status and Result<T>.
//
// The library avoids exceptions on hot paths (per the C++ Core Guidelines
// advice for performance-critical boundaries); internal invariant
// violations still use assertions/throws, but recoverable errors (bad
// guest input, out-of-range LBAs, verifier rejections) are reported as
// Status values that map naturally onto NVMe status codes where relevant.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace nvmetro {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kPermissionDenied,
  kDataLoss,
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A success-or-error value with an optional message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "Ok" or "Code: message".
  std::string ToString() const;

  bool operator==(const Status& o) const { return code_ == o.code_; }

 private:
  StatusCode code_;
  std::string msg_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status InvalidArgument(std::string m) {
  return Status(StatusCode::kInvalidArgument, std::move(m));
}
inline Status OutOfRange(std::string m) {
  return Status(StatusCode::kOutOfRange, std::move(m));
}
inline Status NotFound(std::string m) {
  return Status(StatusCode::kNotFound, std::move(m));
}
inline Status AlreadyExists(std::string m) {
  return Status(StatusCode::kAlreadyExists, std::move(m));
}
inline Status ResourceExhausted(std::string m) {
  return Status(StatusCode::kResourceExhausted, std::move(m));
}
inline Status FailedPrecondition(std::string m) {
  return Status(StatusCode::kFailedPrecondition, std::move(m));
}
inline Status Unimplemented(std::string m) {
  return Status(StatusCode::kUnimplemented, std::move(m));
}
inline Status Internal(std::string m) {
  return Status(StatusCode::kInternal, std::move(m));
}
inline Status PermissionDenied(std::string m) {
  return Status(StatusCode::kPermissionDenied, std::move(m));
}
inline Status DataLoss(std::string m) {
  return Status(StatusCode::kDataLoss, std::move(m));
}

/// Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}          // NOLINT implicit
  Result(Status status) : v_(std::move(status)) {    // NOLINT implicit
    assert(!std::get<Status>(v_).ok() && "Result from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }

  Status status() const {
    if (ok()) return OkStatus();
    return std::get<Status>(v_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> v_;
};

#define NVM_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::nvmetro::Status nvm_status_ = (expr);         \
    if (!nvm_status_.ok()) return nvm_status_;      \
  } while (0)

}  // namespace nvmetro

#include "common/table.h"

#include <algorithm>
#include <cstdio>

namespace nvmetro {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t i = 0; i < headers_.size(); i++) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); i++) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < headers_.size(); i++) {
      const std::string& cell = i < row.size() ? row[i] : headers_[i];
      line += cell;
      line.append(widths[i] - cell.size(), ' ');
      if (i + 1 < headers_.size()) line += "  ";
    }
    // Trim trailing spaces.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };
  std::string out = render_row(headers_);
  size_t total = 0;
  for (size_t i = 0; i < widths.size(); i++) {
    total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TablePrinter::RenderCsv() const {
  auto render_row = [](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < row.size(); i++) {
      if (i) line += ',';
      line += row[i];
    }
    line += '\n';
    return line;
  };
  std::string out = render_row(headers_);
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(Render().c_str(), stdout); }

}  // namespace nvmetro

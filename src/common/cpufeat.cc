#include "common/cpufeat.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace nvmetro {

namespace {
struct CpuFeatures {
  bool aesni = false;
  bool pclmul = false;
  CpuFeatures() {
#if defined(__x86_64__) || defined(__i386__)
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
      aesni = (ecx & (1u << 25)) != 0;
      pclmul = (ecx & (1u << 1)) != 0;
    }
#endif
  }
};
const CpuFeatures& Features() {
  static CpuFeatures f;
  return f;
}
}  // namespace

bool CpuHasAesNi() { return Features().aesni; }
bool CpuHasPclmul() { return Features().pclmul; }

}  // namespace nvmetro

#include "common/strutil.h"

#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace nvmetro {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<usize>(n));
    std::vsnprintf(out.data(), static_cast<usize>(n) + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string FormatBlockSize(u64 bytes) {
  if (bytes < KiB) return StrFormat("%lluB", (unsigned long long)bytes);
  if (bytes < MiB && bytes % KiB == 0)
    return StrFormat("%lluK", (unsigned long long)(bytes / KiB));
  if (bytes % MiB == 0)
    return StrFormat("%lluM", (unsigned long long)(bytes / MiB));
  return StrFormat("%llu", (unsigned long long)bytes);
}

u64 ParseBlockSize(const std::string& s) {
  if (s.empty()) return 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str()) return 0;
  u64 mult = 1;
  if (*end == 'k' || *end == 'K') {
    mult = KiB;
    end++;
  } else if (*end == 'm' || *end == 'M') {
    mult = MiB;
    end++;
  } else if (*end == 'g' || *end == 'G') {
    mult = GiB;
    end++;
  }
  if (*end == 'B' || *end == 'b') end++;
  if (*end != '\0') return 0;
  return v * mult;
}

std::string FormatSi(double value) {
  if (value >= 1e9) return StrFormat("%.2fG", value / 1e9);
  if (value >= 1e6) return StrFormat("%.2fM", value / 1e6);
  if (value >= 1e3) return StrFormat("%.1fK", value / 1e3);
  return StrFormat("%.0f", value);
}

std::string FormatDuration(u64 ns) {
  if (ns < 1000) return StrFormat("%llu ns", (unsigned long long)ns);
  if (ns < 1000 * 1000)
    return StrFormat("%.1f us", static_cast<double>(ns) / 1e3);
  if (ns < 1000ull * 1000 * 1000)
    return StrFormat("%.2f ms", static_cast<double>(ns) / 1e6);
  return StrFormat("%.3f s", static_cast<double>(ns) / 1e9);
}

std::vector<std::string> StrSplit(const std::string& s, char delim,
                                  bool skip_empty) {
  std::vector<std::string> out;
  usize start = 0;
  for (usize i = 0; i <= s.size(); i++) {
    if (i == s.size() || s[i] == delim) {
      std::string piece = s.substr(start, i - start);
      if (!piece.empty() || !skip_empty) out.push_back(std::move(piece));
      start = i + 1;
    }
  }
  return out;
}

std::string StrTrim(const std::string& s) {
  usize b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) b++;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) e--;
  return s.substr(b, e - b);
}

}  // namespace nvmetro

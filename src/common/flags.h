// Minimal command-line flag parser for the bench/example binaries.
//
// Supports --name=value, --name value, and boolean --name / --no-name.
// Unknown flags are reported so that typos in experiment scripts fail
// loudly instead of silently running the default configuration.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace nvmetro {

class Flags {
 public:
  /// Registers flags before parsing. `help` is shown by PrintHelp().
  void DefineInt(const std::string& name, i64 def, const std::string& help);
  void DefineDouble(const std::string& name, double def,
                    const std::string& help);
  void DefineBool(const std::string& name, bool def, const std::string& help);
  void DefineString(const std::string& name, const std::string& def,
                    const std::string& help);

  /// Parses argv. Returns error on unknown flag or malformed value.
  /// Positional (non-flag) arguments are collected into positional().
  Status Parse(int argc, const char* const* argv);

  i64 GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  void PrintHelp(const char* prog) const;

 private:
  enum class Type { kInt, kDouble, kBool, kString };
  struct Def {
    Type type;
    std::string help;
    i64 i = 0;
    double d = 0;
    bool b = false;
    std::string s;
  };
  Status Set(const std::string& name, const std::string& value);

  std::map<std::string, Def> defs_;
  std::vector<std::string> positional_;
};

}  // namespace nvmetro

#include "common/status.h"

namespace nvmetro {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "Ok";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kUnimplemented: return "Unimplemented";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kPermissionDenied: return "PermissionDenied";
    case StatusCode::kDataLoss: return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string s = StatusCodeName(code_);
  if (!msg_.empty()) {
    s += ": ";
    s += msg_;
  }
  return s;
}

}  // namespace nvmetro

// String formatting helpers shared by benches and reports.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace nvmetro {

/// printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// "512B", "16K", "128K", "4M" — fio-style block size names.
std::string FormatBlockSize(u64 bytes);

/// Parses "512", "512B", "4k", "16K", "1M" into bytes; 0 on failure.
u64 ParseBlockSize(const std::string& s);

/// "1.23M", "456.7K", "89" — SI-ish magnitude formatting.
std::string FormatSi(double value);

/// "12.3 us", "1.20 ms" for a nanosecond duration.
std::string FormatDuration(u64 ns);

/// Splits on a delimiter, skipping empty pieces when skip_empty is true.
std::vector<std::string> StrSplit(const std::string& s, char delim,
                                  bool skip_empty = false);

/// Whitespace trim.
std::string StrTrim(const std::string& s);

}  // namespace nvmetro

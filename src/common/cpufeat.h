// Runtime CPU feature detection for the crypto fast paths.
#pragma once

namespace nvmetro {

/// True if the CPU supports the AES-NI instruction set. The XTS-AES
/// implementation dispatches to hardware AES when available (the paper's
/// encryptors all use AES-NI) and to the portable table-based
/// implementation otherwise.
bool CpuHasAesNi();

/// True if the CPU supports PCLMULQDQ (unused by XTS but reported for
/// diagnostics).
bool CpuHasPclmul();

}  // namespace nvmetro

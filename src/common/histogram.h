// HDR-style latency histogram.
//
// fio and the paper's latency evaluation (Figure 4) report median and
// 99th-percentile latencies; this histogram records values with bounded
// relative error using logarithmic bucket groups, like HdrHistogram and
// fio's internal latency buckets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace nvmetro {

/// Records u64 samples (nanoseconds, typically) with ~0.8% relative
/// precision. Memory is a few KB regardless of range.
class LatencyHistogram {
 public:
  LatencyHistogram();

  /// Adds one sample.
  void Record(u64 value);

  /// Adds `count` samples of the same value.
  void RecordMany(u64 value, u64 count);

  /// Merges another histogram into this one.
  void Merge(const LatencyHistogram& other);

  /// Value at quantile q in [0,1] (values outside are clamped). Returns 0
  /// if empty. The returned value is the representative (upper edge) of
  /// the bucket containing q, clamped into [min(), max()] so q=0.0 yields
  /// the smallest sample and q=1.0 yields the largest — never a bucket
  /// edge beyond any recorded value.
  u64 Quantile(double q) const;

  u64 Median() const { return Quantile(0.5); }
  u64 P99() const { return Quantile(0.99); }
  u64 P999() const { return Quantile(0.999); }

  u64 count() const { return count_; }
  u64 min() const { return count_ ? min_ : 0; }
  u64 max() const { return max_; }
  /// Sum of all recorded samples (CPU-accounting figures can be rebuilt
  /// from a snapshot: sum / count == mean, sums add across histograms).
  u64 sum() const { return sum_; }
  double Mean() const;

  // --- Windowed (delta) statistics ------------------------------------------
  //
  // `prev` must be an earlier copy of *this* histogram (same metric,
  // strictly fewer-or-equal samples): the delta is the set of samples
  // recorded since the copy was taken. This is how the time-series
  // sampler computes per-window percentiles without per-window
  // histograms on the hot path.

  u64 DeltaCount(const LatencyHistogram& prev) const {
    return count_ - prev.count_;
  }
  u64 DeltaSum(const LatencyHistogram& prev) const { return sum_ - prev.sum_; }
  /// Quantile over the window's samples only. Bucket-resolution like
  /// Quantile(); the result is clamped to [0, max()] (per-window extremes
  /// are not tracked). Returns 0 for an empty window.
  u64 DeltaQuantile(const LatencyHistogram& prev, double q) const;

  void Reset();

  /// Short "p50=... p99=... max=..." summary (values in microseconds).
  std::string Summary() const;

 private:
  static constexpr int kSubBucketBits = 7;  // 128 sub-buckets per group
  static constexpr u64 kSubBuckets = 1ull << kSubBucketBits;
  // Group 0 covers [0, kSubBuckets); group g >= 1 covers values whose MSB
  // sits at bit kSubBucketBits + g - 1. The largest MSB position is 63,
  // so g runs up to 63 - kSubBucketBits + 1 inclusive — kGroups must be
  // one more than that or BucketIndex overruns the array for values at
  // and above 2^63.
  static constexpr int kGroups = 64 - kSubBucketBits + 1;

  static u32 BucketIndex(u64 value);
  static u64 BucketUpperEdge(u32 index);

  std::vector<u64> buckets_;
  u64 count_ = 0;
  u64 sum_ = 0;
  u64 min_ = ~0ull;
  u64 max_ = 0;
};

}  // namespace nvmetro

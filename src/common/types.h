// Common fixed-width type aliases used across the NVMetro codebase.
//
// These mirror the kernel-style aliases used in the paper's listings
// (u16/u32/u64 etc.) so that code such as the UIF `work(nvme_cmd, u32 tag,
// u16 &status)` interface reads the same as in the publication.
#pragma once

#include <cstddef>
#include <cstdint>

namespace nvmetro {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using usize = std::size_t;

/// Nanoseconds of simulated time. All timing in the discrete-event
/// simulation is expressed in this unit.
using SimTime = std::uint64_t;

/// Convenience literals for simulated durations.
constexpr SimTime kNs = 1;
constexpr SimTime kUs = 1000 * kNs;
constexpr SimTime kMs = 1000 * kUs;
constexpr SimTime kSec = 1000 * kMs;

/// Sizes.
constexpr u64 KiB = 1024;
constexpr u64 MiB = 1024 * KiB;
constexpr u64 GiB = 1024 * MiB;

}  // namespace nvmetro

// ASCII table printer used by the figure-reproduction benches to emit the
// same rows/series the paper's plots report.
#pragma once

#include <string>
#include <vector>

namespace nvmetro {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders the table with aligned columns and a header separator.
  std::string Render() const;

  /// Renders as CSV (for downstream plotting).
  std::string RenderCsv() const;

  /// Prints Render() to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nvmetro

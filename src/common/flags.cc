#include "common/flags.h"

#include <cstdio>
#include <cstdlib>

namespace nvmetro {

void Flags::DefineInt(const std::string& name, i64 def,
                      const std::string& help) {
  Def d;
  d.type = Type::kInt;
  d.help = help;
  d.i = def;
  defs_[name] = d;
}

void Flags::DefineDouble(const std::string& name, double def,
                         const std::string& help) {
  Def d;
  d.type = Type::kDouble;
  d.help = help;
  d.d = def;
  defs_[name] = d;
}

void Flags::DefineBool(const std::string& name, bool def,
                       const std::string& help) {
  Def d;
  d.type = Type::kBool;
  d.help = help;
  d.b = def;
  defs_[name] = d;
}

void Flags::DefineString(const std::string& name, const std::string& def,
                         const std::string& help) {
  Def d;
  d.type = Type::kString;
  d.help = help;
  d.s = def;
  defs_[name] = d;
}

Status Flags::Set(const std::string& name, const std::string& value) {
  auto it = defs_.find(name);
  if (it == defs_.end()) return InvalidArgument("unknown flag --" + name);
  Def& d = it->second;
  char* end = nullptr;
  switch (d.type) {
    case Type::kInt:
      d.i = std::strtoll(value.c_str(), &end, 0);
      if (end == value.c_str() || *end != '\0')
        return InvalidArgument("bad int for --" + name + ": " + value);
      break;
    case Type::kDouble:
      d.d = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0')
        return InvalidArgument("bad double for --" + name + ": " + value);
      break;
    case Type::kBool:
      if (value == "true" || value == "1") {
        d.b = true;
      } else if (value == "false" || value == "0") {
        d.b = false;
      } else {
        return InvalidArgument("bad bool for --" + name + ": " + value);
      }
      break;
    case Type::kString:
      d.s = value;
      break;
  }
  return OkStatus();
}

Status Flags::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      NVM_RETURN_IF_ERROR(Set(body.substr(0, eq), body.substr(eq + 1)));
      continue;
    }
    // --no-name for bools.
    if (body.rfind("no-", 0) == 0) {
      auto it = defs_.find(body.substr(3));
      if (it != defs_.end() && it->second.type == Type::kBool) {
        it->second.b = false;
        continue;
      }
    }
    auto it = defs_.find(body);
    if (it == defs_.end()) return InvalidArgument("unknown flag --" + body);
    if (it->second.type == Type::kBool) {
      it->second.b = true;
      continue;
    }
    if (i + 1 >= argc)
      return InvalidArgument("missing value for --" + body);
    NVM_RETURN_IF_ERROR(Set(body, argv[++i]));
  }
  return OkStatus();
}

i64 Flags::GetInt(const std::string& name) const {
  auto it = defs_.find(name);
  return it != defs_.end() ? it->second.i : 0;
}

double Flags::GetDouble(const std::string& name) const {
  auto it = defs_.find(name);
  return it != defs_.end() ? it->second.d : 0.0;
}

bool Flags::GetBool(const std::string& name) const {
  auto it = defs_.find(name);
  return it != defs_.end() && it->second.b;
}

const std::string& Flags::GetString(const std::string& name) const {
  static const std::string kEmpty;
  auto it = defs_.find(name);
  return it != defs_.end() ? it->second.s : kEmpty;
}

void Flags::PrintHelp(const char* prog) const {
  std::printf("Usage: %s [flags]\n", prog);
  for (const auto& [name, def] : defs_) {
    std::printf("  --%-20s %s\n", name.c_str(), def.help.c_str());
  }
}

}  // namespace nvmetro

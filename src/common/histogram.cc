#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace nvmetro {

LatencyHistogram::LatencyHistogram()
    : buckets_(static_cast<usize>(kGroups) * kSubBuckets, 0) {}

u32 LatencyHistogram::BucketIndex(u64 value) {
  // Group 0 is linear over [0, kSubBuckets); group g >= 1 covers values
  // whose MSB is at bit position kSubBucketBits + g - 1, subdivided into
  // kSubBuckets sub-buckets by the bits just below the MSB.
  if (value < kSubBuckets) return static_cast<u32>(value);
  int msb = 63 - std::countl_zero(value);
  u32 group = static_cast<u32>(msb - kSubBucketBits + 1);
  u32 sub = static_cast<u32>((value >> (msb - kSubBucketBits)) - kSubBuckets);
  return group * static_cast<u32>(kSubBuckets) + sub;
}

u64 LatencyHistogram::BucketUpperEdge(u32 index) {
  u32 group = index / static_cast<u32>(kSubBuckets);
  u32 sub = index % static_cast<u32>(kSubBuckets);
  if (group == 0) return sub;
  // Reconstruct: value had MSB at position kSubBucketBits + group - 1, and
  // the kSubBucketBits bits below the MSB equal to `sub`.
  int shift = static_cast<int>(group) - 1;
  u64 base = (kSubBuckets + sub) << shift;
  u64 width = (1ull << shift);
  return base + width - 1;
}

void LatencyHistogram::Record(u64 value) { RecordMany(value, 1); }

void LatencyHistogram::RecordMany(u64 value, u64 count) {
  if (count == 0) return;
  buckets_[BucketIndex(value)] += count;
  count_ += count;
  sum_ += value * count;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (usize i = 0; i < buckets_.size(); i++) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

u64 LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return min_;   // smallest sample, not its bucket's edge
  if (q >= 1.0) return max_;   // largest sample exactly
  u64 target = static_cast<u64>(q * static_cast<double>(count_ - 1)) + 1;
  if (target > count_) target = count_;  // single-sample / rounding guard
  u64 seen = 0;
  for (usize i = 0; i < buckets_.size(); i++) {
    seen += buckets_[i];
    if (seen >= target) {
      u64 edge = BucketUpperEdge(static_cast<u32>(i));
      // A bucket's upper edge can over- or under-shoot the recorded
      // extremes; clamp so quantiles never step outside [min, max].
      return std::clamp(edge, min_, max_);
    }
  }
  return max_;
}

u64 LatencyHistogram::DeltaQuantile(const LatencyHistogram& prev,
                                    double q) const {
  u64 n = count_ - prev.count_;
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  u64 target = static_cast<u64>(q * static_cast<double>(n - 1)) + 1;
  if (target > n) target = n;
  u64 seen = 0;
  for (usize i = 0; i < buckets_.size(); i++) {
    seen += buckets_[i] - prev.buckets_[i];
    if (seen >= target) {
      u64 edge = BucketUpperEdge(static_cast<u32>(i));
      // Per-window min/max aren't tracked; clamp against the lifetime max
      // so the edge never exceeds any recorded value.
      return std::min(edge, max_);
    }
  }
  return max_;
}

double LatencyHistogram::Mean() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ull;
  max_ = 0;
}

std::string LatencyHistogram::Summary() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "p50=%.1fus p99=%.1fus max=%.1fus n=%llu",
                static_cast<double>(Median()) / 1000.0,
                static_cast<double>(P99()) / 1000.0,
                static_cast<double>(max()) / 1000.0,
                static_cast<unsigned long long>(count_));
  return buf;
}

}  // namespace nvmetro

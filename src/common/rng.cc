#include "common/rng.h"

#include <cassert>
#include <cstring>

namespace nvmetro {

namespace {
inline u64 Rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

u64 SplitMix64(u64& state) {
  u64 z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(u64 seed) {
  u64 sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

u64 Rng::Next() {
  const u64 result = Rotl(s_[1] * 5, 7) * 9;
  const u64 t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

u64 Rng::NextBounded(u64 bound) {
  assert(bound > 0);
  // Lemire's multiply-shift rejection method, 64-bit variant simplified:
  // plain modulo bias is negligible for our bounds but we reject to keep
  // distribution-sensitive tests exact.
  u64 threshold = (-bound) % bound;
  for (;;) {
    u64 r = Next();
    if (r >= threshold) return r % bound;
  }
}

u64 Rng::NextRange(u64 lo, u64 hi) {
  assert(lo <= hi);
  return lo + NextBounded(hi - lo + 1);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextExponential(double mean) {
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

void Rng::Fill(void* dst, usize n) {
  auto* p = static_cast<u8*>(dst);
  while (n >= 8) {
    u64 v = Next();
    std::memcpy(p, &v, 8);
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    u64 v = Next();
    std::memcpy(p, &v, n);
  }
}

ZipfianGenerator::ZipfianGenerator(u64 n, double theta, u64 seed)
    : rng_(seed), n_(n), theta_(theta) {
  assert(n > 0);
  zetan_ = Zeta(0, n_);
  zeta2theta_ = Zeta(0, 2);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

double ZipfianGenerator::Zeta(u64 from, u64 to) const {
  double sum = 0.0;
  for (u64 i = from; i < to; i++) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta_);
  }
  return sum;
}

void ZipfianGenerator::SetItemCount(u64 n) {
  assert(n >= n_);
  if (n == n_) return;
  // Incremental zeta extension (YCSB does the same to avoid O(n) rescans).
  zetan_ += Zeta(n_, n);
  n_ = n;
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

u64 ZipfianGenerator::Next() {
  // Chen & Gray's algorithm as used in YCSB.
  double u = rng_.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  auto v = static_cast<u64>(static_cast<double>(n_) *
                            std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (v >= n_) v = n_ - 1;
  return v;
}

ScrambledZipfianGenerator::ScrambledZipfianGenerator(u64 n, double theta,
                                                     u64 seed)
    : zipf_(n, theta, seed), n_(n) {}

u64 ScrambledZipfianGenerator::Next() {
  return FnvHash64(zipf_.Next()) % n_;
}

void ScrambledZipfianGenerator::SetItemCount(u64 n) {
  zipf_.SetItemCount(n);
  n_ = n;
}

LatestGenerator::LatestGenerator(u64 n, u64 seed) : zipf_(n, 0.99, seed),
                                                    n_(n) {}

u64 LatestGenerator::Next() {
  // Most recent item (n-1) is the most popular.
  u64 z = zipf_.Next();
  return n_ - 1 - z;
}

void LatestGenerator::SetItemCount(u64 n) {
  zipf_.SetItemCount(n);
  n_ = n;
}

u64 FnvHash64(u64 value) {
  constexpr u64 kOffset = 0xCBF29CE484222325ull;
  constexpr u64 kPrime = 0x100000001B3ull;
  u64 h = kOffset;
  for (int i = 0; i < 8; i++) {
    h ^= value & 0xFF;
    h *= kPrime;
    value >>= 8;
  }
  return h;
}

u64 FnvHash64Bytes(const void* data, usize len) {
  constexpr u64 kOffset = 0xCBF29CE484222325ull;
  constexpr u64 kPrime = 0x100000001B3ull;
  const auto* p = static_cast<const u8*>(data);
  u64 h = kOffset;
  for (usize i = 0; i < len; i++) {
    h ^= p[i];
    h *= kPrime;
  }
  return h;
}

}  // namespace nvmetro
